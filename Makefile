# Convenience targets for the Ursa reproduction.

.PHONY: install test test-par lint typecheck bench bench-full perf perf-check clean-cache results results-check loc

install:
	pip install -e .

test:
	pytest tests/

# Unit tests across all cores (requires pytest-xdist from the dev extras).
test-par:
	pytest tests/ -n auto

# Style (ruff) + determinism invariants (ursalint, see docs/static_analysis.md).
lint:
	ruff check src tests benchmarks
	PYTHONPATH=src python -m repro.analysis src/ benchmarks/

# Static types for the provenance-critical modules (results store,
# histogram).  Requires mypy from the dev extras; CI runs this gate.
typecheck:
	mypy

# Regenerates every paper table/figure; writes rendered output to results/.
bench:
	pytest benchmarks/ --benchmark-only

# Performance microbenchmarks: engine events/sec and runner parallel
# speedup -> BENCH_engine.json / BENCH_runner.json (docs/performance.md).
perf:
	PYTHONPATH=src python benchmarks/perf/bench_engine.py
	PYTHONPATH=src python benchmarks/perf/bench_runner.py

# Perf trend gate: snapshot the committed BENCH numbers, re-run the
# microbenchmarks, fail on >20% regression (see check_regression.py).
perf-check:
	rm -rf .bench-baseline && mkdir -p .bench-baseline
	cp BENCH_engine.json BENCH_runner.json .bench-baseline/
	$(MAKE) perf
	python benchmarks/perf/check_regression.py --baseline-dir .bench-baseline

# Paper-length runs (hours).
bench-full:
	REPRO_SCALE=full pytest benchmarks/ --benchmark-only

# Drop cached exploration data and trained baselines.
clean-cache:
	rm -rf .repro_cache

results:
	@ls -1 results/ 2>/dev/null || echo "run 'make bench' first"

# Verify every committed result still matches its provenance sidecar
# (digest self-checksum + rendered-text hash; docs/results_provenance.md).
results-check:
	PYTHONPATH=src python -m repro.experiments.store

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1
