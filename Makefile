# Convenience targets for the Ursa reproduction.

.PHONY: install test lint bench bench-full clean-cache results loc

install:
	pip install -e .

test:
	pytest tests/

# Style (ruff) + determinism invariants (ursalint, see docs/static_analysis.md).
lint:
	ruff check src tests benchmarks
	PYTHONPATH=src python -m repro.analysis src/

# Regenerates every paper table/figure; writes rendered output to results/.
bench:
	pytest benchmarks/ --benchmark-only

# Paper-length runs (hours).
bench-full:
	REPRO_SCALE=full pytest benchmarks/ --benchmark-only

# Drop cached exploration data and trained baselines.
clean-cache:
	rm -rf .repro_cache

results:
	@ls -1 results/ 2>/dev/null || echo "run 'make bench' first"

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1
