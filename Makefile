# Convenience targets for the Ursa reproduction.

.PHONY: install test test-par sanitize lint typecheck bench bench-full perf perf-check clean-cache report results results-check fleet fleet-smoke loc

install:
	pip install -e .

test:
	pytest tests/

# Unit tests across all cores (requires pytest-xdist from the dev extras).
test-par:
	pytest tests/ -n auto

# Tier-1 under the runtime worker sanitizer: every run_many worker
# snapshots repro.* module globals around plan execution and fails on
# drift (docs/static_analysis.md).
sanitize:
	REPRO_SANITIZE=1 pytest tests/

# Style (ruff) + determinism invariants (ursalint per-file rules plus the
# whole-program PAR pass, see docs/static_analysis.md).
lint:
	ruff check src tests benchmarks
	PYTHONPATH=src python -m repro.analysis src/ benchmarks/ tests/

# Static types for the provenance-critical modules (results store,
# histogram).  Requires mypy from the dev extras; CI runs this gate.
typecheck:
	mypy

# Regenerates every paper table/figure; writes rendered output to results/.
bench:
	pytest benchmarks/ --benchmark-only

# Performance microbenchmarks: engine events/sec and runner parallel
# speedup -> BENCH_engine.json / BENCH_runner.json (docs/performance.md).
perf:
	PYTHONPATH=src python benchmarks/perf/bench_engine.py
	PYTHONPATH=src python benchmarks/perf/bench_runner.py

# Perf trend gate: snapshot the committed BENCH numbers, re-run the
# microbenchmarks, fail on >20% regression (see check_regression.py).
# Runs under REPRO_SANITIZE=1: the sanitizer's overhead is one module
# scan per plan, so the numbers stay comparable while every perf run
# doubles as a shared-state check (docs/performance.md).
perf-check:
	rm -rf .bench-baseline && mkdir -p .bench-baseline
	cp BENCH_engine.json BENCH_runner.json .bench-baseline/
	REPRO_SANITIZE=1 $(MAKE) perf
	python benchmarks/perf/check_regression.py --baseline-dir .bench-baseline

# Paper-length runs (hours).
bench-full:
	REPRO_SCALE=full pytest benchmarks/ --benchmark-only

# Drop cached exploration data and trained baselines.
clean-cache:
	rm -rf .repro_cache

# Merged run dashboard over the fig 11/12 grid: SLO alert timelines,
# error-budget burn, budget audit, text + standalone HTML under
# results/ (docs/observability.md §4).
report:
	PYTHONPATH=src python -m repro fig11-12 --report

# Fleet-scale sharded run: 8 tenant cells under one 32-node budget,
# static-equal vs greedy headroom-stealing allocators, merged fleet
# dashboard + results/fleet/ provenance sidecars (docs/fleet.md).
fleet:
	PYTHONPATH=src python -m repro fleet --save

# 4-cell shortened fleet run, the CI smoke variant.
fleet-smoke:
	PYTHONPATH=src python -m repro fleet --smoke --save

results:
	@ls -1 results/ 2>/dev/null || echo "run 'make bench' first"

# Verify every committed result still matches its provenance sidecar
# (digest self-checksum + rendered-text hash; docs/results_provenance.md).
results-check:
	PYTHONPATH=src python -m repro.experiments.store

loc:
	@find src tests benchmarks examples -name '*.py' | xargs wc -l | tail -1
