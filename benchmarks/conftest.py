"""Shared benchmark fixtures.

Each benchmark regenerates one paper table/figure, runs it exactly once
(``benchmark.pedantic`` with one round -- the simulations are long), and
writes the rendered output to ``results/`` for EXPERIMENTS.md.  When the
experiment module provides a provenance :class:`~repro.experiments.store.RunMeta`,
the write goes through :func:`repro.experiments.store.save_result`, which
persists a ``results/<name>.meta.json`` sidecar and *fails* if a recorded
deterministic run no longer reproduces (set ``REPRO_RESULTS_UPDATE=1`` to
accept an intentional change).
"""

from __future__ import annotations

import pytest

from repro.experiments import store


@pytest.fixture
def save_result():
    """Callable writing a rendered experiment block to results/<name>.txt.

    With ``meta`` the block is persisted via the results store (digest
    comparison + sidecar); without, it is a plain text write.
    """

    def save(name: str, text: str, meta: store.RunMeta | None = None) -> None:
        if meta is not None:
            path = store.save_result(name, text, meta)
        else:
            store.results_dir().mkdir(exist_ok=True)
            path = store.results_dir() / f"{name}.txt"
            path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return save


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
