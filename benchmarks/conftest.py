"""Shared benchmark fixtures.

Each benchmark regenerates one paper table/figure, runs it exactly once
(``benchmark.pedantic`` with one round -- the simulations are long), and
writes the rendered output to ``results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parents[1] / "results"


@pytest.fixture
def save_result():
    """Callable writing a rendered experiment block to results/<name>.txt."""

    def save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return save


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
