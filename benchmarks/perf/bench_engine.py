#!/usr/bin/env python3
"""Engine hot-path microbenchmark: pure event churn through the DES kernel.

Measures events/second through :mod:`repro.sim.engine` and
:mod:`repro.sim.resources` on three synthetic workloads that exercise the
scheduling hot paths without any application logic:

* ``timeout_churn`` -- N processes looping on ``env.timeout``; stresses
  ``_schedule`` / ``step`` / ``Process._resume``.
* ``event_pingpong`` -- process pairs waking each other through pending
  events; stresses ``succeed`` + callback dispatch.
* ``resource_contention`` -- processes cycling acquire/hold/release on a
  shared :class:`Resource`; stresses the waiter heap and request events.

A separate ``wide_timer_churn`` probe (not in the composite) compares the
default heap queue against ``Environment(queue="calendar")`` at a 20k
pending-timer population -- the regime where the calendar queue's O(1)
buckets overtake heapq's C-implemented O(log n) sift.

The composite score (total events across all workloads / total seconds) is
written to ``BENCH_engine.json`` at the repository root together with the
recorded pre-optimization baseline, so the speedup trajectory is tracked
across PRs.  Event counts are taken from the engine's own deterministic
scheduling sequence number, so two kernels are compared on byte-identical
workloads.

Run:  PYTHONPATH=src python benchmarks/perf/bench_engine.py
"""

from __future__ import annotations

import json
import sys

# Wall-clock timing is the point of this benchmark: it measures the real
# execution speed of the simulation kernel, not simulated time.  The
# benchmarks/perf/ lint profile allowlists SIM001 for exactly this reason
# (see docs/performance.md and repro.analysis.policy).
import time
from pathlib import Path

from repro.sim.engine import Environment
from repro.sim.resources import Resource, Store

REPO_ROOT = Path(__file__).resolve().parents[2]
OUTPUT = REPO_ROOT / "BENCH_engine.json"

#: Pre-PR kernel baseline, measured on the reference container (1 CPU)
#: immediately before the hot-path rewrite.  Events/sec for each workload
#: at the iteration counts below.  Re-baseline only when the workloads
#: themselves change.
RECORDED_BASELINE = {
    "timeout_churn": 640000.0,
    "event_pingpong": 580000.0,
    "resource_contention": 500000.0,
    "store_handoff": 500000.0,
    "composite": 560000.0,
}


def timeout_churn(n_procs: int = 50, iterations: int = 2_000) -> Environment:
    env = Environment()

    def looper(env: Environment, delay: float) -> object:
        for _ in range(iterations):
            yield env.timeout(delay)

    for i in range(n_procs):
        env.process(looper(env, 0.1 + 0.01 * i))
    env.run()
    return env


def event_pingpong(n_pairs: int = 25, iterations: int = 2_000) -> Environment:
    env = Environment()

    def pinger(env: Environment, inbox: list, peer_inbox: list) -> object:
        for _ in range(iterations):
            event = env.event()
            peer_inbox.append(event)
            yield env.timeout(0.01)
            event.succeed()
            if inbox:
                waiting = inbox.pop()
                if not waiting.triggered:
                    yield waiting

    for _ in range(n_pairs):
        a_box: list = []
        b_box: list = []
        env.process(pinger(env, a_box, b_box))
        env.process(pinger(env, b_box, a_box))
    env.run()
    return env


def resource_contention(
    n_procs: int = 40, capacity: int = 8, iterations: int = 1_000
) -> Environment:
    env = Environment()
    resource = Resource(env, capacity=capacity)

    def worker(env: Environment, resource: Resource, priority: int) -> object:
        for _ in range(iterations):
            yield resource.acquire(priority=priority % 3)
            try:
                yield env.timeout(0.05)
            finally:
                resource.release()

    for i in range(n_procs):
        env.process(worker(env, resource, i))
    env.run()
    return env


def store_handoff(n_pairs: int = 20, iterations: int = 1_000) -> Environment:
    env = Environment()
    store = Store(env, capacity=16)

    def producer(env: Environment, store: Store) -> object:
        for i in range(iterations):
            yield store.put(i)
            yield env.timeout(0.02)

    def consumer(env: Environment, store: Store) -> object:
        for _ in range(iterations):
            yield store.get()

    for _ in range(n_pairs):
        env.process(producer(env, store))
        env.process(consumer(env, store))
    env.run()
    return env


WORKLOADS = {
    "timeout_churn": timeout_churn,
    "event_pingpong": event_pingpong,
    "resource_contention": resource_contention,
    "store_handoff": store_handoff,
}


def wide_timer_churn(queue: str, n_procs: int = 20_000, iterations: int = 5):
    """Timer churn with a *large* pending-event population.

    The four composite workloads keep at most a few hundred events
    pending, where heapq's C implementation wins outright; the calendar
    queue's O(1) bucket operations only pay off once the pending
    population is large enough that O(log n) sift costs dominate --
    the fleet-scale regime.  This workload measures that crossover.
    """
    env = Environment(queue=queue)

    def looper(env: Environment, delay: float) -> object:
        for _ in range(iterations):
            yield env.timeout(delay)

    for i in range(n_procs):
        env.process(looper(env, 0.1 + 0.0001 * i))
    env.run()
    return env


def bench_calendar_queue(repeats: int = 3) -> dict:
    """Best-of-``repeats`` heap-vs-calendar comparison at 20k pending timers."""
    rates = {}
    for queue in ("heap", "calendar"):
        best = 0.0
        for _ in range(repeats):
            start = time.perf_counter()
            env = wide_timer_churn(queue)
            elapsed = time.perf_counter() - start
            best = max(best, env._seq / elapsed)
        rates[queue] = round(best, 1)
    return {
        "workload": "wide_timer_churn",
        "pending_timers": 20_000,
        "heap_events_per_sec": rates["heap"],
        "calendar_events_per_sec": rates["calendar"],
        "calendar_speedup": round(rates["calendar"] / rates["heap"], 3),
    }


def run_benchmark(repeats: int = 3) -> dict:
    """Best-of-``repeats`` events/sec per workload plus a composite."""
    results: dict[str, dict[str, float]] = {}
    total_events = 0
    total_seconds = 0.0
    for name, workload in WORKLOADS.items():
        best_rate = 0.0
        best_events = 0
        best_elapsed = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            env = workload()
            elapsed = time.perf_counter() - start
            # _seq counts every event ever scheduled -- a deterministic,
            # kernel-version-independent measure of work done.
            events = env._seq
            rate = events / elapsed
            if rate > best_rate:
                best_rate, best_events, best_elapsed = rate, events, elapsed
        results[name] = {
            "events": best_events,
            "seconds": round(best_elapsed, 4),
            "events_per_sec": round(best_rate, 1),
        }
        total_events += best_events
        total_seconds += best_elapsed
    composite = total_events / total_seconds
    results["composite"] = {
        "events": total_events,
        "seconds": round(total_seconds, 4),
        "events_per_sec": round(composite, 1),
    }
    return results


def main() -> int:
    repeats = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    current = run_benchmark(repeats=repeats)
    payload = {
        "benchmark": "engine-events-per-sec",
        "baseline_events_per_sec": RECORDED_BASELINE,
        "current": current,
        # Not part of the composite: the queue comparison is a separate
        # experiment (same logical workload on both queues), so the
        # composite trend stays comparable across PRs.
        "calendar_queue": bench_calendar_queue(repeats=repeats),
        "speedup_vs_baseline": {
            name: round(
                current[name]["events_per_sec"] / RECORDED_BASELINE[name], 3
            )
            for name in current
            if name in RECORDED_BASELINE
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload["speedup_vs_baseline"], indent=2))
    print(f"[saved to {OUTPUT}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
