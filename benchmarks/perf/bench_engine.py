#!/usr/bin/env python3
"""Engine hot-path microbenchmark: pure event churn through the DES kernel.

Measures events/second through :mod:`repro.sim.engine` and
:mod:`repro.sim.resources` on three synthetic workloads that exercise the
scheduling hot paths without any application logic:

* ``timeout_churn`` -- N processes looping on ``env.timeout``; stresses
  ``_schedule`` / ``step`` / ``Process._resume``.
* ``event_pingpong`` -- process pairs waking each other through pending
  events; stresses ``succeed`` + callback dispatch.
* ``resource_contention`` -- processes cycling acquire/hold/release on a
  shared :class:`Resource`; stresses the waiter heap and request events.

A separate ``wide_timer_churn`` probe (not in the composite) compares the
default heap queue against ``Environment(queue="calendar")`` and the
adaptive ``queue="auto"`` default at a 20k pending-timer population --
the regime where the calendar queue's O(1) buckets overtake heapq's
C-implemented O(log n) sift.

A ``slo_monitor_churn`` probe (also outside the composite) drives the
application completion hook with a deterministic latency pattern, SLO
monitor attached vs detached, to bound the observer overhead of
:class:`repro.telemetry.slo.SLOMonitor` -- and to pin that the
monitor-off path costs nothing beyond the empty-listener guard.

An allocation probe re-runs each composite workload under ``tracemalloc``
and reports peak traced bytes per event plus garbage-collector collection
counts, so allocator regressions in the event core are caught by the same
trend gate as throughput regressions (``check_regression.py`` enforces a
ceiling on the timeout-churn bytes/event).

The composite score (total events across all workloads / total seconds) is
written to ``BENCH_engine.json`` at the repository root together with the
recorded pre-optimization baseline, so the speedup trajectory is tracked
across PRs.  Event counts are taken from the engine's own deterministic
scheduling sequence number, so two kernels are compared on byte-identical
workloads.

Run:  PYTHONPATH=src python benchmarks/perf/bench_engine.py
      PYTHONPATH=src python benchmarks/perf/bench_engine.py --smoke
The ``--smoke`` mode (used by CI) shrinks every workload to a few
thousand events and skips the ``BENCH_engine.json`` write: it exists to
keep the benchmark code importable and runnable between scheduled
``bench.yml`` runs, not to produce numbers.
"""

from __future__ import annotations

import gc
import json
import subprocess
import sys
import tracemalloc

# Wall-clock timing is the point of this benchmark: it measures the real
# execution speed of the simulation kernel, not simulated time.  The
# benchmarks/perf/ lint profile allowlists SIM001 for exactly this reason
# (see docs/performance.md and repro.analysis.policy).
import time
from pathlib import Path

from repro.sim.engine import Environment
from repro.sim.resources import Resource, Store
from repro.telemetry.slo import SLOMonitor, SLOSpec

REPO_ROOT = Path(__file__).resolve().parents[2]
OUTPUT = REPO_ROOT / "BENCH_engine.json"

#: Pre-PR kernel baseline, measured on the reference container (1 CPU)
#: immediately before the hot-path rewrite.  Events/sec for each workload
#: at the iteration counts below.  Re-baseline only when the workloads
#: themselves change.
RECORDED_BASELINE = {
    "timeout_churn": 640000.0,
    "event_pingpong": 580000.0,
    "resource_contention": 500000.0,
    "store_handoff": 500000.0,
    "composite": 560000.0,
}

#: Pre-freelist allocator baseline, measured on the same container
#: immediately before the slotted event core (pooled Timeouts + SoA
#: now-bucket) landed.  ``bytes_per_event`` is the tracemalloc live-peak
#: per event; ``timeout_allocs_per_event`` is fresh Timeout
#: constructions per event, which pre-freelist equals the workload's
#: timeouts-per-event ratio by construction (every timeout was a fresh
#: object).  Re-baseline only when the workloads change.
RECORDED_ALLOC_BASELINE = {
    "timeout_churn": {"bytes_per_event": 0.54, "timeout_allocs_per_event": 0.999},
    "event_pingpong": {"bytes_per_event": 0.36, "timeout_allocs_per_event": 0.4998},
    "resource_contention": {
        "bytes_per_event": 0.55,
        "timeout_allocs_per_event": 0.4995,
    },
    "store_handoff": {"bytes_per_event": 0.70, "timeout_allocs_per_event": 0.3329},
}

#: Workload shrink factors for ``--smoke`` (CI): a few thousand events,
#: just enough to execute every benchmark code path.
SMOKE_KWARGS: dict[str, dict[str, int]] = {
    "timeout_churn": {"n_procs": 10, "iterations": 50},
    "event_pingpong": {"n_pairs": 5, "iterations": 50},
    "resource_contention": {"n_procs": 8, "capacity": 4, "iterations": 50},
    "store_handoff": {"n_pairs": 4, "iterations": 50},
}


def timeout_churn(n_procs: int = 50, iterations: int = 2_000) -> Environment:
    env = Environment()

    def looper(env: Environment, delay: float) -> object:
        for _ in range(iterations):
            yield env.timeout(delay)

    for i in range(n_procs):
        env.process(looper(env, 0.1 + 0.01 * i))
    env.run()
    return env


def event_pingpong(n_pairs: int = 25, iterations: int = 2_000) -> Environment:
    env = Environment()

    def pinger(env: Environment, inbox: list, peer_inbox: list) -> object:
        for _ in range(iterations):
            event = env.event()
            peer_inbox.append(event)
            yield env.timeout(0.01)
            event.succeed()
            if inbox:
                waiting = inbox.pop()
                if not waiting.triggered:
                    yield waiting

    for _ in range(n_pairs):
        a_box: list = []
        b_box: list = []
        env.process(pinger(env, a_box, b_box))
        env.process(pinger(env, b_box, a_box))
    env.run()
    return env


def resource_contention(
    n_procs: int = 40, capacity: int = 8, iterations: int = 1_000
) -> Environment:
    env = Environment()
    resource = Resource(env, capacity=capacity)

    def worker(env: Environment, resource: Resource, priority: int) -> object:
        for _ in range(iterations):
            yield resource.acquire(priority=priority % 3)
            try:
                yield env.timeout(0.05)
            finally:
                resource.release()

    for i in range(n_procs):
        env.process(worker(env, resource, i))
    env.run()
    return env


def store_handoff(n_pairs: int = 20, iterations: int = 1_000) -> Environment:
    env = Environment()
    store = Store(env, capacity=16)

    def producer(env: Environment, store: Store) -> object:
        for i in range(iterations):
            yield store.put(i)
            yield env.timeout(0.02)

    def consumer(env: Environment, store: Store) -> object:
        for _ in range(iterations):
            yield store.get()

    for _ in range(n_pairs):
        env.process(producer(env, store))
        env.process(consumer(env, store))
    env.run()
    return env


WORKLOADS = {
    "timeout_churn": timeout_churn,
    "event_pingpong": event_pingpong,
    "resource_contention": resource_contention,
    "store_handoff": store_handoff,
}


def wide_timer_churn(queue: str, n_procs: int = 20_000, iterations: int = 5):
    """Timer churn with a *large* pending-event population.

    The four composite workloads keep at most a few hundred events
    pending, where heapq's C implementation wins outright; the calendar
    queue's O(1) bucket operations only pay off once the pending
    population is large enough that O(log n) sift costs dominate --
    the fleet-scale regime.  This workload measures that crossover.
    """
    env = Environment(queue=queue)

    def looper(env: Environment, delay: float) -> object:
        for _ in range(iterations):
            yield env.timeout(delay)

    for i in range(n_procs):
        env.process(looper(env, 0.1 + 0.0001 * i))
    env.run()
    return env


def _queue_probe_rate(queue: str, n_procs: int) -> float:
    """One timed ``wide_timer_churn`` run, returning events/sec."""
    start = time.perf_counter()
    env = wide_timer_churn(queue, n_procs=n_procs)
    elapsed = time.perf_counter() - start
    return env._seq / elapsed


def _isolated_rate(queue: str, n_procs: int) -> float:
    """Run one queue probe in a fresh interpreter and return events/sec.

    Sequential in-process comparisons cross-contaminate: the heap of the
    run before leaves allocator/GC state that skews the run after by more
    than the effect being measured (observed ~25% at 20k timers).  Each
    probe therefore gets its own process; ``--queue-probe`` below is the
    child entry point.
    """
    out = subprocess.run(
        [sys.executable, __file__, "--queue-probe", queue, str(n_procs)],
        capture_output=True,
        text=True,
        check=True,
    )
    return float(out.stdout.strip())


def bench_calendar_queue(
    repeats: int = 3, n_procs: int = 20_000, isolate: bool = False
) -> dict:
    """Best-of-``repeats`` heap/calendar/auto comparison at ``n_procs`` timers."""
    rates = {}
    for queue in ("heap", "calendar", "auto"):
        best = 0.0
        for _ in range(repeats):
            rate = (
                _isolated_rate(queue, n_procs)
                if isolate
                else _queue_probe_rate(queue, n_procs)
            )
            best = max(best, rate)
        rates[queue] = round(best, 1)
    return {
        "workload": "wide_timer_churn",
        "pending_timers": n_procs,
        "heap_events_per_sec": rates["heap"],
        "calendar_events_per_sec": rates["calendar"],
        "auto_events_per_sec": rates["auto"],
        "calendar_speedup": round(rates["calendar"] / rates["heap"], 3),
        "auto_speedup": round(rates["auto"] / rates["heap"], 3),
    }


def _slo_probe(n_requests: int, with_monitor: bool) -> float:
    """One timed completion-churn run, returning completions/sec.

    Mirrors the topology's completion hook exactly: the monitor-off path
    is the same empty-listener-list guard ``_on_complete`` takes when no
    :class:`SLOMonitor` is attached, so its cost *is* the cost a run
    without a monitor pays (analogous to ``Environment(trace=None)``).
    Latencies are a fixed multiplicative-hash pattern -- deterministic,
    spread across good and bad relative to the 100 ms target -- so both
    modes fold byte-identical observations.
    """
    classes = ("read", "write")
    now = 0.0
    listeners: list = []
    if with_monitor:
        specs = tuple(SLOSpec(cls, target_s=0.1) for cls in classes)
        monitor = SLOMonitor(specs, clock=lambda: now)
        listeners.append(monitor.observe)
    start = time.perf_counter()
    for i in range(n_requests):
        now += 0.001
        latency = 0.02 + 0.18 * ((i * 2654435761) % 97) / 97.0
        request_class = classes[i & 1]
        if listeners:
            for listener in listeners:
                listener(request_class, latency)
    elapsed = time.perf_counter() - start
    return n_requests / elapsed


def bench_slo_monitor(repeats: int = 3, n_requests: int = 200_000) -> dict:
    """Best-of-``repeats`` completion churn with the SLO monitor on vs off."""
    rates = {}
    for mode, with_monitor in (("off", False), ("on", True)):
        best = 0.0
        for _ in range(repeats):
            best = max(best, _slo_probe(n_requests, with_monitor))
        rates[mode] = round(best, 1)
    return {
        "workload": "slo_monitor_churn",
        "completions": n_requests,
        "monitor_off_completions_per_sec": rates["off"],
        "monitor_on_completions_per_sec": rates["on"],
        "monitor_overhead_fraction": round(1.0 - rates["on"] / rates["off"], 4),
    }


def measure_allocations(
    kwargs_by_name: dict[str, dict[str, int]] | None = None,
) -> dict:
    """Allocator pressure per workload: live peak, GC runs, object churn.

    Runs each composite workload once under ``tracemalloc`` (separately
    from the timed runs -- tracing costs ~2x wall time) and reports:

    * ``bytes_per_event`` -- tracemalloc peak / events: the *live*
      allocation high-water mark.  Transient per-event objects are freed
      before the next event, so this catches footprint regressions
      (leaked queue entries, an unbounded pool) but by construction
      cannot see balanced churn.
    * ``gc_collections`` -- collector runs triggered by the workload.
    * ``timeout_allocs_per_event`` / ``timeout_alloc_bytes_per_event``
      -- the churn the freelist removes, from the engine's own counters:
      fresh ``Timeout`` constructions (and their measured object +
      callbacks-list bytes) per event.  Before the freelist every
      timeout was a fresh object, i.e. the pre-change value of
      ``timeout_allocs_per_event`` is exactly ``timeouts_per_event``
      (recorded alongside), so the reduction is self-calibrating.
    * ``timeout_reuse_fraction`` -- freelist hit rate.
    """
    overrides = kwargs_by_name or {}
    # Measured per-Timeout allocation traffic: the object itself plus the
    # callbacks list every fresh Timeout carries.
    probe_env = Environment()
    probe_timeout = probe_env.timeout(1.0)
    timeout_bytes = sys.getsizeof(probe_timeout) + sys.getsizeof(
        probe_timeout.callbacks
    )
    out: dict[str, dict[str, float | int]] = {}
    for name, workload in WORKLOADS.items():
        kwargs = overrides.get(name, {})
        gc.collect()
        collections_before = sum(s["collections"] for s in gc.get_stats())
        tracemalloc.start()
        env = workload(**kwargs)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        collections_after = sum(s["collections"] for s in gc.get_stats())
        events = env._seq
        pool = env.timeout_pool_stats()
        timeouts = pool["allocs"] + pool["reuses"]
        out[name] = {
            "events": events,
            "peak_bytes": peak,
            "bytes_per_event": round(peak / events, 4),
            "gc_collections": collections_after - collections_before,
            "timeouts_per_event": round(timeouts / events, 4),
            "timeout_allocs_per_event": round(pool["allocs"] / events, 4),
            "timeout_alloc_bytes_per_event": round(
                pool["allocs"] * timeout_bytes / events, 4
            ),
            "timeout_reuse_fraction": (
                round(pool["reuses"] / timeouts, 4) if timeouts else 0.0
            ),
        }
    return out


def run_benchmark(
    repeats: int = 3,
    kwargs_by_name: dict[str, dict[str, int]] | None = None,
) -> dict:
    """Best-of-``repeats`` events/sec per workload plus a composite."""
    overrides = kwargs_by_name or {}
    results: dict[str, dict[str, float]] = {}
    total_events = 0
    total_seconds = 0.0
    for name, workload in WORKLOADS.items():
        kwargs = overrides.get(name, {})
        best_rate = 0.0
        best_events = 0
        best_elapsed = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            env = workload(**kwargs)
            elapsed = time.perf_counter() - start
            # _seq counts every event ever scheduled -- a deterministic,
            # kernel-version-independent measure of work done.
            events = env._seq
            rate = events / elapsed
            if rate > best_rate:
                best_rate, best_events, best_elapsed = rate, events, elapsed
        results[name] = {
            "events": best_events,
            "seconds": round(best_elapsed, 4),
            "events_per_sec": round(best_rate, 1),
        }
        total_events += best_events
        total_seconds += best_elapsed
    composite = total_events / total_seconds
    results["composite"] = {
        "events": total_events,
        "seconds": round(total_seconds, 4),
        "events_per_sec": round(composite, 1),
    }
    return results


def main() -> int:
    argv = sys.argv[1:]
    if argv and argv[0] == "--queue-probe":
        # Child entry point for _isolated_rate: one run, one number.
        print(_queue_probe_rate(argv[1], int(argv[2])))
        return 0
    args = [a for a in argv if a != "--smoke"]
    smoke = "--smoke" in argv
    repeats = int(args[0]) if args else (1 if smoke else 3)
    if smoke:
        # CI smoke: execute every benchmark code path on tiny budgets and
        # never write BENCH_engine.json (the numbers are meaningless).
        current = run_benchmark(repeats=repeats, kwargs_by_name=SMOKE_KWARGS)
        queue_probe = bench_calendar_queue(repeats=repeats, n_procs=200)
        slo_probe = bench_slo_monitor(repeats=repeats, n_requests=2_000)
        allocations = measure_allocations(SMOKE_KWARGS)
        print(
            json.dumps(
                {
                    "smoke": True,
                    "composite_events": current["composite"]["events"],
                    "queue_probe_events": queue_probe["pending_timers"],
                    "slo_probe_completions": slo_probe["completions"],
                    "allocations": allocations,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    current = run_benchmark(repeats=repeats)
    payload = {
        "benchmark": "engine-events-per-sec",
        "baseline_events_per_sec": RECORDED_BASELINE,
        "baseline_bytes_per_event": RECORDED_ALLOC_BASELINE,
        "current": current,
        # Not part of the composite: the queue comparison and the
        # allocation probe are separate experiments (same logical
        # workloads, different instrumentation), so the composite trend
        # stays comparable across PRs.  Queue probes run in isolated
        # child processes -- see _isolated_rate.
        "calendar_queue": bench_calendar_queue(repeats=repeats, isolate=True),
        "calendar_queue_wide": bench_calendar_queue(
            repeats=repeats, n_procs=100_000, isolate=True
        ),
        "slo_monitor": bench_slo_monitor(repeats=repeats),
        "allocations": measure_allocations(),
        "speedup_vs_baseline": {
            name: round(
                current[name]["events_per_sec"] / RECORDED_BASELINE[name], 3
            )
            for name in current
            if name in RECORDED_BASELINE
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload["speedup_vs_baseline"], indent=2))
    print(f"[saved to {OUTPUT}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
