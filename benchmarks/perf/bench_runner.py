#!/usr/bin/env python3
"""Runner benchmark: one deployment's wall cost + parallel grid speedup.

Two measurements of the experiment layer (the engine microbenchmark is
``bench_engine.py``):

* ``deployment`` -- one quick-scale social-network deployment under Ursa
  (the workhorse cell of Figs. 11-13): simulated seconds per wall second.
* ``grid`` -- a quick fig11/12 subgrid (vanilla social network, two
  loads, three managers = 6 cells) run sequentially (``jobs=1``) and
  fanned out (``--jobs``, default: all visible CPUs), recording the
  wall-clock speedup and verifying the merged tables are identical.

Artefact caches are prewarmed before timing so the numbers measure the
runs, not one-time exploration/training builds.  Results are written to
``BENCH_runner.json`` with the machine's CPU count -- the parallel
speedup is bounded by the cores actually available (on a 1-CPU CI
container it is ~1.0 by construction; on >= 4 cores the 6-cell grid
shows >= 2x).

Run:  PYTHONPATH=src python benchmarks/perf/bench_runner.py [jobs]
"""

from __future__ import annotations

import json
import sys

# Wall-clock timing is the point of this benchmark (see the benchmarks/
# perf lint profile in repro.analysis.policy and docs/performance.md).
import time
from pathlib import Path

from repro.api import RunOptions, run_cell, run_performance_grid
from repro.experiments import artifacts
from repro.experiments.parallel import default_jobs, pool_stats, shutdown_pool

REPO_ROOT = Path(__file__).resolve().parents[2]
OUTPUT = REPO_ROOT / "BENCH_runner.json"

GRID_APP = "vanilla-social-network"
GRID_LOADS = ("constant", "dynamic")
#: ML managers are excluded so the grid measures deployments, not
#: (cached) Sinan/Firm training.
GRID_MANAGERS = ("ursa", "auto-a", "auto-b")

#: Reference numbers from the container this suite was first recorded on
#: (1 CPU; see the ``cpus`` field of the written JSON).  Quick-scale
#: seconds of wall clock; compare trends, not absolutes, across machines.
RECORDED_BASELINE = {
    "deployment_wall_seconds": 10.0,
    "grid_sequential_seconds": 64.0,
}


def bench_deployment() -> dict:
    artifacts.exploration_result("social-network")  # prewarm
    start = time.perf_counter()
    result = run_cell("social-network", "constant", "ursa", RunOptions(seed=23))
    wall = time.perf_counter() - start
    sim_seconds = result.metrics.duration_s
    return {
        "app": "social-network",
        "load": "constant",
        "manager": "ursa",
        "sim_seconds": sim_seconds,
        "wall_seconds": round(wall, 2),
        "sim_seconds_per_wall_second": round(sim_seconds / wall, 1),
    }


def bench_grid(jobs: int) -> dict:
    artifacts.exploration_result(GRID_APP)  # prewarm
    start = time.perf_counter()
    sequential = run_performance_grid(
        (GRID_APP,), GRID_LOADS, GRID_MANAGERS,
        options=RunOptions(seed=23, digest=True), jobs=1,
    )
    sequential_s = time.perf_counter() - start
    # Cold parallel run: includes pool spin-up, the price the *first*
    # grid of a CLI invocation pays.
    shutdown_pool()
    start = time.perf_counter()
    parallel = run_performance_grid(
        (GRID_APP,), GRID_LOADS, GRID_MANAGERS,
        options=RunOptions(seed=23, digest=True), jobs=jobs,
    )
    parallel_s = time.perf_counter() - start
    # Pool-amortized run: the same grid again on the already-warm pool --
    # what every later grid of the invocation pays.
    start = time.perf_counter()
    warm = run_performance_grid(
        (GRID_APP,), GRID_LOADS, GRID_MANAGERS,
        options=RunOptions(seed=23, digest=True), jobs=jobs,
    )
    warm_parallel_s = time.perf_counter() - start
    identical = (
        sequential.violation_table() == parallel.violation_table()
        and sequential.cpu_table() == parallel.cpu_table()
        and sequential.violation_table() == warm.violation_table()
        and sequential.cpu_table() == warm.cpu_table()
    )
    stats = pool_stats()
    shutdown_pool()
    return {
        "apps": [GRID_APP],
        "loads": list(GRID_LOADS),
        "managers": list(GRID_MANAGERS),
        "cells": len(GRID_LOADS) * len(GRID_MANAGERS),
        "jobs": jobs,
        "sequential_seconds": round(sequential_s, 2),
        "parallel_seconds": round(parallel_s, 2),
        "warm_parallel_seconds": round(warm_parallel_s, 2),
        "speedup": round(sequential_s / parallel_s, 3),
        "pool_amortized_speedup": round(sequential_s / warm_parallel_s, 3),
        "pool_grids_served": stats["grids_served"],
        "outputs_identical": identical,
    }


def main() -> int:
    jobs = int(sys.argv[1]) if len(sys.argv) > 1 else max(4, default_jobs())
    deployment = bench_deployment()
    grid = bench_grid(jobs)
    payload = {
        "benchmark": "runner-deployment-and-parallel-grid",
        "cpus": default_jobs(),
        "recorded_baseline": RECORDED_BASELINE,
        "deployment": deployment,
        "grid": grid,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload, indent=2, sort_keys=True))
    print(f"[saved to {OUTPUT}]")
    if not grid["outputs_identical"]:
        print("ERROR: parallel grid output differs from sequential", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
