#!/usr/bin/env python3
"""Compare fresh BENCH_*.json results against a recorded snapshot.

The perf trend gate: CI (``.github/workflows/bench.yml``) and ``make
perf-check`` snapshot the committed ``BENCH_engine.json`` /
``BENCH_runner.json``, re-run ``make perf`` (which overwrites them), and
then call this script to compare fresh numbers against the snapshot.  A
throughput metric that drops -- or a duration metric that grows -- by
more than the threshold (default 20 %) fails the check.

The tolerance is deliberately loose: shared CI runners jitter by several
percent run to run; the gate exists to catch step-change regressions
(an accidentally de-optimized hot path), not single-digit noise.

Usage::

    python benchmarks/perf/check_regression.py --baseline-dir /tmp/bench-baseline
    python benchmarks/perf/check_regression.py --threshold 0.3 ...
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

#: (file, JSON path, direction) for every gated metric.  Direction
#: ``higher`` = throughput (regression is a drop), ``lower`` = duration
#: (regression is growth).
METRICS = [
    ("BENCH_engine.json", ("current", "timeout_churn", "events_per_sec"), "higher"),
    ("BENCH_engine.json", ("current", "event_pingpong", "events_per_sec"), "higher"),
    (
        "BENCH_engine.json",
        ("current", "resource_contention", "events_per_sec"),
        "higher",
    ),
    ("BENCH_engine.json", ("current", "store_handoff", "events_per_sec"), "higher"),
    ("BENCH_engine.json", ("current", "composite", "events_per_sec"), "higher"),
    (
        "BENCH_runner.json",
        ("deployment", "sim_seconds_per_wall_second"),
        "higher",
    ),
    ("BENCH_runner.json", ("grid", "sequential_seconds"), "lower"),
    ("BENCH_runner.json", ("grid", "speedup"), "higher"),
    ("BENCH_runner.json", ("grid", "pool_amortized_speedup"), "higher"),
]

#: Absolute floors checked against the *fresh* numbers only (no
#: snapshot needed): (file, metric path, floor, precondition).  The
#: precondition is ``None`` or ``(path, minimum)`` -- e.g. the 2x
#: parallel-grid floor only applies when the benchmark machine actually
#: has >= 4 CPUs; on a 1-CPU container parallelism is structurally pure
#: overhead (measured 0.83x cold / 0.92x warm under load), so the
#: unconditional floors only assert that the overhead stays bounded.
FLOORS = [
    ("BENCH_runner.json", ("grid", "speedup"), 0.70, None),
    ("BENCH_runner.json", ("grid", "speedup"), 2.0, (("cpus",), 4)),
    ("BENCH_runner.json", ("grid", "pool_amortized_speedup"), 0.75, None),
    ("BENCH_runner.json", ("grid", "pool_amortized_speedup"), 2.0, (("cpus",), 4)),
]


def _lookup(payload: dict, path: tuple[str, ...]) -> float | None:
    node = payload
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def _load(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def check(
    baseline_dir: Path,
    current_dir: Path,
    threshold: float,
) -> tuple[list[str], list[str]]:
    """Returns (report lines, failure lines)."""
    lines: list[str] = []
    failures: list[str] = []
    cache: dict[Path, dict | None] = {}
    for filename, path, direction in METRICS:
        base_payload = cache.setdefault(
            baseline_dir / filename, _load(baseline_dir / filename)
        )
        cur_payload = cache.setdefault(
            current_dir / filename, _load(current_dir / filename)
        )
        name = f"{filename}:{'.'.join(path)}"
        if base_payload is None or cur_payload is None:
            lines.append(f"SKIP  {name}  (missing file)")
            continue
        base = _lookup(base_payload, path)
        cur = _lookup(cur_payload, path)
        if base is None or cur is None or base <= 0:
            lines.append(f"SKIP  {name}  (missing metric)")
            continue
        change = cur / base - 1.0
        regressed = (
            change < -threshold if direction == "higher" else change > threshold
        )
        status = "FAIL" if regressed else "ok"
        lines.append(
            f"{status:4s}  {name}  baseline={base:.1f}  current={cur:.1f}  "
            f"({change:+.1%}, {direction} is better)"
        )
        if regressed:
            failures.append(lines[-1])
    for filename, path, floor, precondition in FLOORS:
        cur_payload = cache.setdefault(
            current_dir / filename, _load(current_dir / filename)
        )
        name = f"{filename}:{'.'.join(path)}"
        if cur_payload is None:
            lines.append(f"SKIP  {name} floor {floor}  (missing file)")
            continue
        cur = _lookup(cur_payload, path)
        if cur is None:
            lines.append(f"SKIP  {name} floor {floor}  (missing metric)")
            continue
        if precondition is not None:
            gate_path, minimum = precondition
            gate_value = _lookup(cur_payload, gate_path)
            if gate_value is None or gate_value < minimum:
                gate_name = ".".join(gate_path)
                lines.append(
                    f"SKIP  {name} floor {floor}  "
                    f"({gate_name}={gate_value} < {minimum})"
                )
                continue
        failed = cur < floor
        status = "FAIL" if failed else "ok"
        lines.append(f"{status:4s}  {name}  current={cur:.3f}  floor={floor}")
        if failed:
            failures.append(lines[-1])
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        required=True,
        help="directory holding the snapshot BENCH_*.json files",
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the fresh BENCH_*.json files (default: repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional regression before failing (default 0.20)",
    )
    args = parser.parse_args(argv)
    if not 0 < args.threshold < 1:
        parser.error(f"--threshold must be in (0, 1), got {args.threshold}")
    lines, failures = check(args.baseline_dir, args.current_dir, args.threshold)
    print("\n".join(lines))
    if failures:
        print(
            f"\n{len(failures)} metric(s) regressed more than "
            f"{args.threshold:.0%} vs the recorded baseline",
            file=sys.stderr,
        )
        return 1
    print(f"\nall metrics within {args.threshold:.0%} of the recorded baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
