#!/usr/bin/env python3
"""Compare fresh BENCH_*.json results against a recorded snapshot.

The perf trend gate: CI (``.github/workflows/bench.yml``) and ``make
perf-check`` snapshot the committed ``BENCH_engine.json`` /
``BENCH_runner.json``, re-run ``make perf`` (which overwrites them), and
then call this script to compare fresh numbers against the snapshot.  A
throughput metric that drops -- or a duration metric that grows -- by
more than the threshold (default 20 %) fails the check.

The tolerance is deliberately loose: shared CI runners jitter by several
percent run to run; the gate exists to catch step-change regressions
(an accidentally de-optimized hot path), not single-digit noise.

Usage::

    python benchmarks/perf/check_regression.py --baseline-dir /tmp/bench-baseline
    python benchmarks/perf/check_regression.py --threshold 0.3 ...
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

#: (file, JSON path, direction) for every gated metric.  Direction
#: ``higher`` = throughput (regression is a drop), ``lower`` = duration
#: (regression is growth).
METRICS = [
    ("BENCH_engine.json", ("current", "timeout_churn", "events_per_sec"), "higher"),
    ("BENCH_engine.json", ("current", "event_pingpong", "events_per_sec"), "higher"),
    (
        "BENCH_engine.json",
        ("current", "resource_contention", "events_per_sec"),
        "higher",
    ),
    ("BENCH_engine.json", ("current", "store_handoff", "events_per_sec"), "higher"),
    ("BENCH_engine.json", ("current", "composite", "events_per_sec"), "higher"),
    (
        "BENCH_runner.json",
        ("deployment", "sim_seconds_per_wall_second"),
        "higher",
    ),
    ("BENCH_runner.json", ("grid", "sequential_seconds"), "lower"),
    ("BENCH_runner.json", ("grid", "speedup"), "higher"),
    ("BENCH_runner.json", ("grid", "pool_amortized_speedup"), "higher"),
]

#: Absolute floors checked against the *fresh* numbers only (no
#: snapshot needed): (file, metric path, floor, precondition).  The
#: precondition is ``None`` or ``(path, minimum)`` -- e.g. the 2x
#: parallel-grid floor only applies when the benchmark machine actually
#: has >= 4 CPUs; on a 1-CPU container parallelism is structurally pure
#: overhead (measured 0.83x cold / 0.92x warm under load), so the
#: unconditional floors only assert that the overhead stays bounded.
FLOORS = [
    ("BENCH_runner.json", ("grid", "speedup"), 0.70, None),
    ("BENCH_runner.json", ("grid", "speedup"), 2.0, (("cpus",), 4)),
    ("BENCH_runner.json", ("grid", "pool_amortized_speedup"), 0.75, None),
    ("BENCH_runner.json", ("grid", "pool_amortized_speedup"), 2.0, (("cpus",), 4)),
    # The Timeout freelist must keep absorbing nearly every timeout on
    # the churn workload; a broken recycle guard shows up here first.
    (
        "BENCH_engine.json",
        ("allocations", "timeout_churn", "timeout_reuse_fraction"),
        0.95,
        None,
    ),
]

#: Absolute ceilings, same shape as FLOORS but lower-is-better: checked
#: against the fresh numbers, failing when the metric *exceeds* the
#: bound.  These gate allocator pressure in the event core
#: (docs/performance.md): fresh-Timeout churn per event (pre-freelist
#: value was ~1.0 on timeout_churn), the estimated churn bytes it
#: implies, the tracemalloc live peak per event (catches leaked queue
#: entries / an unbounded pool), and GC collections per run.
CEILINGS = [
    (
        "BENCH_engine.json",
        ("allocations", "timeout_churn", "timeout_allocs_per_event"),
        0.01,
        None,
    ),
    (
        "BENCH_engine.json",
        ("allocations", "timeout_churn", "timeout_alloc_bytes_per_event"),
        2.0,
        None,
    ),
    (
        "BENCH_engine.json",
        ("allocations", "timeout_churn", "bytes_per_event"),
        2.0,
        None,
    ),
    (
        "BENCH_engine.json",
        ("allocations", "timeout_churn", "gc_collections"),
        8,
        None,
    ),
]


def _lookup(payload: dict, path: tuple[str, ...]) -> float | None:
    node = payload
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def _load(path: Path) -> dict | None:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def check(
    baseline_dir: Path,
    current_dir: Path,
    threshold: float,
) -> tuple[list[str], list[str], list[str]]:
    """Returns (report lines, failure lines, skipped-gate lines).

    Skipped gates are reported separately so a run where e.g. the 2x
    parallel-grid floor was disarmed (a <4-CPU container) cannot be
    mistaken for one where it passed -- ``main`` prints them in a
    dedicated summary block.
    """
    lines: list[str] = []
    failures: list[str] = []
    skipped: list[str] = []

    def skip(line: str) -> None:
        lines.append(line)
        skipped.append(line)

    cache: dict[Path, dict | None] = {}
    for filename, path, direction in METRICS:
        base_payload = cache.setdefault(
            baseline_dir / filename, _load(baseline_dir / filename)
        )
        cur_payload = cache.setdefault(
            current_dir / filename, _load(current_dir / filename)
        )
        name = f"{filename}:{'.'.join(path)}"
        if base_payload is None or cur_payload is None:
            skip(f"SKIP  {name}  (missing file)")
            continue
        base = _lookup(base_payload, path)
        cur = _lookup(cur_payload, path)
        if base is None or cur is None or base <= 0:
            skip(f"SKIP  {name}  (missing metric)")
            continue
        change = cur / base - 1.0
        regressed = (
            change < -threshold if direction == "higher" else change > threshold
        )
        status = "FAIL" if regressed else "ok"
        lines.append(
            f"{status:4s}  {name}  baseline={base:.1f}  current={cur:.1f}  "
            f"({change:+.1%}, {direction} is better)"
        )
        if regressed:
            failures.append(lines[-1])
    for bounds, kind in ((FLOORS, "floor"), (CEILINGS, "ceiling")):
        for filename, path, bound, precondition in bounds:
            cur_payload = cache.setdefault(
                current_dir / filename, _load(current_dir / filename)
            )
            name = f"{filename}:{'.'.join(path)}"
            if cur_payload is None:
                skip(f"SKIP  {name} {kind} {bound}  (missing file)")
                continue
            cur = _lookup(cur_payload, path)
            if cur is None:
                skip(f"SKIP  {name} {kind} {bound}  (missing metric)")
                continue
            if precondition is not None:
                gate_path, minimum = precondition
                gate_value = _lookup(cur_payload, gate_path)
                if gate_value is None or gate_value < minimum:
                    gate_name = ".".join(gate_path)
                    skip(
                        f"SKIP  {name} {kind} {bound}  "
                        f"(requires {gate_name} >= {minimum}, have {gate_value})"
                    )
                    continue
            failed = cur < bound if kind == "floor" else cur > bound
            status = "FAIL" if failed else "ok"
            lines.append(f"{status:4s}  {name}  current={cur:.3f}  {kind}={bound}")
            if failed:
                failures.append(lines[-1])
    return lines, failures, skipped


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        type=Path,
        required=True,
        help="directory holding the snapshot BENCH_*.json files",
    )
    parser.add_argument(
        "--current-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory holding the fresh BENCH_*.json files (default: repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional regression before failing (default 0.20)",
    )
    args = parser.parse_args(argv)
    if not 0 < args.threshold < 1:
        parser.error(f"--threshold must be in (0, 1), got {args.threshold}")
    lines, failures, skipped = check(
        args.baseline_dir, args.current_dir, args.threshold
    )
    print("\n".join(lines))
    if skipped:
        # Disarmed gates are not passes; say so explicitly (a silent skip
        # of e.g. the 2x multicore floor used to read as "passed").
        print(f"\n{len(skipped)} gate(s) skipped, NOT checked:")
        for line in skipped:
            print(f"  {line.removeprefix('SKIP').strip()}")
    if failures:
        print(
            f"\n{len(failures)} metric(s) regressed more than "
            f"{args.threshold:.0%} vs the recorded baseline",
            file=sys.stderr,
        )
        return 1
    checked = len(lines) - len(skipped)
    print(
        f"\nall {checked} checked metric(s) within {args.threshold:.0%} of "
        "the recorded baseline / inside their absolute bounds"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
