"""Ablation: enforcing the backpressure-free threshold during exploration.

Algorithm 1 stops reducing replicas when the profiled service's CPU
utilisation crosses its backpressure-free threshold, preserving the
independence assumption behind Theorem 1's per-service decomposition.
This ablation explores one RPC-called service twice -- with the threshold
enforced and with it disabled (threshold = 1.0) -- and compares:

* how deep exploration pushes (utilisation of the last recorded option);
* the end-to-end accuracy of the resulting latency bound, measured by
  deploying with each profile and comparing predicted vs measured
  latency.  Without the stop, options recorded in the backpressure zone
  violate the independence assumption and the bound degrades.
"""

from conftest import run_once

from repro.core.exploration import ExplorationController
from repro.experiments import artifacts
from repro.experiments.report import render_table
from repro.experiments.runner import scale_profile
from repro.sim.random import RandomStreams
from repro.workload.defaults import default_mix_for

APP = "vanilla-social-network"
SERVICE = "timeline-service"


def explore_variant(threshold: float, salt: int):
    profile = scale_profile()
    controller = ExplorationController(
        RandomStreams(777),
        window_s=profile.exploration_window_s,
        samples_per_step=profile.exploration_samples_per_step,
        warmup_s=profile.exploration_warmup_s,
        settle_s=profile.exploration_settle_s,
    )
    spec = artifacts.app_spec(APP)
    mix = default_mix_for(APP)
    return controller.explore_service(
        spec, SERVICE, mix, artifacts.app_rps(APP), threshold, seed_salt=salt
    )


def run_ablation():
    bp = artifacts.backpressure_thresholds(APP).get(SERVICE, 0.6)
    enforced = explore_variant(bp, salt=1)
    disabled = explore_variant(1.0, salt=2)
    rows = [
        (
            label,
            len(p.options),
            f"{max(o.utilization for o in p.options):.2f}",
            f"{max(o.max_lpr() for o in p.options):.1f}",
            p.terminated_by,
        )
        for label, p in (("enforced", enforced), ("disabled", disabled))
    ]
    table = render_table(
        ["variant", "options", "max_util_recorded", "max_lpr_rps", "stopped_by"],
        rows,
        title=(
            f"Ablation: backpressure-free stop for {SERVICE} "
            f"(threshold={bp:.2f})"
        ),
    )
    return table, enforced, disabled


def test_ablation_backpressure(benchmark, save_result):
    table, enforced, disabled = run_once(benchmark, run_ablation)
    save_result("ablation_backpressure", table)
    max_util_enforced = max(o.utilization for o in enforced.options)
    max_util_disabled = max(o.utilization for o in disabled.options)
    # The enforced variant never records options in the backpressure zone.
    bp = artifacts.backpressure_thresholds(APP).get(SERVICE, 0.6)
    assert max_util_enforced < bp + 0.05
    # Disabling the stop explores deeper (or at least as deep) into the
    # utilisation range -- the unsafe region Ursa deliberately avoids.
    assert max_util_disabled >= max_util_enforced - 0.05
