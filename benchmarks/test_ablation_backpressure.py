"""Ablation: enforcing the backpressure-free threshold during exploration.

Algorithm 1 stops reducing replicas when the profiled service's CPU
utilisation crosses its backpressure-free threshold, preserving the
independence assumption behind Theorem 1's per-service decomposition.
This ablation explores one RPC-called service twice -- with the threshold
enforced and with it disabled (threshold = 1.0) -- and compares:

* how deep exploration pushes (utilisation of the last recorded option);
* the end-to-end accuracy of the resulting latency bound, measured by
  deploying with each profile and comparing predicted vs measured
  latency.  Without the stop, options recorded in the backpressure zone
  violate the independence assumption and the bound degrades.

The sweep itself lives in :mod:`repro.experiments.ablations` so its
variants can fan out across processes.
"""

from conftest import run_once

from repro.experiments import artifacts
from repro.api import run_backpressure_ablation
from repro.experiments.ablations import (
    ABLATION_APP,
    BP_SERVICE,
    backpressure_meta,
)


def test_ablation_backpressure(benchmark, save_result):
    table, enforced, disabled = run_once(benchmark, run_backpressure_ablation)
    save_result(
        "ablation_backpressure", table, backpressure_meta(enforced, disabled)
    )
    max_util_enforced = max(o.utilization for o in enforced.options)
    max_util_disabled = max(o.utilization for o in disabled.options)
    # The enforced variant never records options in the backpressure zone.
    bp = artifacts.backpressure_thresholds(ABLATION_APP).get(BP_SERVICE, 0.6)
    assert max_util_enforced < bp + 0.05
    # Disabling the stop explores deeper (or at least as deep) into the
    # utilisation range -- the unsafe region Ursa deliberately avoids.
    assert max_util_disabled >= max_util_enforced - 0.05
