"""Ablation: percentile-grid resolution of the Theorem 1 discretisation.

The MIP discretises per-service percentiles onto a grid ``P``.  A coarser
grid restricts the residual-budget splits the optimiser may choose, which
can only *increase* the optimal resource cost; a finer grid refines it at
higher solve cost.  The sweep derives coarser grids as column subsets of
the exploration grid (the latency data is shared), so objectives are
directly comparable.
"""

import time

from conftest import run_once

from repro.errors import InfeasibleModelError
from repro.experiments import artifacts
from repro.experiments.report import render_table
from repro.solver import AllocationModel, ClassSla, ServiceOptions, solve
from repro.stats.distributions import DEFAULT_PERCENTILE_GRID
from repro.workload.defaults import default_mix_for

APP = "vanilla-social-network"

#: Column subsets of the default exploration grid
#: (50, 75, 85, 90, 95, 99, 99.5, 99.9).
SUBSETS = {
    "coarse-2": (0, 7),                   # {50, 99.9}
    "mid-4": (0, 4, 5, 7),                # {50, 95, 99, 99.9}
    "full-8": (0, 1, 2, 3, 4, 5, 6, 7),
}


def build_model(subset: tuple[int, ...]) -> AllocationModel:
    import numpy as np

    from repro.core.optimizer import OptimizationEngine

    exploration = artifacts.exploration_result(APP)
    spec = artifacts.app_spec(APP)
    mix = default_mix_for(APP)
    rps = artifacts.app_rps(APP)
    class_loads = {c: rps * mix.fraction(c) for c in mix.classes()}
    engine = OptimizationEngine(DEFAULT_PERCENTILE_GRID)
    full = engine.build_model(spec, exploration, class_loads)
    grid = [DEFAULT_PERCENTILE_GRID[i] for i in subset]
    services = [
        ServiceOptions(
            name=s.name,
            resources=s.resources,
            latency={j: np.asarray(m)[:, list(subset)] for j, m in s.latency.items()},
        )
        for s in full.services
    ]
    slas = [ClassSla(c.name, c.percentile, c.target_s) for c in full.slas]
    return AllocationModel(services, slas, grid)


def sweep():
    rows = []
    objectives = {}
    for name, subset in SUBSETS.items():
        model = build_model(subset)
        start = time.perf_counter()
        try:
            solution = solve(model)
            objective = solution.objective
            nodes = solution.nodes_explored
        except InfeasibleModelError:
            objective = float("inf")
            nodes = 0
        wall_ms = (time.perf_counter() - start) * 1000.0
        objectives[name] = objective
        rows.append(
            (name, len(subset), f"{objective:.1f}", nodes, f"{wall_ms:.1f}")
        )
    table = render_table(
        ["grid", "h", "objective_cpus", "bnb_nodes", "solve_ms"],
        rows,
        title="Ablation: percentile grid resolution",
    )
    return table, objectives


def test_ablation_grid(benchmark, save_result):
    table, objectives = run_once(benchmark, sweep)
    save_result("ablation_grid", table)
    # A finer grid's feasible splits are a superset of a coarser grid's,
    # so the optimum can only improve (or stay) as the grid refines.
    if objectives["coarse-2"] != float("inf"):
        assert objectives["mid-4"] <= objectives["coarse-2"] + 1e-9
    if objectives["mid-4"] != float("inf"):
        assert objectives["full-8"] <= objectives["mid-4"] + 1e-9
    assert objectives["full-8"] != float("inf")
