"""Ablation: percentile-grid resolution of the Theorem 1 discretisation.

The MIP discretises per-service percentiles onto a grid ``P``.  A coarser
grid restricts the residual-budget splits the optimiser may choose, which
can only *increase* the optimal resource cost; a finer grid refines it at
higher solve cost.  The sweep derives coarser grids as column subsets of
the exploration grid (the latency data is shared), so objectives are
directly comparable.

The sweep itself lives in :mod:`repro.experiments.ablations` so its
cells can fan out across processes.
"""

from conftest import run_once

from repro.api import run_grid_ablation
from repro.experiments.ablations import grid_meta


def test_ablation_grid(benchmark, save_result):
    table, objectives = run_once(benchmark, run_grid_ablation)
    save_result("ablation_grid", table, grid_meta(objectives))
    # A finer grid's feasible splits are a superset of a coarser grid's,
    # so the optimum can only improve (or stay) as the grid refines.
    if objectives["coarse-2"] != float("inf"):
        assert objectives["mid-4"] <= objectives["coarse-2"] + 1e-9
    if objectives["mid-4"] != float("inf"):
        assert objectives["full-8"] <= objectives["mid-4"] + 1e-9
    assert objectives["full-8"] != float("inf")
