"""Ablation: Welch-t-test scaling vs naive mean-comparison scaling.

Ursa's resource controller confirms threshold crossings with Welch's
t-test to absorb load-fluctuation noise (§V item 4).  This ablation runs
the same Ursa deployment twice -- once with the t-test (alpha = 0.05) and
once effectively without it (alpha ~ 1: any arithmetic difference is
"significant").  Without the filter the controller becomes asymmetric:
scale-out fires on any upward noise, while scale-in -- which requires the
hypothetical lower-count load NOT to "exceed" the threshold -- is frozen,
because under alpha ~ 1 everything exceeds everything.  The net effect is
over-allocation with no SLA benefit; the t-test is what makes safe
scale-in possible at all.

The sweep itself lives in :mod:`repro.experiments.ablations` so its
variants can fan out across processes.
"""

from conftest import run_once

from repro.api import run_ttest_ablation
from repro.experiments.ablations import ttest_meta


def test_ablation_ttest(benchmark, save_result):
    table, with_ttest, naive = run_once(benchmark, run_ttest_ablation)
    save_result("ablation_ttest", table, ttest_meta(with_ttest, naive))
    # The naive variant cannot scale in (every comparison "exceeds"), so
    # it allocates at least as many CPUs for the same workload.
    assert naive["cpus"] >= with_ttest["cpus"] - 0.5
    # Neither variant should sacrifice the SLA under constant load.
    assert with_ttest["violations"] < 0.2
    assert naive["violations"] < 0.2
