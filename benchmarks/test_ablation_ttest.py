"""Ablation: Welch-t-test scaling vs naive mean-comparison scaling.

Ursa's resource controller confirms threshold crossings with Welch's
t-test to absorb load-fluctuation noise (§V item 4).  This ablation runs
the same Ursa deployment twice -- once with the t-test (alpha = 0.05) and
once effectively without it (alpha ~ 1: any arithmetic difference is
"significant").  Without the filter the controller becomes asymmetric:
scale-out fires on any upward noise, while scale-in -- which requires the
hypothetical lower-count load NOT to "exceed" the threshold -- is frozen,
because under alpha ~ 1 everything exceeds everything.  The net effect is
over-allocation with no SLA benefit; the t-test is what makes safe
scale-in possible at all.
"""

from conftest import run_once

from repro.core.manager import UrsaManager
from repro.experiments import artifacts
from repro.experiments.report import render_table
from repro.experiments.runner import make_app, scale_profile
from repro.sim.random import RandomStreams
from repro.workload.defaults import default_mix_for
from repro.workload.generator import LoadGenerator
from repro.workload.patterns import ConstantLoad

APP = "vanilla-social-network"


def run_variant(alpha: float, seed: int = 41):
    profile = scale_profile()
    duration = profile.deployment_s
    spec = artifacts.app_spec(APP)
    mix = default_mix_for(APP)
    rps = artifacts.app_rps(APP)
    exploration = artifacts.exploration_result(APP)
    app = make_app(spec, seed=seed)
    app.env.run(until=10)
    manager = UrsaManager(app, exploration)
    manager.controller.alpha = alpha
    manager.initialize({c: rps * mix.fraction(c) for c in mix.classes()})
    manager.start()
    LoadGenerator(
        app, ConstantLoad(rps), mix, RandomStreams(seed + 1), stop_at_s=duration
    ).start()
    app.env.run(until=duration)
    return {
        "decisions": len(manager.controller.decisions),
        "violations": app.windowed_violation_rate(
            profile.measure_from_s, duration
        ),
        "cpus": app.mean_cpu_allocation(profile.measure_from_s, duration),
    }


def run_ablation():
    with_ttest = run_variant(alpha=0.05)
    naive = run_variant(alpha=0.9999)
    table = render_table(
        ["variant", "scaling_decisions", "violation_rate", "mean_cpus"],
        [
            (
                "welch t-test (a=0.05)",
                with_ttest["decisions"],
                f"{with_ttest['violations']:.3f}",
                f"{with_ttest['cpus']:.1f}",
            ),
            (
                "naive comparison (a~1)",
                naive["decisions"],
                f"{naive['violations']:.3f}",
                f"{naive['cpus']:.1f}",
            ),
        ],
        title="Ablation: t-test noise filtering in the resource controller",
    )
    return table, with_ttest, naive


def test_ablation_ttest(benchmark, save_result):
    table, with_ttest, naive = run_once(benchmark, run_ablation)
    save_result("ablation_ttest", table)
    # The naive variant cannot scale in (every comparison "exceeds"), so
    # it allocates at least as many CPUs for the same workload.
    assert naive["cpus"] >= with_ttest["cpus"] - 0.5
    # Neither variant should sacrifice the SLA under constant load.
    assert with_ttest["violations"] < 0.2
    assert naive["violations"] < 0.2
