"""Fig. 2 benchmark: backpressure heatmaps for the three chains.

Shape targets (§III): nested RPC shows significant backpressure, most
pronounced at tier 4 and negligible above tier 3; event-driven RPC the
same but weaker; MQ shows none.
"""

from conftest import run_once

from repro.api import run_all_chains
from repro.experiments.fig02_backpressure import (
    backpressure_factor,
    experiment_meta,
    render_report,
)
from repro.net.messages import CallMode


def test_fig02_backpressure(benchmark, save_result):
    heatmaps = run_once(benchmark, run_all_chains)
    save_result(
        "fig02_backpressure", render_report(heatmaps), experiment_meta(heatmaps)
    )

    rpc = heatmaps[CallMode.RPC]
    event = heatmaps[CallMode.EVENT]
    mq = heatmaps[CallMode.MQ]
    # Nested RPC: parent of the culprit inflates most among tiers 1-4.
    rpc_factors = [backpressure_factor(rpc, t) for t in range(1, 5)]
    assert max(rpc_factors) == rpc_factors[3]
    assert rpc_factors[3] > 3.0
    # ...and diminishes up the chain: tiers 1-2 below tier 4.
    assert rpc_factors[0] < rpc_factors[3]
    assert rpc_factors[1] < rpc_factors[3]
    # Event-driven: backpressure present at tier 4.
    assert backpressure_factor(event, 4) > 2.0
    # MQ: no backpressure anywhere upstream; culprit tier inflates.
    for tier in range(1, 5):
        assert backpressure_factor(mq, tier) < 1.3
    assert backpressure_factor(mq, 5) > 5.0
