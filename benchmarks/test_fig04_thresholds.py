"""Fig. 4 benchmark: backpressure-free threshold profiling.

Shape targets: the profiler converges; thresholds land in the 35-75 %
utilisation band (paper: 46.2 % and 60.0 %); proxy latency before
convergence is several times its converged value.
"""

from conftest import run_once

from repro.api import run_threshold_profiling
from repro.experiments.fig04_thresholds import experiment_meta


def test_fig04_thresholds(benchmark, save_result):
    curves = run_once(benchmark, run_threshold_profiling)
    save_result("fig04_thresholds", curves.render(), experiment_meta(curves))
    for name, profile in curves.profiles.items():
        assert 0.30 <= profile.threshold_utilization <= 0.80, name
        converged = profile.points[-1].proxy_p99_mean
        peak = max(p.proxy_p99_mean for p in profile.points)
        # Significant backpressure before convergence: >5x inflation.
        assert peak > 5.0 * converged, name
        # Utilisation decreases as the CPU limit grows.
        utils = [p.utilization for p in profile.points]
        assert utils[0] > utils[-1], name
