"""Fig. 9 benchmark: estimated vs measured latency, social network.

Shape target: the calibrated estimates track measurements, with mean
estimated/measured ratios near 1 (paper: 0.97-1.05).
"""

import math

from conftest import run_once

from repro.api import RunOptions, run_model_accuracy
from repro.experiments.fig09_10_model_accuracy import (
    FIG9_10_SEED,
    FIG9_CLASSES,
    experiment_meta,
)


def test_fig09_model_accuracy(benchmark, save_result):
    result = run_once(
        benchmark,
        run_model_accuracy,
        "social-network",
        FIG9_CLASSES,
        options=RunOptions(seed=FIG9_10_SEED, digest=True),
    )
    save_result(
        "fig09_model_accuracy",
        result.render(),
        experiment_meta(result, "fig09_model_accuracy"),
    )
    ratios = {}
    for name, series in result.series.items():
        if len(series.points) >= 3:
            ratios[name] = series.mean_ratio
    assert ratios, "no class produced enough windows"
    for name, ratio in ratios.items():
        assert not math.isnan(ratio), name
        # Paper band is 0.97-1.05; allow a wider, still-tracking band at
        # the reduced quick scale.
        assert 0.7 <= ratio <= 1.4, (name, ratio)
