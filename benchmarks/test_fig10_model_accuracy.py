"""Fig. 10 benchmark: estimated vs measured latency, video pipeline.

Shape target: both priority classes' estimates track measurements (paper
mean ratios 0.96 and 1.00, at the p50/p99 SLA percentiles respectively).
"""

import math

from conftest import run_once

from repro.api import RunOptions, run_model_accuracy
from repro.experiments.fig09_10_model_accuracy import (
    FIG9_10_SEED,
    experiment_meta,
)


def test_fig10_model_accuracy(benchmark, save_result):
    result = run_once(
        benchmark,
        run_model_accuracy,
        "video-pipeline",
        ("high-priority", "low-priority"),
        options=RunOptions(seed=FIG9_10_SEED, digest=True),
    )
    save_result(
        "fig10_model_accuracy",
        result.render(),
        experiment_meta(result, "fig10_model_accuracy"),
    )
    for name, series in result.series.items():
        if len(series.points) < 3:
            continue
        ratio = series.mean_ratio
        assert not math.isnan(ratio), name
        assert 0.6 <= ratio <= 1.5, (name, ratio)
