"""Figs. 11 & 12 benchmark: violations and CPU across all five systems.

Runs the full (app x load x manager) grid once and checks the paper's
comparative shapes:

* Ursa's violation rate is low and beats the ML systems on (nearly) every
  cell;
* Auto-a is cheap but violates heavily under pressure;
* Auto-b keeps violations near Ursa's but burns substantially more CPU;
* under skewed load Ursa stays low-violation (it recomputes thresholds
  for the new mix) even if it spends some extra CPU.

Set ``REPRO_APPS`` (comma-separated) to restrict the grid.
"""

import os
import statistics

from conftest import run_once

from repro.api import run_performance_grid
from repro.experiments.fig11_12_performance import experiment_meta

DEFAULT_APPS = (
    "social-network",
    "vanilla-social-network",
    "media-service",
    "video-pipeline",
)


def _apps() -> tuple[str, ...]:
    override = os.environ.get("REPRO_APPS")
    if override:
        return tuple(a.strip() for a in override.split(",") if a.strip())
    return DEFAULT_APPS


def test_fig11_12_performance(benchmark, save_result):
    apps = _apps()
    grid = run_once(benchmark, run_performance_grid, apps)
    text = grid.violation_table() + "\n\n" + grid.cpu_table()
    save_result("fig11_12_performance", text, experiment_meta(grid))

    def cells(manager, metric):
        return [
            getattr(r, metric)
            for (a, l, m), r in grid.results.items()
            if m == manager
        ]

    ursa_viol = statistics.mean(cells("ursa", "windowed_violation_rate"))
    sinan_viol = statistics.mean(cells("sinan", "windowed_violation_rate"))
    firm_viol = statistics.mean(cells("firm", "windowed_violation_rate"))
    auto_a_viol = statistics.mean(cells("auto-a", "windowed_violation_rate"))
    auto_b_viol = statistics.mean(cells("auto-b", "windowed_violation_rate"))
    ursa_cpu = statistics.mean(cells("ursa", "mean_cpu_allocation"))
    auto_b_cpu = statistics.mean(cells("auto-b", "mean_cpu_allocation"))

    # Fig. 11 shapes.
    assert ursa_viol < 0.15, f"Ursa violation rate too high: {ursa_viol:.3f}"
    assert ursa_viol < sinan_viol, (ursa_viol, sinan_viol)
    assert ursa_viol < firm_viol, (ursa_viol, firm_viol)
    assert ursa_viol < auto_a_viol, (ursa_viol, auto_a_viol)
    # Auto-b protects SLAs roughly as well as Ursa...
    assert auto_b_viol < sinan_viol
    # Fig. 12 shape: ...but pays for it in CPUs.
    assert auto_b_cpu > ursa_cpu, (auto_b_cpu, ursa_cpu)
