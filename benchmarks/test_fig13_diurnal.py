"""Fig. 13 benchmark: Ursa's allocations track a diurnal load.

Shape target: per-service allocated CPUs correlate positively with the
service's load over the diurnal cycle for the services that need to scale
(the load peaks at ~2.6x the trough, so at least the bottleneck services
must add and remove replicas).
"""

from conftest import run_once

from repro.api import run_diurnal_trace
from repro.experiments.fig13_diurnal import experiment_meta


def test_fig13_diurnal(benchmark, save_result):
    trace = run_once(benchmark, run_diurnal_trace)
    save_result("fig13_diurnal", trace.render(), experiment_meta(trace))
    assert trace.traces, "no services traced"
    correlations = {
        name: t.correlation()
        for name, t in trace.traces.items()
        if len(t.cpus) >= 5
    }
    scaled_services = {
        name: t
        for name, t in trace.traces.items()
        if max(v for _, v in t.cpus) > min(v for _, v in t.cpus)
    }
    # At least one representative service scales with the cycle, and every
    # service that does scale correlates positively with its load.
    assert scaled_services, "no service scaled over the diurnal cycle"
    for name in scaled_services:
        assert correlations[name] > 0.2, (name, correlations[name])
