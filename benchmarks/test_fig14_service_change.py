"""Fig. 14 benchmark: adapting to the object-detect model swap.

Shape targets: the partial re-exploration touches only the changed
service and needs a small sample budget (paper: 75 samples, 1.25 h);
after recalculation the updated deployment keeps the object-detect SLA
(violation rate at or below the original's few-percent level).
"""

from conftest import run_once

from repro.api import run_service_change
from repro.experiments.fig14_service_change import experiment_meta


def test_fig14_service_change(benchmark, save_result):
    result = run_once(benchmark, run_service_change)
    save_result("fig14_service_change", result.render(), experiment_meta(result))
    # Partial exploration is small: one service's worth of samples.
    assert result.partial_samples <= 200
    assert result.partial_time_s <= 3 * 3600
    # Both deployments hold the 10 s object-detect SLA almost always.
    assert result.original.violation_rate < 0.05
    assert result.updated.violation_rate < 0.05
    # The lighter model shifts the latency CDF left (median drops).
    orig_median = dict((q, v) for v, q in result.original.cdf).get(0.5)
    new_median = dict((q, v) for v, q in result.updated.cdf).get(0.5)
    if orig_median and new_median:
        assert new_median < orig_median
