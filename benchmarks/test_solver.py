"""Solver benchmark: branch-and-bound speed on realistic model sizes.

The optimisation engine must re-solve within control-plane timescales
(Table VI reports Ursa's update at ~272 ms on the paper's hardware).  This
benchmark times the exact solver on a synthetic instance the size of the
social network model (13 services x 8 LPR options x 7 classes).
"""

import numpy as np

from repro.solver import AllocationModel, ClassSla, ServiceOptions, solve

GRID = [50.0, 90.0, 95.0, 99.0, 99.5, 99.9]


def build_instance(n_services=13, n_options=8, n_classes=7, seed=0):
    rng = np.random.default_rng(seed)
    class_names = [f"class-{j}" for j in range(n_classes)]
    services = []
    for k in range(n_services):
        served = [c for c in class_names if rng.random() < 0.5] or class_names[:1]
        base = rng.uniform(0.002, 0.05)
        latency = {}
        for c in served:
            rows = np.sort(
                np.outer(
                    np.linspace(1.0, 4.0, n_options),
                    base * np.linspace(1.0, 1.6, len(GRID)),
                ),
                axis=1,
            )
            latency[c] = rows
        resources = np.linspace(n_options * 2.0, 2.0, n_options).tolist()
        services.append(ServiceOptions(f"s{k}", resources, latency))
    slas = [ClassSla(c, 99.0, 0.8) for c in class_names]
    return AllocationModel(services, slas, GRID)


def test_solver_speed(benchmark):
    model = build_instance()
    solution = benchmark(solve, model)
    assert solution.objective > 0
    # Every class's bound respects its target.
    for sla in model.slas:
        assert solution.latency_bound[sla.name] <= sla.target_s + 1e-9
