"""Table V benchmark: exploration overhead, Ursa vs Sinan/Firm.

Shape targets: Ursa needs far fewer samples (paper: >=16.7x) and far less
wall time (paper: >=128x) than the ML systems' prescribed 10k-sample
budget.  At the quick scale profile the measured reductions are of the
same order, not identical.
"""

from conftest import run_once

from repro.api import run_table05
from repro.experiments.table05_exploration import experiment_meta


def test_table05_exploration(benchmark, save_result):
    table = run_once(benchmark, run_table05)
    save_result("table05_exploration", table.render(), experiment_meta(table))
    for row in table.rows:
        # Ursa collects hundreds, not thousands, of samples.
        assert row.ursa_samples < 2000, row.app
        assert row.sample_reduction > 5.0, row.app
        assert row.time_reduction > 50.0, row.app
        # Exploration time is bounded by the longest single service.
        assert row.ursa_time_h < 2.0, row.app
