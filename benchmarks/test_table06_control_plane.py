"""Table VI benchmark: control-plane decision latency.

Shape targets (absolute numbers are host-dependent):

* deployment decisions: autoscaling <= Ursa << Firm << Sinan;
* updates: Ursa's MIP re-solve is much cheaper than ML retraining and
  within an order of magnitude of a Firm online iteration.
"""

from conftest import run_once

from repro.api import run_table06
from repro.experiments.table06_control_plane import experiment_meta


def test_table06_control_plane(benchmark, save_result):
    table = run_once(benchmark, run_table06)
    save_result("table06_control_plane", table.render(), experiment_meta(table))
    deploy = table.deploy_ms
    # Ordering shape.
    assert deploy["autoscaling"] <= deploy["ursa"] * 2.0
    assert deploy["ursa"] < deploy["firm"], deploy
    assert deploy["firm"] < deploy["sinan"], deploy
    # Ursa's fast path is sub-10ms even in pure Python.
    assert deploy["ursa"] < 10.0, deploy
    # Updates: Ursa's re-solve completes in bounded time.
    assert table.update_ms["ursa"] is not None
    assert table.update_ms["sinan"] is None  # retraining, not online
