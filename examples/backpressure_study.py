#!/usr/bin/env python3
"""The §III backpressure case study, end to end.

Reproduces both halves of the paper's motivation:

1. Fig. 2 -- how a throttled leaf tier's latency anomaly propagates
   through nested-RPC, event-driven-RPC and message-queue chains;
2. Fig. 4 -- profiling a service's backpressure-free CPU-utilisation
   threshold with the 3-tier proxy engine and Welch's t-test.

Run:  python examples/backpressure_study.py
"""

from repro.core import BackpressureProfiler
from repro.api import run_all_chains
from repro.experiments.fig02_backpressure import backpressure_factor
from repro.sim.random import LogNormal, RandomStreams


def main() -> None:
    print("== Fig. 2: throttling tier-5 of three 5-tier chains (minutes 3-6)")
    heatmaps = run_all_chains()
    for mode, heatmap in heatmaps.items():
        print()
        print(heatmap.render())
        factors = "  ".join(
            f"tier{t}x{backpressure_factor(heatmap, t):.1f}" for t in range(1, 6)
        )
        print(f"   inflation during throttle: {factors}")
    print()
    print("   takeaway: RPC chains push the anomaly into the parent tier;")
    print("   the message-queue chain isolates it completely.")

    print()
    print("== Fig. 4: profiling backpressure-free thresholds")
    profiler = BackpressureProfiler(
        RandomStreams(7), window_s=6.0, samples_per_limit=6
    )
    for name, work in [
        ("post", LogNormal(0.0050, 0.5)),
        ("timeline-read", LogNormal(0.0120, 0.6)),
    ]:
        profile = profiler.profile(name, work, max_cpu_limit=8)
        print(f"   {name}: backpressure-free threshold = "
              f"{profile.threshold_utilization:.1%} "
              f"(proxy latency converged at CPU limit "
              f"{profile.converged_cpu_limit})")
        for point in profile.points:
            print(
                f"      limit={point.cpu_limit}  proxy p99 = "
                f"{point.proxy_p99_mean * 1000:9.1f} ms  util = "
                f"{point.utilization:.2f}"
            )


if __name__ == "__main__":
    main()
