#!/usr/bin/env python3
"""Throughput-per-dollar comparison (§VII-E Discussion).

Runs the vanilla social network under Ursa and under both autoscaler
configurations on the *same* workload, then reports relative
throughput-per-dollar and goodput-per-dollar — the paper's argument that
Ursa's CPU savings translate directly into serving more traffic for the
same budget.

Run:  python examples/cost_efficiency.py
"""

from repro.apps import build_vanilla_social_network_spec
from repro.core import ExplorationController
from repro.experiments.goodput import compare_cost_efficiency
from repro.experiments.managers import attach_autoscaler, attach_ursa
from repro.api import RunOptions, run_deployment
from repro.sim import RandomStreams
from repro.workload import ConstantLoad
from repro.workload.defaults import vanilla_social_network_mix


def main() -> None:
    spec = build_vanilla_social_network_spec()
    mix = vanilla_social_network_mix()
    rps = 120.0
    pattern = ConstantLoad(rps)

    print("== exploring (Ursa needs its LPR profiles first)")
    explorer = ExplorationController(
        RandomStreams(70), window_s=20.0, samples_per_step=4,
        warmup_s=40, settle_s=10,
    )
    exploration = explorer.explore_app(
        spec, mix, rps, {s.name: 0.6 for s in spec.services}
    )

    print("== running the three systems on the identical workload")
    class_loads = {c: rps * mix.fraction(c) for c in mix.classes()}
    runs = {}
    options = RunOptions(seed=71, duration_s=540)
    runs["ursa"] = run_deployment(
        spec, mix, pattern, attach_ursa(exploration, class_loads),
        "ursa", "constant", options,
    )
    for variant in ("auto-a", "auto-b"):
        runs[variant] = run_deployment(
            spec, mix, pattern, attach_autoscaler(variant, mix, rps),
            variant, "constant", options,
        )

    print(f"{'system':10s} {'violations':>11s} {'mean CPUs':>10s}")
    for name, result in runs.items():
        print(
            f"{name:10s} {result.windowed_violation_rate:>10.1%} "
            f"{result.mean_cpu_allocation:>10.1f}"
        )

    print("\n== cost efficiency relative to each baseline")
    for baseline in ("auto-a", "auto-b"):
        eff = compare_cost_efficiency(runs["ursa"], runs[baseline])
        print(
            f"vs {baseline}: {eff.throughput_per_dollar_x:.2f}x throughput/$, "
            f"{eff.goodput_per_dollar_x:.2f}x goodput/$"
        )


if __name__ == "__main__":
    main()
