#!/usr/bin/env python3
"""Quickstart: deploy the social network under Ursa and watch it scale.

Walks the full Ursa lifecycle on a simulated cluster:

1. profile backpressure-free thresholds for two services (§III);
2. explore the per-service LPR allocation space (Algorithm 1);
3. solve the §IV MIP for the expected load and deploy;
4. drive a constant workload and report SLA compliance and CPU usage.

Run:  python examples/quickstart.py
"""

from repro.apps import build_vanilla_social_network_spec
from repro.apps.topology import Application
from repro.core import BackpressureProfiler, ExplorationController, UrsaManager
from repro.sim import Environment, RandomStreams
from repro.workload import ConstantLoad, LoadGenerator
from repro.workload.defaults import vanilla_social_network_mix


def main() -> None:
    spec = build_vanilla_social_network_spec()
    mix = vanilla_social_network_mix()
    rps = 120.0

    # -- 1. backpressure-free thresholds (two services for brevity) -----
    print("== profiling backpressure-free thresholds (Fig. 3 engine)")
    profiler = BackpressureProfiler(
        RandomStreams(1), window_s=6.0, samples_per_limit=5
    )
    thresholds = {s.name: 0.6 for s in spec.services}  # default
    for name in ("timeline-service", "post-storage"):
        service = spec.service(name)
        result = profiler.profile_spec(service, mix, max_cpu_limit=6)
        thresholds[name] = result.threshold_utilization
        print(f"   {name}: threshold = {result.threshold_utilization:.1%}")

    # -- 2. allocation-space exploration (Algorithm 1) -------------------
    print("== exploring the allocation space (this simulates ~an hour of")
    print("   per-service profiling; takes a minute or two of wall time)")
    explorer = ExplorationController(
        RandomStreams(2), window_s=20.0, samples_per_step=4, warmup_s=40,
        settle_s=10,
    )
    exploration = explorer.explore_app(spec, mix, rps, thresholds)
    print(
        f"   collected {exploration.total_samples} samples; "
        f"longest service took "
        f"{exploration.exploration_time_s / 60:.0f} simulated minutes"
    )

    # -- 3. optimise and deploy ------------------------------------------
    env = Environment()
    app = Application(spec, env=env, streams=RandomStreams(3), initial_replicas=1)
    env.run(until=10)
    manager = UrsaManager(app, exploration)
    class_loads = {c: rps * mix.fraction(c) for c in mix.classes()}
    outcome = manager.initialize(class_loads)
    manager.start()
    print("== optimiser chose per-service scaling thresholds:")
    for name, threshold in sorted(outcome.thresholds.items()):
        lpr = max(threshold.lpr.values())
        print(
            f"   {name:18s} lpr<= {lpr:7.1f} rps/replica  "
            f"replicas now: {app.services[name].deployment.desired_replicas}"
        )

    # -- 4. drive load and report ----------------------------------------
    print("== running a 10-minute constant-load deployment...")
    LoadGenerator(
        app, ConstantLoad(rps), mix, RandomStreams(4), stop_at_s=600
    ).start()
    env.run(until=640)
    print(f"   SLA violation rate: {app.windowed_violation_rate(120, 640):.2%}")
    print(f"   mean CPU allocation: {app.mean_cpu_allocation(120, 640):.1f} cores")
    for rc in spec.request_classes:
        dist = app.hub.latency_distribution(
            "request_latency", 120, 640, {"request": rc.name}
        )
        if dist:
            print(
                f"   {rc.name:18s} p{rc.sla.percentile:g} = "
                f"{dist.percentile(rc.sla.percentile) * 1000:7.1f} ms "
                f"(SLA {rc.sla.target_s * 1000:.0f} ms, n={dist.count})"
            )


if __name__ == "__main__":
    main()
