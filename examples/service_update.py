#!/usr/bin/env python3
"""Adapting to a business-logic change (§VII-G).

The social network's object-detection service swaps DETR for the ~5x
lighter MobileNet.  Ursa re-explores only the changed microservice (a
partial exploration of ~a dozen samples here), recalculates thresholds,
and the updated deployment keeps the end-to-end object-detect SLA with a
fraction of the previous CPU allocation.

Run:  python examples/service_update.py
"""

from repro.apps import build_social_network_spec, swap_object_detect_model
from repro.apps.topology import Application
from repro.core import ExplorationController, ExplorationResult, UrsaManager
from repro.sim import Environment, RandomStreams
from repro.workload import ConstantLoad, LoadGenerator
from repro.workload.defaults import social_network_mix

SERVICE = "object-detect-ml"
CLASS_NAME = "object-detect"


def deploy(spec, exploration, label, seed):
    mix = social_network_mix()
    rps = 120.0
    env = Environment()
    app = Application(spec, env=env, streams=RandomStreams(seed), initial_replicas=1)
    env.run(until=10)
    manager = UrsaManager(app, exploration)
    manager.initialize({c: rps * mix.fraction(c) for c in mix.classes()})
    manager.start()
    LoadGenerator(app, ConstantLoad(rps), mix, RandomStreams(seed + 1),
                  stop_at_s=500).start()
    env.run(until=540)
    dist = app.hub.latency_distribution(
        "request_latency", 120, 540, {"request": CLASS_NAME}
    )
    sla = spec.request_class(CLASS_NAME).sla
    print(f"-- {label}")
    print(
        f"   object-detect p99 = {dist.percentile(99):.2f} s "
        f"(SLA {sla.target_s:.0f} s), violation rate "
        f"{dist.fraction_above(sla.target_s):.2%}"
    )
    ml_cpus = app.hub.gauge_mean(
        "cpu_allocated", 120, 540, {"service": SERVICE}, default=0.0
    )
    print(f"   {SERVICE} mean CPUs: {ml_cpus:.1f}")


def main() -> None:
    original = build_social_network_spec()
    updated = swap_object_detect_model(original)
    mix = social_network_mix()
    rps = 120.0

    explorer = ExplorationController(
        RandomStreams(20), window_s=20.0, samples_per_step=4, warmup_s=40,
        settle_s=10,
    )
    print("== full exploration of the original application")
    exploration = explorer.explore_app(
        original, mix, rps, {s.name: 0.6 for s in original.services}
    )
    print(f"   {exploration.total_samples} samples total")
    deploy(original, exploration, "original deployment (DETR)", seed=21)

    print("== model swap: partial re-exploration of only the changed service")
    partial = explorer.explore_service(
        updated, SERVICE, mix, rps, 0.6, seed_salt=99
    )
    print(
        f"   {partial.samples_collected} samples in "
        f"{partial.profiling_time_s / 60:.0f} simulated minutes "
        f"(stopped by {partial.terminated_by})"
    )
    merged = ExplorationResult(
        app_name=updated.name,
        profiles={**exploration.profiles, SERVICE: partial},
    )
    deploy(updated, merged, "updated deployment (MobileNet)", seed=23)


if __name__ == "__main__":
    main()
