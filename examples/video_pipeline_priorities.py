#!/usr/bin/env python3
"""Priority-aware resource management for the video-processing pipeline.

The pipeline (§VI) handles two request priorities with different SLAs:
high-priority jobs must finish within 20 s at the 99th percentile, while
low-priority jobs target a 4 s *median*.  The message queues serve
high-priority work whenever any is waiting; Ursa sizes the stages so both
SLAs hold simultaneously.

The example deploys the pipeline under Ursa, then shifts the priority mix
mid-run (more high-priority traffic) and shows the anomaly detector's
threshold recalculation keeping both classes within their SLAs.

Run:  python examples/video_pipeline_priorities.py
"""

from repro.apps import build_video_pipeline_spec
from repro.apps.topology import Application
from repro.core import ExplorationController, UrsaManager
from repro.sim import Environment, RandomStreams
from repro.workload import ConstantLoad, LoadGenerator
from repro.workload.defaults import video_pipeline_mix


def report(app, t0, t1, label):
    print(f"-- {label}")
    for rc in app.spec.request_classes:
        dist = app.hub.latency_distribution(
            "request_latency", t0, t1, {"request": rc.name}
        )
        if dist:
            value = dist.percentile(rc.sla.percentile)
            status = "OK " if value <= rc.sla.target_s else "VIOL"
            print(
                f"   [{status}] {rc.name:14s} p{rc.sla.percentile:g} = "
                f"{value:6.2f} s (SLA {rc.sla.target_s:.0f} s, n={dist.count})"
            )
    print(f"   CPUs allocated: {app.allocated_cpus()}")


def main() -> None:
    spec = build_video_pipeline_spec()
    mix = video_pipeline_mix(high_fraction=0.25)
    rps = 2.5

    print("== exploring the three pipeline stages")
    explorer = ExplorationController(
        RandomStreams(10),
        window_s=30.0,
        samples_per_step=4,
        warmup_s=60,
        settle_s=15,
        min_window_samples=15,
    )
    exploration = explorer.explore_app(
        spec, mix, rps, {s.name: 0.7 for s in spec.services}
    )
    for name, profile in exploration.profiles.items():
        print(
            f"   {name:12s} {len(profile.options)} LPR options, "
            f"stopped by {profile.terminated_by}"
        )

    env = Environment()
    app = Application(spec, env=env, streams=RandomStreams(11), initial_replicas=1)
    env.run(until=10)
    manager = UrsaManager(
        app,
        exploration,
        anomaly_check_interval_s=60.0,
        ratio_deviation_threshold=0.5,
    )
    manager.initialize({c: rps * mix.fraction(c) for c in mix.classes()})
    manager.start()

    print("== phase 1: 25% high / 75% low priority")
    generator = LoadGenerator(
        app, ConstantLoad(rps), mix, RandomStreams(12), stop_at_s=1e9
    )
    generator.start()
    env.run(until=700)
    report(app, 150, 700, "after 700 s at the exploration mix")

    print("== phase 2: shifting to 60% high priority (skewed mix)")
    # Shift the arrival mix by changing per-class intensities in place:
    # stop the old generator's effect by exhausting its classes equally and
    # start a second generator carrying the extra high-priority traffic.
    generator.stop_at_s = env.now  # retire phase-1 arrivals
    skewed = video_pipeline_mix(high_fraction=0.60)
    LoadGenerator(
        app, ConstantLoad(rps), skewed, RandomStreams(13), stop_at_s=1500
    ).start()
    env.run(until=1600)
    report(app, 900, 1600, "after the skew (Ursa recalculated thresholds)")
    print(f"   threshold recalculations triggered: {manager.recalculations}")


if __name__ == "__main__":
    main()
