"""repro -- reproduction of Ursa (HPCA 2024).

Ursa is a lightweight resource-management framework for cloud-native
microservices.  This package re-implements the full system on top of a
discrete-event cluster simulator:

* :mod:`repro.sim` -- discrete-event simulation kernel.
* :mod:`repro.cluster` -- Kubernetes-like cluster substrate.
* :mod:`repro.net` -- RPC and message-queue communication models.
* :mod:`repro.services` -- microservice queueing models.
* :mod:`repro.apps` -- benchmark applications (social network, media
  service, video pipeline, synthetic chains).
* :mod:`repro.workload` -- Poisson load generation and load patterns.
* :mod:`repro.telemetry` -- Prometheus-like metrics collection.
* :mod:`repro.stats` -- Welch's t-test and distribution utilities.
* :mod:`repro.solver` -- branch-and-bound one-hot-group MIP solver.
* :mod:`repro.core` -- the Ursa contribution: SLA decomposition,
  backpressure-free profiling, LPR exploration, MIP-based optimisation,
  the resource controller and anomaly detector.
* :mod:`repro.baselines` -- Sinan, Firm, and step autoscaling.
* :mod:`repro.experiments` -- per-table/figure reproduction harnesses.

Quickstart::

    from repro.apps import build_social_network
    from repro.experiments.runner import run_managed_deployment

    app = build_social_network()
    result = run_managed_deployment(app, manager="ursa", duration_s=300)
    print(result.sla_violation_rate, result.mean_cpu_allocation)
"""

from repro._version import __version__
from repro.errors import (
    ConfigurationError,
    ExplorationError,
    InfeasibleModelError,
    ReproError,
    SchedulingError,
    SolverError,
    TelemetryError,
    TopologyError,
)

__all__ = [
    "__version__",
    "ConfigurationError",
    "ExplorationError",
    "InfeasibleModelError",
    "ReproError",
    "SchedulingError",
    "SolverError",
    "TelemetryError",
    "TopologyError",
]
