"""repro -- reproduction of Ursa (HPCA 2024).

Ursa is a lightweight resource-management framework for cloud-native
microservices.  This package re-implements the full system on top of a
discrete-event cluster simulator:

* :mod:`repro.sim` -- discrete-event simulation kernel.
* :mod:`repro.cluster` -- Kubernetes-like cluster substrate.
* :mod:`repro.net` -- RPC and message-queue communication models.
* :mod:`repro.services` -- microservice queueing models.
* :mod:`repro.apps` -- benchmark applications (social network, media
  service, video pipeline, synthetic chains).
* :mod:`repro.workload` -- Poisson load generation and load patterns.
* :mod:`repro.telemetry` -- Prometheus-like metrics collection.
* :mod:`repro.stats` -- Welch's t-test and distribution utilities.
* :mod:`repro.solver` -- branch-and-bound one-hot-group MIP solver.
* :mod:`repro.core` -- the Ursa contribution: SLA decomposition,
  backpressure-free profiling, LPR exploration, MIP-based optimisation,
  the resource controller and anomaly detector.
* :mod:`repro.baselines` -- Sinan, Firm, and step autoscaling.
* :mod:`repro.experiments` -- per-table/figure reproduction harnesses.

Quickstart (the supported import surface is :mod:`repro.api`, also
re-exported lazily from this package)::

    from repro.api import RunOptions, simulate

    result = simulate("social-network", options=RunOptions(seed=23))
    print(result.windowed_violation_rate, result.mean_cpu_allocation)
"""

from repro._version import __version__
from repro.errors import (
    ConfigurationError,
    ExplorationError,
    InfeasibleModelError,
    ReproError,
    SchedulingError,
    SolverError,
    TelemetryError,
    TopologyError,
)

__all__ = [
    "__version__",
    "ConfigurationError",
    "ExplorationError",
    "InfeasibleModelError",
    "ReproError",
    "SchedulingError",
    "SolverError",
    "TelemetryError",
    "TopologyError",
]


def __getattr__(name: str):
    """Lazily forward :mod:`repro.api` names (``repro.simulate`` etc.).

    Keeps ``import repro`` cheap -- the experiment stack behind the api
    facade only loads when a facade name is actually touched.  Resolved
    via ``importlib`` (not ``from repro import api``), which returns the
    in-progress module from ``sys.modules`` during ``repro.api``'s own
    import instead of recursing back into this hook.
    """
    import importlib

    api = importlib.import_module("repro.api")
    if name == "api":
        return api
    if name in api.__all__:
        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    import importlib

    api = importlib.import_module("repro.api")
    return sorted(set(__all__) | set(api.__all__) | set(globals()))
