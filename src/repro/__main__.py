"""``python -m repro`` -- run one paper experiment from the command line."""

import sys

from repro.experiments.cli import main

sys.exit(main())
