"""ursalint -- static analysis enforcing the determinism contract.

The simulation engine's reproducibility promise (same seed, identical
run) only holds if every simulated component follows a handful of coding
rules.  This package checks them:

========  ===========================================================
SIM001    no wall-clock reads (``time.time`` etc.) on simulated paths
SIM002    no global RNG (``random.*``, ``np.random.*``); use
          :class:`repro.sim.random.RandomStreams`
SIM003    no iteration over unordered ``set`` / ``frozenset`` values
SIM004    no bare/broad ``except`` in generator processes (swallows
          :class:`repro.sim.engine.Interrupt`)
SIM005    every ``acquire()`` in a process releases in a ``finally``
SIM006    no ``==`` / ``!=`` against the float ``env.now``
API001    no mutable default arguments
========  ===========================================================

Run ``python -m repro.analysis src/`` (see :mod:`repro.analysis.cli`),
or use :func:`lint_paths` / :func:`lint_source` programmatically.  Rules
are selected per package by :mod:`repro.analysis.policy`; intentional
violations carry ``# ursalint: disable=RULE -- reason`` comments.
Full rule documentation lives in ``docs/static_analysis.md``.
"""

from repro.analysis.core import (
    Finding,
    LintError,
    Rule,
    lint_file,
    lint_paths,
    lint_source,
    register,
    registry,
)
from repro.analysis.policy import Profile, profile_for_path

__all__ = [
    "Finding",
    "LintError",
    "Profile",
    "Rule",
    "lint_file",
    "lint_paths",
    "lint_source",
    "profile_for_path",
    "register",
    "registry",
]
