"""ursalint -- static analysis enforcing the determinism contract.

The simulation engine's reproducibility promise (same seed, identical
run) only holds if every simulated component follows a handful of coding
rules.  This package checks them:

========  ===========================================================
SIM001    no wall-clock reads (``time.time`` etc.) on simulated paths
SIM002    no global RNG (``random.*``, ``np.random.*``); use
          :class:`repro.sim.random.RandomStreams`
SIM003    no iteration over unordered ``set`` / ``frozenset`` values
SIM004    no bare/broad ``except`` in generator processes (swallows
          :class:`repro.sim.engine.Interrupt`)
SIM005    every ``acquire()`` in a process releases in a ``finally``
          (or declares a checked ``transfers=`` ownership handoff)
SIM006    no ``==`` / ``!=`` against the float ``env.now``
API001    no mutable default arguments
========  ===========================================================

On top of the per-file rules, a *whole-program* pass
(:mod:`repro.analysis.program`) links every module into one import
graph and checks the cross-process hazards of the ``run_many`` pool:

========  ===========================================================
PAR001    worker-reachable *read* of a mutated module-level global
PAR002    worker-reachable *mutation* of a module-level global
PAR003    ``RunPlan`` capturing a closure or a live RNG object
========  ===========================================================

Run ``python -m repro.analysis src/`` (see :mod:`repro.analysis.cli`),
or use :func:`lint_paths` / :func:`analyze_program` programmatically.
Rules are selected per package by :mod:`repro.analysis.policy`;
intentional violations carry ``# ursalint: disable=RULE -- reason``
comments, and deliberate slot handoffs carry checked
``# ursalint: transfers=<receiver>`` annotations.  The matching
*runtime* check is :mod:`repro.analysis.sanitizer` (``REPRO_SANITIZE=1``).
Full rule documentation lives in ``docs/static_analysis.md``.
"""

from repro.analysis.core import (
    Finding,
    LintError,
    Rule,
    lint_file,
    lint_paths,
    lint_source,
    register,
    registry,
)
from repro.analysis.policy import Profile, profile_for_path
from repro.analysis.program import analyze_program, program_registry

__all__ = [
    "Finding",
    "LintError",
    "Profile",
    "Rule",
    "analyze_program",
    "lint_file",
    "lint_paths",
    "lint_source",
    "profile_for_path",
    "program_registry",
    "register",
    "registry",
]
