"""``python -m repro.analysis`` -- run ursalint."""

import sys

from repro.analysis.cli import main

sys.exit(main())
