"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Exit codes: 0 -- clean; 1 -- findings; 2 -- usage or lint errors (bad
rule id, unreadable file, syntax error in a checked file).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.core import Finding, LintError, lint_paths, registry
from repro.analysis.policy import profile_for_path

__all__ = ["main"]


def _default_paths() -> list[str]:
    """Prefer ``src/`` when run from a checkout, else the package dir."""
    if Path("src/repro").is_dir():
        return ["src"]
    return [str(Path(__file__).resolve().parents[1])]


def _report_text(findings: list[Finding], files_checked: int, out) -> None:
    for finding in findings:
        print(finding.render(), file=out)
    noun = "finding" if len(findings) == 1 else "findings"
    print(f"{len(findings)} {noun} in {files_checked} files checked", file=out)


def _report_json(findings: list[Finding], files_checked: int, out) -> None:
    payload = {
        "version": 1,
        "files_checked": files_checked,
        "findings": [finding.to_dict() for finding in findings],
    }
    print(json.dumps(payload, indent=2, sort_keys=True), file=out)


def _list_rules(out) -> None:
    for rule_id, rule_cls in registry().items():
        print(f"{rule_id}  {rule_cls.title}", file=out)
        print(f"        {rule_cls.rationale}", file=out)


def _parse_rule_list(raw: str) -> tuple[str, ...]:
    rules = {token.strip().upper() for token in raw.split(",") if token.strip()}
    unknown = rules - set(registry())
    if unknown:
        raise LintError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return tuple(sorted(rules))


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "ursalint: determinism & simulation-correctness linter for the "
            "Ursa reproduction"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: src/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (overrides the policy)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--show-policy",
        metavar="PATH",
        help="print the lint profile chosen for PATH and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules(sys.stdout)
        return 0
    if args.show_policy:
        profile = profile_for_path(args.show_policy)
        print(f"{args.show_policy}: profile={profile.name} "
              f"rules={','.join(sorted(profile.rules))}")
        return 0

    paths = args.paths or _default_paths()
    try:
        selected = _parse_rule_list(args.select) if args.select else None
        ignored = _parse_rule_list(args.ignore) if args.ignore else ()
        if selected is not None:
            findings, files_checked = lint_paths(
                paths, tuple(r for r in selected if r not in ignored)
            )
        elif ignored:
            # Per-file policy minus the ignored rules.
            findings = []
            files_checked = 0
            from repro.analysis.core import iter_python_files, lint_file

            for file in iter_python_files(paths):
                rules = profile_for_path(file).rules.difference(ignored)
                findings.extend(lint_file(file, rules))
                files_checked += 1
            findings.sort()
        else:
            findings, files_checked = lint_paths(paths)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    reporter = _report_json if args.format == "json" else _report_text
    reporter(findings, files_checked, sys.stdout)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
