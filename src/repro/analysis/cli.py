"""Command-line entry point: ``python -m repro.analysis [paths...]``.

Runs the per-file rules over every ``.py`` file, then the whole-program
pass (:mod:`repro.analysis.program`) over the given directories, and
merges the findings into one report.

Exit codes: 0 -- clean; 1 -- findings; 2 -- usage or lint errors (bad
rule id, unreadable file, syntax error in a checked file).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.core import Finding, LintError, lint_paths, registry
from repro.analysis.policy import profile_for_path
from repro.analysis.program import analyze_program, program_registry

__all__ = ["main"]


def _default_paths() -> list[str]:
    """Prefer ``src/`` when run from a checkout, else the package dir."""
    if Path("src/repro").is_dir():
        return ["src"]
    return [str(Path(__file__).resolve().parents[1])]


def _report_text(findings: list[Finding], files_checked: int, out) -> None:
    for finding in findings:
        print(finding.render(), file=out)
    noun = "finding" if len(findings) == 1 else "findings"
    print(f"{len(findings)} {noun} in {files_checked} files checked", file=out)


def _report_json(findings: list[Finding], files_checked: int, out) -> None:
    payload = {
        "version": 1,
        "files_checked": files_checked,
        "findings": [finding.to_dict() for finding in findings],
    }
    print(json.dumps(payload, indent=2, sort_keys=True), file=out)


def _list_rules(out) -> None:
    for rule_id, rule_cls in registry().items():
        print(f"{rule_id}  {rule_cls.title}", file=out)
        print(f"        {rule_cls.rationale}", file=out)
    for rule_id, program_rule in sorted(program_registry().items()):
        print(f"{rule_id}  {program_rule.title} (whole-program)", file=out)
        print(f"        {program_rule.rationale}", file=out)


def _parse_rule_list(raw: str) -> tuple[str, ...]:
    rules = {token.strip().upper() for token in raw.split(",") if token.strip()}
    unknown = rules - set(registry()) - set(program_registry())
    if unknown:
        raise LintError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return tuple(sorted(rules))


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "ursalint: determinism & simulation-correctness linter for the "
            "Ursa reproduction"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to check (default: src/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (overrides the policy)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--no-program",
        action="store_true",
        help="skip the whole-program pass (PAR rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--show-policy",
        metavar="PATH",
        help="print the lint profile chosen for PATH and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _list_rules(sys.stdout)
        return 0
    if args.show_policy:
        profile = profile_for_path(args.show_policy)
        print(f"{args.show_policy}: profile={profile.name} "
              f"rules={','.join(sorted(profile.rules))} "
              f"program={','.join(sorted(profile.program_rules))}")
        return 0

    paths = args.paths or _default_paths()
    program_ids = frozenset(program_registry())
    try:
        selected = _parse_rule_list(args.select) if args.select else None
        ignored = _parse_rule_list(args.ignore) if args.ignore else ()
        if selected is not None:
            file_rules = tuple(
                r for r in selected if r not in ignored and r not in program_ids
            )
            findings, files_checked = lint_paths(paths, file_rules)
        elif ignored:
            # Per-file policy minus the ignored rules.
            findings = []
            files_checked = 0
            from repro.analysis.core import iter_python_files, lint_file

            for file in iter_python_files(paths):
                rules = profile_for_path(file).rules.difference(ignored)
                findings.extend(lint_file(file, rules))
                files_checked += 1
            findings.sort()
        else:
            findings, files_checked = lint_paths(paths)
        if not args.no_program:
            roots = [p for p in paths if Path(p).is_dir()]
            if roots:
                if selected is not None:
                    program_rules = frozenset(
                        r for r in selected
                        if r in program_ids and r not in ignored
                    )
                    program_findings = (
                        analyze_program(roots, program_rules)
                        if program_rules
                        else []
                    )
                elif ignored:
                    program_findings = [
                        f
                        for f in analyze_program(roots)
                        if f.rule not in ignored
                    ]
                else:
                    program_findings = analyze_program(roots)
                findings = sorted(findings + program_findings)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    reporter = _report_json if args.format == "json" else _report_text
    reporter(findings, files_checked, sys.stdout)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
