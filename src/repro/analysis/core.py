"""Core machinery of *ursalint*, the repo's determinism linter.

The simulation engine promises that "runs with the same seed are exactly
reproducible" (:mod:`repro.sim.engine`).  That promise rests on coding
rules -- named :class:`~repro.sim.random.RandomStreams` instead of global
RNG, no wall-clock reads on simulated paths, no iteration over unordered
sets, no broad ``except`` swallowing :class:`~repro.sim.engine.Interrupt`
-- which this package turns from convention into checked invariants.

This module provides the pieces shared by every rule:

* :class:`Finding` -- one diagnostic (rule id, location, message).
* :class:`Rule` -- base class; each rule is a small ``ast.NodeVisitor``.
* :func:`register` -- decorator adding a rule class to the registry.
* :class:`LintContext` -- per-file state: source, inline suppressions.
* :func:`lint_source` / :func:`lint_file` / :func:`lint_paths` -- runners.

Inline suppressions use ``# ursalint: disable=RULE[,RULE...]`` -- on the
offending line, or on a comment-only line to suppress the next line.  An
optional reason may follow after ``--``::

    start = time.perf_counter()  # ursalint: disable=SIM001 -- Table VI probe

Ownership annotations use ``# ursalint: transfers=RECEIVER[,RECEIVER...]``
with the same line-targeting.  Unlike ``disable``, a ``transfers``
annotation is *checked*: it declares that the ``acquire()`` on the
annotated line deliberately hands the held slot to another process, and
:class:`~repro.analysis.rules.processes.AcquireReleaseRule` verifies the
declared receiver matches the acquire and that a matching ``release()``
exists elsewhere in the module::

    # ursalint: transfers=replica.threads -- released by _execute
    yield replica.threads.acquire(priority=request.priority)
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "LintContext",
    "LintError",
    "Rule",
    "TransferAnnotation",
    "dotted_name",
    "function_scope_walk",
    "is_generator_function",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "registry",
]


class LintError(Exception):
    """Raised when a file cannot be linted (unreadable, syntax error)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic emitted by a rule."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, type["Rule"]] = {}

_RULE_ID_RE = re.compile(r"^[A-Z]{3}\d{3}$")


def register(cls: type["Rule"]) -> type["Rule"]:
    """Class decorator adding ``cls`` to the global rule registry."""
    rule_id = getattr(cls, "id", "")
    if not _RULE_ID_RE.match(rule_id):
        raise ValueError(f"rule id must look like 'SIM001', got {rule_id!r}")
    if rule_id in _REGISTRY and _REGISTRY[rule_id] is not cls:
        raise ValueError(f"duplicate rule id {rule_id}")
    _REGISTRY[rule_id] = cls
    return cls


def registry() -> dict[str, type["Rule"]]:
    """All registered rules, keyed by id (imports the bundled rules)."""
    # Importing the rules package populates the registry on first use.
    from repro.analysis import rules  # noqa: F401

    return dict(sorted(_REGISTRY.items()))


class Rule(ast.NodeVisitor):
    """Base class for lint rules.

    Subclasses set ``id`` (e.g. ``"SIM001"``), ``title`` (one line) and
    ``rationale`` (why the rule protects determinism), then implement the
    usual ``visit_*`` methods, calling :meth:`report` for violations.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""

    def __init__(self, ctx: "LintContext") -> None:
        self.ctx = ctx

    def report(self, node: ast.AST, message: str) -> None:
        self.ctx.add(self.id, node, message)

    def run(self, tree: ast.Module) -> None:
        self.visit(tree)


# ----------------------------------------------------------------------
# Inline suppressions and ownership annotations
# ----------------------------------------------------------------------
_SUPPRESS_RE = re.compile(
    r"#\s*ursalint:\s*disable=([A-Za-z0-9_,\s]+?)(?:--.*)?$"
)

_TRANSFER_RE = re.compile(
    r"#\s*ursalint:\s*transfers=([A-Za-z0-9_.,\s]+?)(?:--.*)?$"
)


@dataclass(frozen=True)
class TransferAnnotation:
    """A checked ``# ursalint: transfers=...`` ownership declaration.

    ``line`` is the code line the annotation targets (same-line for a
    trailing comment, next line for a comment-only line); ``receivers``
    are the dotted resource expressions whose held slot is deliberately
    handed to another process instead of released in a ``finally``.
    """

    line: int
    receivers: tuple[str, ...]


def _annotation_comments(
    source: str, pattern: re.Pattern[str]
) -> Iterator[tuple[int, str]]:
    """Yield ``(target_line, payload)`` for each matching comment.

    Line targeting mirrors suppressions: a trailing comment targets its
    own line, a comment-only line targets the next line.
    """
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return
    lines = source.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = pattern.search(tok.string)
        if not match:
            continue
        line = tok.start[0]
        text_before = lines[line - 1][: tok.start[1]] if line <= len(lines) else ""
        target = line + 1 if not text_before.strip() else line
        yield target, match.group(1)


def _suppressed_lines(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> rule ids suppressed on that line."""
    suppressed: dict[int, set[str]] = {}
    for target, payload in _annotation_comments(source, _SUPPRESS_RE):
        rules = {r.strip().upper() for r in payload.split(",") if r.strip()}
        if rules:
            suppressed.setdefault(target, set()).update(rules)
    return {line: frozenset(rules) for line, rules in suppressed.items()}


def _transfer_lines(source: str) -> dict[int, TransferAnnotation]:
    """Map line number -> the transfer annotation targeting that line."""
    transfers: dict[int, TransferAnnotation] = {}
    for target, payload in _annotation_comments(source, _TRANSFER_RE):
        receivers = tuple(r.strip() for r in payload.split(",") if r.strip())
        if receivers:
            merged = transfers.get(target)
            if merged is not None:
                receivers = merged.receivers + receivers
            transfers[target] = TransferAnnotation(target, receivers)
    return transfers


class LintContext:
    """Per-file lint state shared by all rules."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.findings: list[Finding] = []
        self._suppressed = _suppressed_lines(source)
        #: line -> checked ownership annotation (see TransferAnnotation).
        self.transfers = _transfer_lines(source)
        #: annotation lines a rule has matched against an acquire().
        self.transfers_used: set[int] = set()

    def add(self, rule_id: str, node: ast.AST, message: str) -> None:
        line = int(getattr(node, "lineno", 0))
        col = int(getattr(node, "col_offset", 0))
        self.add_at(rule_id, line, col, message)

    def add_at(self, rule_id: str, line: int, col: int, message: str) -> None:
        active = self._suppressed.get(line, frozenset())
        if rule_id in active or "ALL" in active:
            return
        self.findings.append(Finding(self.path, line, col, rule_id, message))


# ----------------------------------------------------------------------
# AST helpers shared by rules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


def function_scope_walk(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, _SCOPE_NODES):
            stack.extend(ast.iter_child_nodes(node))


def is_generator_function(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """True when ``fn``'s own body yields (simulation-process shaped)."""
    return any(
        isinstance(node, (ast.Yield, ast.YieldFrom))
        for node in function_scope_walk(fn)
    )


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    path: str = "<string>",
    rule_ids: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint ``source`` with the given rules (default: policy for ``path``)."""
    if rule_ids is None:
        from repro.analysis.policy import profile_for_path

        rule_ids = profile_for_path(path).rules
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
    ctx = LintContext(path, source, tree)
    all_rules = registry()
    for rule_id in sorted(set(rule_ids)):
        try:
            rule_cls = all_rules[rule_id]
        except KeyError:
            raise LintError(f"unknown rule id {rule_id!r}")
        rule_cls(ctx).run(tree)
    return sorted(ctx.findings)


def lint_file(path: str | Path, rule_ids: Iterable[str] | None = None) -> list[Finding]:
    """Lint one file, applying the per-package policy by default."""
    path = Path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"{path}: cannot read: {exc}")
    return lint_source(source, str(path), rule_ids)


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            out.update(
                p
                for p in entry.rglob("*.py")
                if "__pycache__" not in p.parts
            )
        elif entry.suffix == ".py" or entry.is_file():
            out.add(entry)
        else:
            raise LintError(f"{entry}: no such file or directory")
    return sorted(out)


def lint_paths(
    paths: Sequence[str | Path],
    rule_ids: Iterable[str] | None = None,
) -> tuple[list[Finding], int]:
    """Lint files/directories; returns ``(findings, files_checked)``."""
    files = iter_python_files(paths)
    findings: list[Finding] = []
    for file in files:
        findings.extend(lint_file(file, rule_ids))
    return sorted(findings), len(files)
