"""Per-package lint policy.

Packages on the *simulated* path -- anything whose code runs inside (or
feeds variates into) an :class:`~repro.sim.engine.Environment` -- get the
strict determinism profile: every rule enabled.  ``repro.experiments`` is
the control plane of the reproduction itself: its harnesses legitimately
measure wall-clock time (Table VI control-plane latency, benchmark wall
seconds), so the wall-clock rule SIM001 is allowlisted there.  The same
applies to ``benchmarks/perf/``: its probes time the *kernel itself*
(events/sec, parallel speedup), so wall-clock reads are the entire point
-- see docs/performance.md.

``tests/`` gets its own profile: unit tests legitimately poke the
internals the strict rules protect -- they assert exact clock equality
(SIM006 is the property under test), build minimal acquire-only
processes to probe the resource primitives (SIM005), and record ad-hoc
metric/alert names outside the registries (TEL001/TEL002) -- so those
rules are allowlisted there and everything else stays on.  The lint fixtures under
``tests/analysis/fixtures/`` are *deliberate* violations and are
excluded from linting entirely.

Every profile except ``lint-fixtures`` also enables the whole-program
PAR rules (:mod:`repro.analysis.program`); they run once over the
project but findings are filtered per-file through this policy, which
is how fixture trees stay quiet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import registry

__all__ = [
    "EXPERIMENTS_ALLOWLIST",
    "INTERNAL_ALLOWLIST",
    "PERF_BENCH_ALLOWLIST",
    "Profile",
    "SIM_PATH_PACKAGES",
    "TESTS_ALLOWLIST",
    "profile_for_path",
]

#: Packages whose code executes on simulated time (or seeds it).
SIM_PATH_PACKAGES = frozenset(
    {
        "sim",
        "cluster",
        "net",
        "services",
        "apps",
        "workload",
        "core",
        "baselines",
        # Not named in the paper mapping but consumed from inside the
        # simulation (metrics recording, variate generation, solving):
        "telemetry",
        "stats",
        "solver",
    }
)

#: Rules disabled for the experiment harnesses (wall-clock probes are the
#: point of Table VI; runner wall-second reporting is diagnostics only).
EXPERIMENTS_ALLOWLIST = frozenset({"SIM001"})

#: Rules disabled for the performance microbenchmarks under
#: ``benchmarks/perf/`` -- they measure real execution speed of the
#: kernel and runner (BENCH_engine.json / BENCH_runner.json), so
#: wall-clock timing is their purpose, not an accident.
PERF_BENCH_ALLOWLIST = frozenset({"SIM001"})

#: Rules disabled *inside* the ``repro`` package itself: the facade
#: rule API002 exists to keep external callers (tests, benchmarks,
#: examples) on ``repro.api``; internal modules -- the facade, the CLI,
#: the fleet runner, the experiment harnesses importing each other --
#: are the implementation it fronts.
INTERNAL_ALLOWLIST = frozenset({"API002"})

#: Rules disabled for ``tests/``: exact-clock assertions (SIM006) are
#: the determinism property under test, minimal acquire-only processes
#: (SIM005) probe the resource primitives themselves, and ad-hoc metric/
#: alert names (TEL001/TEL002) keep unit tests independent of the
#: registries.
TESTS_ALLOWLIST = frozenset({"SIM005", "SIM006", "TEL001", "TEL002"})


@dataclass(frozen=True)
class Profile:
    """A named set of enabled rule ids.

    ``rules`` are the per-file rules; ``program_rules`` are the
    whole-program PAR rules whose findings are filtered per-file by
    this profile.
    """

    name: str
    rules: frozenset[str]
    program_rules: frozenset[str] = field(default_factory=frozenset)


def _all_rules() -> frozenset[str]:
    return frozenset(registry())


def _all_program_rules() -> frozenset[str]:
    from repro.analysis.program import program_registry

    return frozenset(program_registry())


def sim_path_profile() -> Profile:
    return Profile(
        "sim-path", _all_rules() - INTERNAL_ALLOWLIST, _all_program_rules()
    )


def experiments_profile() -> Profile:
    return Profile(
        "experiments",
        _all_rules() - EXPERIMENTS_ALLOWLIST - INTERNAL_ALLOWLIST,
        _all_program_rules(),
    )


def repro_internal_profile() -> Profile:
    """Strict minus the facade rule, for ``repro`` packages that are
    neither sim-path nor experiments (api, fleet, analysis, ...)."""
    return Profile(
        "repro-internal", _all_rules() - INTERNAL_ALLOWLIST, _all_program_rules()
    )


def perf_bench_profile() -> Profile:
    return Profile(
        "perf-bench", _all_rules() - PERF_BENCH_ALLOWLIST, _all_program_rules()
    )


def tests_profile() -> Profile:
    return Profile("tests", _all_rules() - TESTS_ALLOWLIST, _all_program_rules())


def lint_fixtures_profile() -> Profile:
    return Profile("lint-fixtures", frozenset(), frozenset())


def strict_profile() -> Profile:
    return Profile("strict", _all_rules(), _all_program_rules())


def profile_for_path(path: str | Path) -> Profile:
    """The lint profile for ``path``, from its package under ``repro``.

    ``benchmarks/perf/`` files (kernel/runner timing probes) get the
    perf-bench profile; ``benchmarks/`` files outside ``perf/`` remain
    strict -- their timing goes through pytest-benchmark, not wall-clock
    reads of their own.  ``tests/`` gets the tests profile, except the
    deliberate violation fixtures under ``tests/analysis/fixtures/``,
    which are not linted at all.
    """
    parts = Path(path).parts
    if "tests" in parts:
        rest = parts[len(parts) - 1 - parts[::-1].index("tests"):]
        if len(rest) > 2 and rest[1] == "analysis" and rest[2] == "fixtures":
            return lint_fixtures_profile()
        return tests_profile()
    if "benchmarks" in parts:
        rest = parts[len(parts) - 1 - parts[::-1].index("benchmarks"):]
        if len(rest) > 1 and rest[1] == "perf":
            return perf_bench_profile()
    if "repro" in parts:
        rest = parts[len(parts) - 1 - parts[::-1].index("repro"):]
        package = rest[1] if len(rest) > 1 else ""
        if package == "experiments":
            return experiments_profile()
        if package in SIM_PATH_PACKAGES:
            return sim_path_profile()
        return repro_internal_profile()
    return strict_profile()
