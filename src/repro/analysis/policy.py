"""Per-package lint policy.

Packages on the *simulated* path -- anything whose code runs inside (or
feeds variates into) an :class:`~repro.sim.engine.Environment` -- get the
strict determinism profile: every rule enabled.  ``repro.experiments`` is
the control plane of the reproduction itself: its harnesses legitimately
measure wall-clock time (Table VI control-plane latency, benchmark wall
seconds), so the wall-clock rule SIM001 is allowlisted there.  The same
applies to ``benchmarks/perf/``: its probes time the *kernel itself*
(events/sec, parallel speedup), so wall-clock reads are the entire point
-- see docs/performance.md.  Files outside those trees (tests, fixtures,
scripts) get the strict profile -- determinism bugs in test helpers are
still bugs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.analysis.core import registry

__all__ = [
    "EXPERIMENTS_ALLOWLIST",
    "PERF_BENCH_ALLOWLIST",
    "Profile",
    "SIM_PATH_PACKAGES",
    "profile_for_path",
]

#: Packages whose code executes on simulated time (or seeds it).
SIM_PATH_PACKAGES = frozenset(
    {
        "sim",
        "cluster",
        "net",
        "services",
        "apps",
        "workload",
        "core",
        "baselines",
        # Not named in the paper mapping but consumed from inside the
        # simulation (metrics recording, variate generation, solving):
        "telemetry",
        "stats",
        "solver",
    }
)

#: Rules disabled for the experiment harnesses (wall-clock probes are the
#: point of Table VI; runner wall-second reporting is diagnostics only).
EXPERIMENTS_ALLOWLIST = frozenset({"SIM001"})

#: Rules disabled for the performance microbenchmarks under
#: ``benchmarks/perf/`` -- they measure real execution speed of the
#: kernel and runner (BENCH_engine.json / BENCH_runner.json), so
#: wall-clock timing is their purpose, not an accident.
PERF_BENCH_ALLOWLIST = frozenset({"SIM001"})


@dataclass(frozen=True)
class Profile:
    """A named set of enabled rule ids."""

    name: str
    rules: frozenset[str]


def _all_rules() -> frozenset[str]:
    return frozenset(registry())


def sim_path_profile() -> Profile:
    return Profile("sim-path", _all_rules())


def experiments_profile() -> Profile:
    return Profile("experiments", _all_rules() - EXPERIMENTS_ALLOWLIST)


def perf_bench_profile() -> Profile:
    return Profile("perf-bench", _all_rules() - PERF_BENCH_ALLOWLIST)


def strict_profile() -> Profile:
    return Profile("strict", _all_rules())


def profile_for_path(path: str | Path) -> Profile:
    """The lint profile for ``path``, from its package under ``repro``.

    ``benchmarks/perf/`` files (kernel/runner timing probes) get the
    perf-bench profile; ``benchmarks/`` files outside ``perf/`` remain
    strict -- their timing goes through pytest-benchmark, not wall-clock
    reads of their own.
    """
    parts = Path(path).parts
    if "benchmarks" in parts:
        rest = parts[len(parts) - 1 - parts[::-1].index("benchmarks"):]
        if len(rest) > 1 and rest[1] == "perf":
            return perf_bench_profile()
    if "repro" in parts:
        rest = parts[len(parts) - 1 - parts[::-1].index("repro"):]
        package = rest[1] if len(rest) > 1 else ""
        if package == "experiments":
            return experiments_profile()
        if package in SIM_PATH_PACKAGES:
            return sim_path_profile()
    return strict_profile()
