"""Whole-program analysis: cross-process shared-state detection.

The per-file rules in :mod:`repro.analysis.rules` cannot see the one
hazard that process-pool fan-out introduces: a module-level mutable
global touched from inside a worker.  Each
:class:`~repro.experiments.parallel.RunPlan` executes in its own
process, so a mutation there never reaches the parent -- ``--jobs 1``
(mutations accumulate in one process) and ``--jobs N`` (each worker
mutates its own copy) silently diverge, breaking the byte-identical
output contract.

This module runs a two-pass project analysis:

* **Pass 1** parses every file under the given roots into a
  :class:`ModuleInfo`: its import table, module-level mutable globals,
  and per-function summaries (calls made, globals read, globals
  mutated, ``RunPlan`` construction sites).
* **Pass 2** links the summaries into a :class:`ProjectGraph` -- a
  cross-module symbol table plus a conservative call graph -- finds the
  worker entry points (callables handed to ``RunPlan``), computes the
  set of functions reachable from any worker, and emits the PAR rules:

  - **PAR001** -- a worker-reachable function *reads* a module-level
    mutable global that some function mutates.  The value observed
    depends on which process mutated it last.
  - **PAR002** -- a worker-reachable function *mutates* a module-level
    mutable global: the true cross-process hazard.  The mutation is
    confined to one pool worker, so job counts diverge.
  - **PAR003** -- a ``RunPlan`` captures something that does not cross
    a process boundary faithfully: a lambda / nested function (not
    picklable by reference), a live RNG object that bypasses
    :func:`~repro.experiments.parallel.partition_seeds`, or an instance
    of a project class whose *attributes* hold a live RNG (the RNG state
    is pickled into the worker just the same, one constructor call
    removed).

Globals that are *effectively constant* -- assigned once at module
level and never mutated or rebound inside any function -- are exempt:
fork/spawn replicates them identically, so they cannot diverge.  Real
findings are fixed or carry a regular inline suppression
(``# ursalint: disable=PAR002 -- reason``), which this pass honours
through the same :class:`~repro.analysis.core.LintContext` machinery as
the per-file rules.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.analysis.core import (
    Finding,
    LintContext,
    LintError,
    dotted_name,
    iter_python_files,
)

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "ProgramRule",
    "ProjectGraph",
    "analyze_program",
    "program_registry",
]


# ----------------------------------------------------------------------
# Program-rule registry (separate from the per-file rule registry)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ProgramRule:
    """Metadata for one whole-program rule (no visitor -- see Pass 2)."""

    id: str
    title: str
    rationale: str


_PROGRAM_RULES = (
    ProgramRule(
        "PAR001",
        "worker-reachable read of a mutated module global",
        "A function reachable from a RunPlan worker reads a module-level "
        "mutable global that some function mutates; the value observed "
        "depends on which process mutated it last, so --jobs 1 and "
        "--jobs N diverge.",
    ),
    ProgramRule(
        "PAR002",
        "worker-reachable mutation of a module global",
        "A function reachable from a RunPlan worker mutates a module-level "
        "mutable global; the mutation stays in that pool worker and never "
        "reaches the parent, so sequential and parallel runs diverge.",
    ),
    ProgramRule(
        "PAR003",
        "RunPlan captures a closure or live RNG",
        "Lambdas and nested functions cannot be pickled by reference, and "
        "a live RNG object carried in plan kwargs -- directly, or inside "
        "an instance of a class whose attributes hold one -- bypasses "
        "partition_seeds; pass module-level callables and integer seeds "
        "instead.",
    ),
)


def program_registry() -> dict[str, ProgramRule]:
    """All whole-program rules, keyed by id."""
    return {rule.id: rule for rule in _PROGRAM_RULES}


# ----------------------------------------------------------------------
# Pass 1: per-module summaries
# ----------------------------------------------------------------------
_MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "clear",
        "discard",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "reverse",
        "rotate",
        "setdefault",
        "sort",
        "update",
    }
)

_RNG_CONSTRUCTORS = frozenset({"RandomStreams", "default_rng", "Generator", "Random"})

#: Dotted identifier chains inside string annotations ("a.b.C | None").
_IDENTIFIER_CHAIN = re.compile(r"[A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*")

#: Type-annotation spellings that mark a parameter as a live RNG carrier.
#: Bare ``Generator`` is deliberately absent (it would collide with
#: ``typing.Generator``); the numpy type must be written dotted.
_RNG_ANNOTATIONS = frozenset(
    {
        "RandomStreams",
        "np.random.Generator",
        "numpy.random.Generator",
        "random.Random",
    }
)


def _annotation_spellings(node: ast.expr | None) -> set[str]:
    """Dotted/bare type names mentioned in an annotation expression.

    Handles plain names, dotted names, subscripts (``Optional[X]``), and
    string annotations (``"RandomStreams | None"``).
    """
    if node is None:
        return set()
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return set(_IDENTIFIER_CHAIN.findall(node.value))
    names: set[str] = set()
    for sub in ast.walk(node):
        dotted = dotted_name(sub) if isinstance(sub, (ast.Name, ast.Attribute)) else None
        if dotted is not None:
            names.add(dotted)
    return names


def _is_rng_value(node: ast.expr, rng_locals: set[str]) -> bool:
    """True when ``node`` evaluates to a live RNG: a constructor call
    (``RandomStreams(...)``, ``default_rng(...)``, ``streams.stream(...)``)
    or a local already known to hold one."""
    if isinstance(node, ast.Call):
        callee = node.func
        name = (
            callee.id
            if isinstance(callee, ast.Name)
            else callee.attr
            if isinstance(callee, ast.Attribute)
            else ""
        )
        return name in _RNG_CONSTRUCTORS or name == "stream"
    if isinstance(node, ast.Name):
        return node.id in rng_locals
    return False


@dataclass(frozen=True)
class GlobalVar:
    """One module-level mutable binding."""

    module: str
    name: str
    line: int

    @property
    def ref(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass(frozen=True)
class GlobalAccess:
    """One read or mutation of a module-level global from a function."""

    var: GlobalVar
    line: int
    col: int
    how: str  # "read", "rebound", "item/attribute write", ...


@dataclass(frozen=True)
class CallSite:
    """One call made from a function, recorded for Pass-2 resolution."""

    kind: str  # "name" (f(...)), "dotted" (a.b.f(...)), "attr" (obj.m(...))
    target: str


@dataclass(frozen=True)
class PlanSite:
    """One ``RunPlan(...)`` construction site."""

    line: int
    col: int
    fn_kind: str  # "name", "dotted", "lambda", "other"
    fn_target: str
    kwarg_hazards: tuple[tuple[int, int, str], ...]  # (line, col, description)
    #: kwargs values that are constructed objects: (line, col, kwarg
    #: label, constructor dotted name).  Pass 2 resolves the constructor
    #: to a project class and flags it if the class holds live-RNG
    #: attributes.
    kwarg_ctors: tuple[tuple[int, int, str, str], ...] = ()


@dataclass
class FunctionInfo:
    """Summary of one module-level function or method.

    Nested functions and lambdas are folded into their enclosing
    function: their calls and global accesses count as the parent's,
    which is conservative for reachability.
    """

    module: str
    qualname: str
    line: int
    locals: set[str] = field(default_factory=set)
    nested_defs: set[str] = field(default_factory=set)
    global_decls: set[str] = field(default_factory=set)
    calls: list[CallSite] = field(default_factory=list)
    reads: list[GlobalAccess] = field(default_factory=list)
    mutations: list[GlobalAccess] = field(default_factory=list)
    plan_sites: list[PlanSite] = field(default_factory=list)
    rng_locals: set[str] = field(default_factory=set)
    #: ``self.<attr>`` names assigned a live RNG value in this method.
    rng_self_attrs: set[str] = field(default_factory=set)
    #: local name -> constructor dotted name, for kwargs that pass a
    #: previously constructed object into a RunPlan.
    ctor_locals: dict[str, str] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.module}:{self.qualname}"


@dataclass
class ModuleInfo:
    """Summary of one parsed module."""

    name: str
    path: Path
    tree: ast.Module
    source: str
    # local alias -> dotted module name ("import a.b as ab").
    module_aliases: dict[str, str] = field(default_factory=dict)
    # local alias -> (module, symbol) for "from module import symbol".
    symbol_aliases: dict[str, tuple[str, str]] = field(default_factory=dict)
    globals: dict[str, GlobalVar] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: set[str] = field(default_factory=set)
    #: class name -> attribute names that hold a live RNG (assigned in a
    #: method from an RNG constructor or RNG-annotated parameter, or
    #: declared as a class-level RNG default/annotation).
    rng_classes: dict[str, set[str]] = field(default_factory=dict)


def _module_name(path: Path, root: Path) -> str:
    """Dotted module name for ``path`` relative to ``root``.

    ``root`` is a *source root* (e.g. ``src/``): packages below it name
    themselves.  When ``root`` is itself inside a package chain (has an
    ``__init__.py``), the chain is prefixed so intra-package imports
    resolve.
    """
    parts = list(path.relative_to(root).with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    prefix: list[str] = []
    probe = root
    while (probe / "__init__.py").is_file():
        prefix.insert(0, probe.name)
        probe = probe.parent
    return ".".join(prefix + parts)


def _is_mutable_value(node: ast.expr) -> bool:
    """True for module-level values that carry mutable state."""
    if isinstance(
        node,
        (
            ast.List,
            ast.Dict,
            ast.Set,
            ast.ListComp,
            ast.SetComp,
            ast.DictComp,
        ),
    ):
        return True
    # Any constructor call is treated as opaque mutable state; it only
    # surfaces in findings if something actually mutates it, so constant
    # objects (sentinels, frozen dataclasses) stay quiet.
    return isinstance(node, ast.Call)


def _collect_module(name: str, path: Path, source: str) -> ModuleInfo:
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise LintError(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
    info = ModuleInfo(name=name, path=path, tree=tree, source=source)
    package = name.rsplit(".", 1)[0] if "." in name else ""
    for node in tree.body:
        _collect_toplevel(info, node, package)
    return info


def _collect_toplevel(info: ModuleInfo, node: ast.stmt, package: str) -> None:
    if isinstance(node, (ast.Import, ast.ImportFrom)):
        _collect_import(info, node, package)
    elif isinstance(node, (ast.Assign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        value = node.value
        if value is not None and _is_mutable_value(value):
            for target in targets:
                if isinstance(target, ast.Name) and not target.id.startswith("__"):
                    info.globals.setdefault(
                        target.id, GlobalVar(info.name, target.id, node.lineno)
                    )
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        fn = _collect_function(info, node, node.name)
        info.functions[fn.qualname] = fn
    elif isinstance(node, ast.ClassDef):
        info.classes.add(node.name)
        rng_attrs: set[str] = set()
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = _collect_function(info, item, f"{node.name}.{item.name}")
                info.functions[fn.qualname] = fn
                rng_attrs |= fn.rng_self_attrs
            elif isinstance(item, ast.Assign):
                # Class-level default: ``rng = default_rng()``.
                if _is_rng_value(item.value, set()):
                    for target in item.targets:
                        if isinstance(target, ast.Name):
                            rng_attrs.add(target.id)
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                # Dataclass-style field: ``streams: RandomStreams``.
                if _annotation_spellings(item.annotation) & _RNG_ANNOTATIONS or (
                    item.value is not None and _is_rng_value(item.value, set())
                ):
                    rng_attrs.add(item.target.id)
        if rng_attrs:
            info.rng_classes[node.name] = rng_attrs
        _collect_class_defaults(info, node)
    elif isinstance(node, (ast.If, ast.Try)):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                _collect_toplevel(info, child, package)


def _collect_import(
    info: ModuleInfo, node: ast.Import | ast.ImportFrom, package: str
) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            if alias.asname is not None:
                info.module_aliases[alias.asname] = alias.name
            else:
                # "import a.b.c" binds "a"; dotted attribute access is
                # resolved against full module names in Pass 2.
                info.module_aliases[alias.name.split(".")[0]] = alias.name.split(
                    "."
                )[0]
        return
    base = node.module or ""
    if node.level:
        parts = info.name.split(".")
        # Relative import: strip the module itself plus level-1 parents.
        anchor = parts[: len(parts) - node.level]
        base = ".".join(anchor + ([base] if base else []))
    for alias in node.names:
        bound = alias.asname or alias.name
        info.symbol_aliases[bound] = (base, alias.name)


class _FunctionCollector(ast.NodeVisitor):
    """Single walk of a function body filling a :class:`FunctionInfo`."""

    def __init__(self, info: ModuleInfo, fn: FunctionInfo) -> None:
        self.info = info
        self.fn = fn

    # -- scope bookkeeping ------------------------------------------------
    def _add_args(self, args: ast.arguments) -> None:
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            self.fn.locals.add(arg.arg)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested_def(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested_def(node)

    def _nested_def(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.fn.locals.add(node.name)
        self.fn.nested_defs.add(node.name)
        self._add_args(node.args)
        for child in node.body:
            self.visit(child)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._add_args(node.args)
        self.visit(node.body)

    def visit_Global(self, node: ast.Global) -> None:
        self.fn.global_decls.update(node.names)

    # -- resolution helpers ----------------------------------------------
    def _resolve_base(self, node: ast.expr) -> GlobalVar | None:
        """The module global that ``node`` denotes, if any."""
        if isinstance(node, ast.Name):
            name = node.id
            if name in self.fn.locals and name not in self.fn.global_decls:
                return None
            if name in self.info.symbol_aliases:
                module, symbol = self.info.symbol_aliases[name]
                return GlobalVar(module, symbol, 0)
            var = self.info.globals.get(name)
            return var
        if isinstance(node, ast.Attribute):
            base = dotted_name(node.value)
            if base is None:
                return None
            first, _, rest = base.partition(".")
            if first in self.fn.locals:
                return None
            expanded = self.info.module_aliases.get(first)
            if expanded is not None:
                module = expanded + ("." + rest if rest else "")
                return GlobalVar(module, node.attr, 0)
            if base in self.info.symbol_aliases:
                module_name, symbol = self.info.symbol_aliases[base]
                return GlobalVar(f"{module_name}.{symbol}", node.attr, 0)
        return None

    def _record(self, kind: str, var: GlobalVar, node: ast.AST, how: str) -> None:
        access = GlobalAccess(
            var,
            int(getattr(node, "lineno", 0)),
            int(getattr(node, "col_offset", 0)),
            how,
        )
        if kind == "read":
            self.fn.reads.append(access)
        else:
            self.fn.mutations.append(access)

    # -- mutations --------------------------------------------------------
    def _mutation_target(self, target: ast.expr, node: ast.AST, how: str) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.fn.global_decls:
                var = self.info.globals.get(target.id) or GlobalVar(
                    self.info.name, target.id, 0
                )
                self._record("mutation", var, node, how)
            else:
                self.fn.locals.add(target.id)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            var = self._resolve_base(_innermost_base(target))
            if var is not None:
                self._record("mutation", var, node, how)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._mutation_target(element, node, how)
        elif isinstance(target, ast.Starred):
            self._mutation_target(target.value, node, how)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._mutation_target(target, node, "rebound" if isinstance(
                target, ast.Name) else "written via item/attribute")
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._mutation_target(node.target, node, "rebound")
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._mutation_target(node.target, node, "augmented in place")
        self.visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                self._mutation_target(target, node, "deleted item/attribute")

    def visit_For(self, node: ast.For) -> None:
        self._bind_loop_target(node.target)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._bind_loop_target(node.target)
        self.generic_visit(node)

    def _bind_loop_target(self, target: ast.expr) -> None:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                self.fn.locals.add(sub.id)

    def visit_withitem(self, node: ast.withitem) -> None:
        if node.optional_vars is not None:
            self._bind_loop_target(node.optional_vars)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._bind_loop_target(node.target)
        self.generic_visit(node)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self.fn.locals.add(node.name)
        self.generic_visit(node)

    # -- calls, reads, plan sites ----------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        callee = node.func
        if isinstance(callee, ast.Name):
            if callee.id == "RunPlan":
                self._plan_site(node)
            elif callee.id == "next" and node.args:
                var = self._resolve_base(node.args[0])
                if var is not None:
                    self._record("mutation", var, node, "advanced via next()")
            self.fn.calls.append(CallSite("name", callee.id))
        elif isinstance(callee, ast.Attribute):
            dotted = dotted_name(callee)
            if callee.attr == "RunPlan":
                self._plan_site(node)
            elif callee.attr in _MUTATOR_METHODS:
                var = self._resolve_base(callee.value)
                if var is not None:
                    self._record(
                        "mutation", var, node, f"mutated via .{callee.attr}()"
                    )
            if dotted is not None and dotted.split(".")[0] not in self.fn.locals:
                self.fn.calls.append(CallSite("dotted", dotted))
            else:
                # self.m(...) / obj.m(...): the receiver is dynamic, so
                # conservatively link to every method named m.
                self.fn.calls.append(CallSite("attr", callee.attr))
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            var = self._resolve_base(node)
            if var is not None:
                self._record("read", var, node, "read")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            var = self._resolve_base(node)
            if var is not None:
                self._record("read", var, node, "read")
                return
        self.generic_visit(node)

    def _is_rng_expr(self, node: ast.expr) -> bool:
        return _is_rng_value(node, self.fn.rng_locals)

    def _plan_site(self, node: ast.Call) -> None:
        fn_arg: ast.expr | None = None
        kwargs_arg: ast.expr | None = None
        if node.args:
            fn_arg = node.args[0]
        if len(node.args) > 1:
            kwargs_arg = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "fn":
                fn_arg = keyword.value
            elif keyword.arg == "kwargs":
                kwargs_arg = keyword.value
        fn_kind, fn_target = "other", ""
        if isinstance(fn_arg, ast.Lambda):
            fn_kind = "lambda"
        elif isinstance(fn_arg, ast.Name):
            fn_kind, fn_target = "name", fn_arg.id
        elif isinstance(fn_arg, ast.Attribute):
            dotted = dotted_name(fn_arg)
            if dotted is not None:
                fn_kind, fn_target = "dotted", dotted
        hazards: list[tuple[int, int, str]] = []
        ctors: list[tuple[int, int, str, str]] = []
        if isinstance(kwargs_arg, ast.Dict):
            for key, value in zip(kwargs_arg.keys, kwargs_arg.values):
                label = (
                    repr(key.value)
                    if isinstance(key, ast.Constant)
                    else "**"
                )
                if isinstance(value, ast.Lambda) or (
                    isinstance(value, ast.Name)
                    and value.id in self.fn.nested_defs
                ):
                    hazards.append(
                        (
                            value.lineno,
                            value.col_offset,
                            f"kwargs[{label}] is a closure; closures cannot "
                            "be pickled into a worker",
                        )
                    )
                elif self._is_rng_expr(value):
                    hazards.append(
                        (
                            value.lineno,
                            value.col_offset,
                            f"kwargs[{label}] carries a live RNG object; "
                            "pass an integer seed from partition_seeds and "
                            "re-derive streams in the worker",
                        )
                    )
                else:
                    # A constructed object (or a local holding one): Pass
                    # 2 checks whether its class carries RNG attributes.
                    ctor: str | None = None
                    if isinstance(value, ast.Call):
                        ctor = dotted_name(value.func)
                    elif isinstance(value, ast.Name):
                        ctor = self.fn.ctor_locals.get(value.id)
                    if ctor is not None:
                        ctors.append(
                            (value.lineno, value.col_offset, label, ctor)
                        )
        self.fn.plan_sites.append(
            PlanSite(
                node.lineno,
                node.col_offset,
                fn_kind,
                fn_target,
                tuple(hazards),
                tuple(ctors),
            )
        )


def _collect_class_defaults(info: ModuleInfo, node: ast.ClassDef) -> None:
    """Scan class-level attribute defaults into a synthetic ``__init__``.

    Dataclass ``field(default_factory=lambda: ...)`` expressions execute
    at *instance construction* time, so their calls, reads and mutations
    belong to ``ClassName.__init__`` for reachability purposes (the
    ``_request_ids`` counter consumed by ``Request``'s default factory is
    exactly this shape).  When the class defines an explicit ``__init__``
    the defaults are folded into a separate synthetic summary so neither
    shadows the other.
    """
    qualname = f"{node.name}.__init__"
    if qualname in info.functions:
        qualname = f"{node.name}.__class_defaults__"
    synthetic = FunctionInfo(module=info.name, qualname=qualname, line=node.lineno)
    collector = _FunctionCollector(info, synthetic)
    for item in node.body:
        value: ast.expr | None = None
        if isinstance(item, ast.Assign):
            value = item.value
        elif isinstance(item, ast.AnnAssign):
            value = item.value
        if value is not None:
            collector.visit(value)
    if synthetic.calls or synthetic.reads or synthetic.mutations:
        info.functions.setdefault(qualname, synthetic)


def _bound_names(target: ast.expr) -> Iterable[str]:
    """Names a bare assignment target *binds* (not mutation targets)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _bound_names(element)
    elif isinstance(target, ast.Starred):
        yield from _bound_names(target.value)


def _innermost_base(node: ast.expr) -> ast.expr:
    """Peel Subscript/Attribute wrappers: base of ``a.b[0].c`` is ``a``."""
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node


def _collect_function(
    info: ModuleInfo,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
) -> FunctionInfo:
    fn = FunctionInfo(module=info.name, qualname=qualname, line=node.lineno)
    collector = _FunctionCollector(info, fn)
    collector._add_args(node.args)
    if qualname != node.name:
        fn.locals.add("self")
        fn.locals.add("cls")
    # Pre-scan assignments so locals shadow globals regardless of
    # statement order (Python scoping is function-wide, not lexical).
    # Only *binding* names count: "CACHE[k] = v" binds nothing, it
    # mutates CACHE.
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                fn.locals.update(_bound_names(target))
        elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
            fn.locals.add(sub.target.id)
        elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) and sub is not node:
            fn.locals.add(sub.name)
            fn.nested_defs.add(sub.name)
    # Parameters annotated as RNG carriers count as RNG locals, so
    # ``self.streams = streams`` marks the attribute (and passing the
    # parameter straight into plan kwargs is flagged like a fresh RNG).
    for arg in (
        list(node.args.posonlyargs)
        + list(node.args.args)
        + list(node.args.kwonlyargs)
    ):
        if _annotation_spellings(arg.annotation) & _RNG_ANNOTATIONS:
            fn.rng_locals.add(arg.arg)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
            callee = sub.value.func
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr
                if isinstance(callee, ast.Attribute)
                else ""
            )
            if name in _RNG_CONSTRUCTORS or name == "stream":
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        fn.rng_locals.add(target.id)
            ctor = dotted_name(callee)
            if ctor is not None:
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        fn.ctor_locals[target.id] = ctor
    # Second pass, once rng_locals is complete: ``self.<attr> = <rng>``
    # marks the enclosing class as an RNG carrier.
    for sub in ast.walk(node):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(sub, ast.Assign):
            targets, value = list(sub.targets), sub.value
        elif isinstance(sub, ast.AnnAssign):
            targets, value = [sub.target], sub.value
        if value is None or not _is_rng_value(value, fn.rng_locals):
            continue
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                fn.rng_self_attrs.add(target.attr)
    # global-declared names are not locals even though they are assigned.
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            fn.global_decls.update(sub.names)
    fn.locals -= fn.global_decls
    for child in node.body:
        collector.visit(child)
    return fn


# ----------------------------------------------------------------------
# Pass 2: linking and the PAR rules
# ----------------------------------------------------------------------
class ProjectGraph:
    """Cross-module symbol table plus a conservative call graph."""

    def __init__(self, modules: Mapping[str, ModuleInfo]) -> None:
        self.modules = dict(modules)
        self.functions: dict[str, FunctionInfo] = {}
        self.methods_by_name: dict[str, list[str]] = {}
        for module in self.modules.values():
            for fn in module.functions.values():
                self.functions[fn.key] = fn
                # Only methods go into the by-name index: an attr call on an
                # unresolved receiver (``x.register()``) can only dispatch to
                # a method, never to a module-level function.
                if "." in fn.qualname:
                    short = fn.qualname.split(".")[-1]
                    self.methods_by_name.setdefault(short, []).append(fn.key)

    # -- symbol resolution ------------------------------------------------
    def resolve_module(self, info: ModuleInfo, dotted: str) -> str | None:
        """Resolve a dotted expression prefix to a module in the tree."""
        first, _, rest = dotted.partition(".")
        expanded = info.module_aliases.get(first)
        if expanded is not None:
            dotted = expanded + ("." + rest if rest else "")
        elif first in info.symbol_aliases:
            module, symbol = info.symbol_aliases[first]
            dotted = f"{module}.{symbol}" + ("." + rest if rest else "")
        probe = dotted
        while probe:
            if probe in self.modules:
                return probe
            probe = probe.rpartition(".")[0]
        return None

    def resolve_callable(self, info: ModuleInfo, site: CallSite) -> list[str]:
        """Function keys a call site may reach (possibly empty)."""
        if site.kind == "attr":
            return self.methods_by_name.get(site.target, [])
        dotted = site.target
        if site.kind == "name":
            alias = info.symbol_aliases.get(dotted)
            if alias is not None:
                dotted = f"{alias[0]}.{alias[1]}"
            elif dotted in info.functions:
                return [info.functions[dotted].key]
            elif dotted in info.classes:
                return self._class_entry_keys(info.name, dotted)
            elif dotted in info.module_aliases:
                return []
        module_name = self.resolve_module(info, dotted)
        if module_name is None:
            return []
        module = self.modules[module_name]
        remainder = dotted
        first, _, rest = remainder.partition(".")
        expanded = info.module_aliases.get(first)
        if expanded is not None:
            remainder = expanded + ("." + rest if rest else "")
        elif first in info.symbol_aliases:
            symbol_module, symbol = info.symbol_aliases[first]
            remainder = f"{symbol_module}.{symbol}" + ("." + rest if rest else "")
        suffix = remainder[len(module_name):].lstrip(".")
        if not suffix:
            return []
        if suffix in module.functions:
            return [module.functions[suffix].key]
        if suffix in module.classes:
            return self._class_entry_keys(module_name, suffix)
        short = suffix.split(".")[-1]
        candidates = [
            key
            for key in self.methods_by_name.get(short, [])
            if key.startswith(f"{module_name}:")
        ]
        return candidates

    def resolve_class(self, info: ModuleInfo, dotted: str) -> tuple[str, str] | None:
        """Resolve a constructor expression to ``(module, class)``.

        Mirrors :meth:`resolve_callable`'s alias handling but targets
        classes: bare names resolve through the local class table and
        ``from x import Y`` aliases; dotted names through the module
        table.  Returns ``None`` for anything outside the project tree.
        """
        first, _, rest = dotted.partition(".")
        if not rest:
            if dotted in info.classes:
                return (info.name, dotted)
            alias = info.symbol_aliases.get(dotted)
            if alias is not None:
                module_name, symbol = alias
                module = self.modules.get(module_name)
                if module is not None and symbol in module.classes:
                    return (module_name, symbol)
            return None
        module_name = self.resolve_module(info, dotted)
        if module_name is None:
            return None
        module = self.modules[module_name]
        remainder = dotted
        expanded = info.module_aliases.get(first)
        if expanded is not None:
            remainder = expanded + ("." + rest if rest else "")
        elif first in info.symbol_aliases:
            symbol_module, symbol = info.symbol_aliases[first]
            remainder = f"{symbol_module}.{symbol}" + ("." + rest if rest else "")
        suffix = remainder[len(module_name):].lstrip(".")
        if suffix in module.classes:
            return (module_name, suffix)
        return None

    def _class_entry_keys(self, module_name: str, class_name: str) -> list[str]:
        module = self.modules.get(module_name)
        if module is None:
            return []
        keys = []
        for method in ("__init__", "__post_init__", "__class_defaults__"):
            qualname = f"{class_name}.{method}"
            if qualname in module.functions:
                keys.append(module.functions[qualname].key)
        return keys

    # -- worker entry points and reachability ----------------------------
    def worker_entries(self) -> dict[str, str]:
        """Function key -> "module.qualname" label of its RunPlan site."""
        entries: dict[str, str] = {}
        for module in self.modules.values():
            for fn in module.functions.values():
                for site in fn.plan_sites:
                    if site.fn_kind not in ("name", "dotted"):
                        continue
                    call = CallSite(
                        "name" if site.fn_kind == "name" else "dotted",
                        site.fn_target,
                    )
                    for key in self.resolve_callable(module, call):
                        entries.setdefault(key, _label(key))
        return entries

    def reachable_from_workers(self) -> dict[str, str]:
        """Function key -> entry label, for every worker-reachable function."""
        entries = self.worker_entries()
        reached = dict(entries)
        queue = list(entries)
        while queue:
            key = queue.pop()
            fn = self.functions.get(key)
            if fn is None:
                continue
            module = self.modules[fn.module]
            for site in fn.calls:
                for target in self.resolve_callable(module, site):
                    if target not in reached:
                        reached[target] = reached[key]
                        queue.append(target)
        return reached


def _label(key: str) -> str:
    return key.replace(":", ".")


def _mutated_global_refs(graph: ProjectGraph) -> set[str]:
    """Refs (module.name) of globals some function mutates or rebinds."""
    return {
        access.var.ref
        for fn in graph.functions.values()
        for access in fn.mutations
    }


def _build_graph(roots: Sequence[str | Path]) -> tuple[ProjectGraph, int]:
    modules: dict[str, ModuleInfo] = {}
    count = 0
    for root in roots:
        root = Path(root)
        if not root.is_dir():
            continue
        for path in iter_python_files([root]):
            name = _module_name(path, root)
            if not name or name in modules:
                continue
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as exc:
                raise LintError(f"{path}: cannot read: {exc}")
            modules[name] = _collect_module(name, path, source)
            count += 1
    return ProjectGraph(modules), count


def analyze_program(
    roots: Sequence[str | Path],
    rule_ids: Iterable[str] | None = None,
) -> list[Finding]:
    """Run the whole-program PAR rules over the directories in ``roots``.

    All roots are linked into one project graph, so ``RunPlan`` sites in
    one tree (e.g. ``tests/``) resolve entry points defined in another
    (``src/``).  ``rule_ids=None`` applies the per-file policy
    (:func:`~repro.analysis.policy.profile_for_path`); otherwise only
    the listed PAR rules run.  Findings honour the same inline
    ``# ursalint: disable=...`` suppressions as the per-file rules.
    """
    graph, _ = _build_graph(roots)
    selected = None if rule_ids is None else frozenset(rule_ids)
    contexts: dict[str, LintContext] = {}
    profiles: dict[str, frozenset[str]] = {}

    def ctx_for(module: ModuleInfo) -> LintContext:
        key = str(module.path)
        if key not in contexts:
            contexts[key] = LintContext(key, module.source, module.tree)
            if selected is None:
                from repro.analysis.policy import profile_for_path

                profiles[key] = profile_for_path(key).program_rules
            else:
                profiles[key] = frozenset(selected)
        return contexts[key]

    def emit(
        module: ModuleInfo, rule_id: str, line: int, col: int, message: str
    ) -> None:
        ctx = ctx_for(module)
        if rule_id in profiles[str(module.path)]:
            ctx.add_at(rule_id, line, col, message)

    mutated_refs = _mutated_global_refs(graph)
    reached = graph.reachable_from_workers()

    for key, entry in sorted(reached.items()):
        fn = graph.functions.get(key)
        if fn is None:
            continue
        module = graph.modules[fn.module]
        mutation_lines = {(m.var.ref, m.line) for m in fn.mutations}
        for access in fn.mutations:
            if access.var.module not in graph.modules:
                continue  # state owned by an external module; out of scope
            emit(
                module,
                "PAR002",
                access.line,
                access.col,
                f"module global '{access.var.ref}' is {access.how} on a "
                f"worker-reachable path (entry: {entry}); the mutation is "
                "confined to one pool worker, so --jobs 1 and --jobs N "
                "diverge",
            )
        for access in fn.reads:
            if access.var.module not in graph.modules:
                continue
            if access.var.ref not in mutated_refs:
                continue
            if (access.var.ref, access.line) in mutation_lines:
                continue  # the PAR002 finding already covers this line
            emit(
                module,
                "PAR001",
                access.line,
                access.col,
                f"read of mutable module global '{access.var.ref}' on a "
                f"worker-reachable path (entry: {entry}); its value depends "
                "on which process mutated it last",
            )

    for module in graph.modules.values():
        for fn in module.functions.values():
            for site in fn.plan_sites:
                if site.fn_kind == "lambda":
                    emit(
                        module,
                        "PAR003",
                        site.line,
                        site.col,
                        "RunPlan callable is a lambda; lambdas cannot be "
                        "pickled into a worker -- use a module-level "
                        "function",
                    )
                elif (
                    site.fn_kind == "name"
                    and site.fn_target in fn.nested_defs
                ):
                    emit(
                        module,
                        "PAR003",
                        site.line,
                        site.col,
                        f"RunPlan callable '{site.fn_target}' is a nested "
                        "function; closures cannot be pickled into a worker "
                        "-- move it to module level",
                    )
                for line, col, message in site.kwarg_hazards:
                    emit(module, "PAR003", line, col, f"RunPlan {message}")
                for line, col, label, ctor in site.kwarg_ctors:
                    resolved = graph.resolve_class(module, ctor)
                    if resolved is None:
                        continue
                    ctor_module, class_name = resolved
                    attrs = graph.modules[ctor_module].rng_classes.get(class_name)
                    if not attrs:
                        continue
                    listed = ", ".join(sorted(attrs))
                    emit(
                        module,
                        "PAR003",
                        line,
                        col,
                        f"RunPlan kwargs[{label}] is a {class_name} instance "
                        f"and class {ctor_module}.{class_name} holds live-RNG "
                        f"attribute(s) ({listed}); the RNG state is pickled "
                        "into the worker, bypassing partition_seeds -- pass "
                        "integer seeds and construct inside the worker",
                    )

    findings: list[Finding] = []
    for ctx in contexts.values():
        findings.extend(ctx.findings)
    return sorted(findings)
