"""Bundled ursalint rules.

Importing this package registers every rule with the core registry; add
new rule modules to the imports below.
"""

from repro.analysis.rules import api, determinism, processes, telemetry  # noqa: F401

__all__ = ["api", "determinism", "processes", "telemetry"]
