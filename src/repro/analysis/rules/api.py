"""API hygiene rules."""

from __future__ import annotations

import ast

from repro.analysis.core import Rule, dotted_name, register

__all__ = ["MutableDefaultRule"]

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in _MUTABLE_FACTORIES
    return False


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


@register
class MutableDefaultRule(Rule):
    """Flag mutable default arguments and dataclass field defaults.

    A mutable default is evaluated once at definition time and shared by
    every call (and, for class attributes, every instance): state leaks
    between calls in ways that depend on call order, which is exactly the
    kind of hidden coupling the determinism suite exists to prevent.
    """

    id = "API001"
    title = "mutable default argument"
    rationale = (
        "Default values are evaluated once and shared across calls; "
        "mutating one couples callers through hidden state. Use None (or "
        "dataclasses.field(default_factory=...)) instead."
    )

    def _visit_function(self, node) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None and _is_mutable_literal(default):
                self.report(
                    default,
                    f"mutable default in {node.name}(); defaults are shared "
                    "across calls -- use None and create inside the body",
                )
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if _is_dataclass_decorated(node):
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and stmt.value is not None
                    and _is_mutable_literal(stmt.value)
                ):
                    self.report(
                        stmt.value,
                        f"mutable default for dataclass field in {node.name}; "
                        "use dataclasses.field(default_factory=...)",
                    )
        self.generic_visit(node)
