"""API hygiene rules."""

from __future__ import annotations

import ast

from repro.analysis.core import Rule, dotted_name, register

__all__ = ["FacadeImportRule", "MutableDefaultRule"]

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in _MUTABLE_FACTORIES
    return False


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name is not None and name.split(".")[-1] == "dataclass":
            return True
    return False


@register
class MutableDefaultRule(Rule):
    """Flag mutable default arguments and dataclass field defaults.

    A mutable default is evaluated once at definition time and shared by
    every call (and, for class attributes, every instance): state leaks
    between calls in ways that depend on call order, which is exactly the
    kind of hidden coupling the determinism suite exists to prevent.
    """

    id = "API001"
    title = "mutable default argument"
    rationale = (
        "Default values are evaluated once and shared across calls; "
        "mutating one couples callers through hidden state. Use None (or "
        "dataclasses.field(default_factory=...)) instead."
    )

    def _visit_function(self, node) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is not None and _is_mutable_literal(default):
                self.report(
                    default,
                    f"mutable default in {node.name}(); defaults are shared "
                    "across calls -- use None and create inside the body",
                )
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if _is_dataclass_decorated(node):
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and stmt.value is not None
                    and _is_mutable_literal(stmt.value)
                ):
                    self.report(
                        stmt.value,
                        f"mutable default for dataclass field in {node.name}; "
                        "use dataclasses.field(default_factory=...)",
                    )
        self.generic_visit(node)


#: Run entry points that must be imported via the ``repro.api`` facade.
#: Kept in sync with ``repro.api.__all__`` by a test (the lint layer
#: deliberately does not import the experiment stack to find out).
FACADE_ENTRYPOINTS = frozenset(
    {
        "run_all_chains",
        "run_backpressure_ablation",
        "run_cell",
        "run_deployment",
        "run_diurnal_trace",
        "run_fleet",
        "run_grid_ablation",
        "run_model_accuracy",
        "run_performance_grid",
        "run_service_change",
        "run_table05",
        "run_table06",
        "run_threshold_profiling",
        "run_ttest_ablation",
        "simulate",
        "simulate_fleet",
        "simulate_grid",
    }
)

_FACADE_MODULES = ("repro", "repro.api")


@register
class FacadeImportRule(Rule):
    """Flag run entry points imported from implementation modules.

    ``repro.api`` is the stability boundary of the package: everything
    outside (tests, benchmarks, examples, notebooks) should reach the
    ``run_*``/``simulate*`` entry points through it, so implementation
    modules can move and change signatures freely.  Internal ``repro``
    packages are exempt via the lint policy (the facade itself has to
    import the implementations).
    """

    id = "API002"
    title = "run entrypoint imported outside repro.api"
    rationale = (
        "repro.api is the supported import surface for run entry points; "
        "importing them from implementation modules couples callers to "
        "module layout and signatures that are free to change."
    )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if (
            node.level == 0
            and module.startswith("repro")
            and module not in _FACADE_MODULES
        ):
            for alias in node.names:
                if alias.name in FACADE_ENTRYPOINTS:
                    self.report(
                        node,
                        f"import {alias.name} from repro.api, not "
                        f"{module} (the supported API surface)",
                    )
        self.generic_visit(node)
