"""Determinism rules: wall-clock, global RNG, set iteration, float ==.

Each rule is a small AST visitor.  They are deliberately syntactic -- no
type inference -- so they run in milliseconds over the whole tree and
never import the code under analysis.  Where syntax cannot prove intent
(e.g. a method that *returns* a set), the rule stays silent; the
documented suppression syntax covers the remaining judgement calls.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Rule, dotted_name, register

__all__ = ["WallClockRule", "GlobalRngRule", "SetIterationRule", "EnvNowEqualityRule"]


# ----------------------------------------------------------------------
# SIM001 -- wall-clock reads on simulated paths
# ----------------------------------------------------------------------
_TIME_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "thread_time",
        "thread_time_ns",
        "clock_gettime",
    }
)
_DATETIME_METHODS = frozenset({"now", "utcnow", "today"})


@register
class WallClockRule(Rule):
    """Flag wall-clock reads; simulated code must use ``env.now``."""

    id = "SIM001"
    title = "wall-clock read on a simulated path"
    rationale = (
        "Simulated components must take time from Environment.now; reading "
        "the host clock makes behaviour depend on machine speed and breaks "
        "same-seed reproducibility."
    )

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._time_aliases = {"time"}
        self._datetime_module_aliases = {"datetime"}
        self._datetime_class_aliases: set[str] = set()

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "time":
                self._time_aliases.add(alias.asname or alias.name)
            elif alias.name == "datetime":
                self._datetime_module_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_FUNCTIONS:
                    self.report(
                        node,
                        f"import of wall-clock function time.{alias.name}; "
                        "use the simulation clock (env.now) instead",
                    )
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in {"datetime", "date"}:
                    self._datetime_class_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            parts = name.split(".")
            if (
                len(parts) == 2
                and parts[0] in self._time_aliases
                and parts[1] in _TIME_FUNCTIONS
            ):
                self.report(
                    node,
                    f"wall-clock call {name}(); simulated code must use the "
                    "simulation clock (env.now)",
                )
            elif (
                len(parts) >= 2
                and parts[-1] in _DATETIME_METHODS
                and (
                    parts[0] in self._datetime_module_aliases
                    or parts[-2] in self._datetime_class_aliases
                    or parts[-2] in {"datetime", "date"}
                    and parts[0] in self._datetime_module_aliases
                )
            ):
                self.report(
                    node,
                    f"wall-clock call {name}(); simulated code must use the "
                    "simulation clock (env.now)",
                )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# SIM002 -- global RNG instead of named RandomStreams
# ----------------------------------------------------------------------
_NUMPY_RNG_EXEMPT = frozenset(
    {"SeedSequence", "Generator", "BitGenerator", "PCG64", "PCG64DXSM", "Philox"}
)


@register
class GlobalRngRule(Rule):
    """Flag the global ``random`` / ``np.random`` state."""

    id = "SIM002"
    title = "global RNG used instead of RandomStreams"
    rationale = (
        "Global RNG state is shared across components: adding one draw "
        "anywhere perturbs every variate downstream, and seeding is "
        "process-global. Draw from a named RandomStreams stream instead."
    )

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._random_aliases = {"random"}
        self._numpy_aliases = {"np", "numpy"}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self._random_aliases.add(alias.asname or alias.name)
            elif alias.name == "numpy":
                self._numpy_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self.report(
                node,
                "import from the global random module; draw from a named "
                "RandomStreams stream instead",
            )
        elif node.module == "numpy.random" and any(
            alias.name not in _NUMPY_RNG_EXEMPT and alias.name != "default_rng"
            for alias in node.names
        ):
            self.report(
                node,
                "import from numpy's global random state; draw from a named "
                "RandomStreams stream instead",
            )
        elif node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    # `from numpy import random` puts the global-state module
                    # behind a (possibly renamed) local name; track it.
                    self._random_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None:
            parts = name.split(".")
            if len(parts) == 2 and parts[0] in self._random_aliases:
                self.report(
                    node,
                    f"global RNG call {name}(); draw from a named "
                    "RandomStreams stream instead",
                )
            elif (
                len(parts) == 3
                and parts[0] in self._numpy_aliases
                and parts[1] == "random"
                and parts[2] not in _NUMPY_RNG_EXEMPT
                and not (parts[2] == "default_rng" and node.args)
            ):
                self.report(
                    node,
                    f"global numpy RNG call {name}(); draw from a named "
                    "RandomStreams stream (or an explicitly seeded "
                    "default_rng) instead",
                )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# SIM003 -- iteration over unordered sets
# ----------------------------------------------------------------------
_SET_BUILTINS = frozenset({"set", "frozenset"})
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)


@register
class SetIterationRule(Rule):
    """Flag iteration over ``set`` / ``frozenset`` values.

    Set iteration order depends on insertion history and on the
    per-process string-hash salt (``PYTHONHASHSEED``), so two runs of the
    same seed can visit elements -- and therefore schedule events or draw
    variates -- in different orders.  Iterate ``sorted(...)`` instead.
    """

    id = "SIM003"
    title = "iteration over an unordered set"
    rationale = (
        "Set iteration order varies across processes (hash salting) and "
        "insertion histories; any draw or event scheduled per-element "
        "becomes run-dependent. Iterate sorted(...) or use a dict/list."
    )

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._scopes: list[dict[str, bool]] = [{}]
        self._set_returning: frozenset[str] = frozenset()

    def run(self, tree: ast.Module) -> None:
        # Pre-pass: module-local functions/methods annotated to return a
        # set type.  Iterating their call result is just as unordered as
        # iterating a set literal, but used to escape the rule because
        # the call site carries no annotation of its own.
        self._set_returning = frozenset(
            node.name
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.returns is not None
            and self._is_set_annotation(node.returns)
        )
        self.visit(tree)

    # -- set-typed expression detection --------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SET_BUILTINS:
                return True
            if isinstance(func, ast.Name) and func.id in self._set_returning:
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in self._set_returning
            ):
                return True
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_METHODS
                and self._is_set_expr(func.value)
            ):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            for scope in reversed(self._scopes):
                if node.id in scope:
                    return scope[node.id]
            return False
        return False

    @staticmethod
    def _is_set_annotation(node: ast.AST) -> bool:
        if isinstance(node, ast.Subscript):
            node = node.value
        name = dotted_name(node)
        return name in {"set", "frozenset", "Set", "FrozenSet", "typing.Set",
                        "typing.FrozenSet", "AbstractSet", "typing.AbstractSet"}

    # -- scope tracking -------------------------------------------------
    def _visit_scope(self, node: ast.AST) -> None:
        self._scopes.append({})
        self.generic_visit(node)
        self._scopes.pop()

    visit_FunctionDef = _visit_scope
    visit_AsyncFunctionDef = _visit_scope
    visit_ClassDef = _visit_scope

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._scopes[-1][target.id] = is_set
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            self._scopes[-1][node.target.id] = self._is_set_annotation(
                node.annotation
            ) or (node.value is not None and self._is_set_expr(node.value))
        self.generic_visit(node)

    # -- iteration sites ------------------------------------------------
    def _check_iter(self, iter_node: ast.AST) -> None:
        if self._is_set_expr(iter_node):
            self.report(
                iter_node,
                "iteration over a set is unordered and run-dependent; "
                "iterate sorted(...) or a deterministic sequence instead",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for comp in node.generators:  # type: ignore[attr-defined]
            self._check_iter(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id in {"list", "tuple", "enumerate"}
            and node.args
        ):
            self._check_iter(node.args[0])
        self.generic_visit(node)


# ----------------------------------------------------------------------
# SIM006 -- exact equality against the float simulation clock
# ----------------------------------------------------------------------
@register
class EnvNowEqualityRule(Rule):
    """Flag ``==`` / ``!=`` against ``env.now``."""

    id = "SIM006"
    title = "exact equality comparison against env.now"
    rationale = (
        "env.now is a float accumulated from event timestamps; exact "
        "equality silently stops matching when a delay decomposes "
        "differently. Compare with >= / <= or an explicit tolerance."
    )

    @staticmethod
    def _is_env_now(node: ast.AST) -> bool:
        if not (isinstance(node, ast.Attribute) and node.attr == "now"):
            return False
        base = dotted_name(node.value)
        return base is not None and base.split(".")[-1] in {"env", "_env"}

    def visit_Compare(self, node: ast.Compare) -> None:
        sides = [node.left, *node.comparators]
        for op, (lhs, rhs) in zip(node.ops, zip(sides, sides[1:])):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                self._is_env_now(lhs) or self._is_env_now(rhs)
            ):
                self.report(
                    node,
                    "exact ==/!= against env.now; floats on the simulation "
                    "clock need >=/<= or an explicit tolerance",
                )
        self.generic_visit(node)
