"""Process-body rules: Interrupt safety and resource leak detection.

Simulation processes are plain generator functions, so both rules key on
"does this function's own body yield" (:func:`is_generator_function`) --
helpers that never run on simulated time are exempt.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    Rule,
    dotted_name,
    function_scope_walk,
    is_generator_function,
    register,
)

__all__ = ["BroadExceptRule", "AcquireReleaseRule"]


_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _exception_names(type_node: ast.AST | None) -> list[str]:
    if type_node is None:
        return []
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    out = []
    for node in nodes:
        name = dotted_name(node)
        if name is not None:
            out.append(name.split(".")[-1])
    return out


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body contains a bare ``raise``."""
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for stmt in handler.body
        for node in function_scope_walk(stmt)
    ) or any(
        isinstance(stmt, ast.Raise) and stmt.exc is None for stmt in handler.body
    )


@register
class BroadExceptRule(Rule):
    """Flag broad ``except`` clauses inside generator processes.

    :class:`repro.sim.engine.Interrupt` subclasses ``Exception``, so a
    ``try: ... except Exception: pass`` inside a process silently eats the
    interrupt another process threw -- the interrupted process keeps
    running and the interruptor's assumption is violated.  Catch specific
    exceptions, or re-raise with a bare ``raise``.
    """

    id = "SIM004"
    title = "broad except in a simulation process"
    rationale = (
        "Interrupt subclasses Exception; a bare/broad except inside a "
        "generator process swallows interrupts thrown by other processes. "
        "Catch specific exceptions or re-raise."
    )

    def _visit_function(self, node) -> None:
        if is_generator_function(node):
            for child in function_scope_walk(node):
                if not isinstance(child, ast.ExceptHandler):
                    continue
                names = _exception_names(child.type)
                broad = child.type is None or any(
                    name in _BROAD_NAMES for name in names
                )
                if broad and not _reraises(child):
                    what = (
                        "bare except"
                        if child.type is None
                        else f"except {' | '.join(names)}"
                    )
                    self.report(
                        child,
                        f"{what} in a generator process would swallow "
                        "sim.engine.Interrupt; catch specific exceptions or "
                        "re-raise",
                    )
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


@register
class AcquireReleaseRule(Rule):
    """Flag ``x.acquire()`` in a process with no ``x.release()`` in a finally.

    If the process fails (or is interrupted) between acquire and release,
    the slot leaks for the rest of the run: capacity shrinks and every
    later sample of queue depth and latency is silently skewed.  The safe
    shape is::

        yield resource.acquire()
        try:
            ...
        finally:
            resource.release()

    Protocols that intentionally hand a held slot to another process
    declare it with a *checked* ownership annotation::

        # ursalint: transfers=resource -- released by the consumer
        yield resource.acquire()

    The annotation is verified, not trusted: the declared receiver must
    match the acquire on the annotated line, and the module must contain
    a matching ``release()`` somewhere (the other end of the handoff).
    Annotations that match no acquire are themselves reported.
    """

    id = "SIM005"
    title = "acquire() without release() in a finally"
    rationale = (
        "A process failing between acquire and release leaks the slot for "
        "the rest of the run, skewing capacity, queue depths and latency. "
        "Release in a finally, or declare the ownership handoff with a "
        "checked '# ursalint: transfers=<receiver>' annotation."
    )

    _module_releases: frozenset[str] = frozenset()

    def run(self, tree: ast.Module) -> None:
        self._module_releases = _release_receivers(tree)
        self.visit(tree)
        for line in sorted(set(self.ctx.transfers) - self.ctx.transfers_used):
            annotation = self.ctx.transfers[line]
            declared = ", ".join(annotation.receivers)
            self.ctx.add_at(
                self.id,
                line,
                0,
                f"'transfers={declared}' annotation matches no acquire() on "
                "this line; fix the declared receiver or remove the "
                "annotation",
            )

    def _check_transfer(self, receiver: str, call: ast.Call) -> bool:
        """Validate the annotation covering ``call``; True when handled."""
        annotation = self.ctx.transfers.get(call.lineno)
        if annotation is None:
            return False
        self.ctx.transfers_used.add(annotation.line)
        if receiver not in annotation.receivers:
            declared = ", ".join(annotation.receivers)
            self.report(
                call,
                f"ownership annotation declares 'transfers={declared}' but "
                f"this line acquires {receiver}; the annotation must name "
                "the acquired resource",
            )
            return True
        if not any(
            released == receiver or released.split(".")[-1] == receiver.split(".")[-1]
            for released in self._module_releases
        ):
            self.report(
                call,
                f"declared transfer of {receiver} but no matching "
                f"release() exists anywhere in this module; the handed-off "
                "slot has no owner to release it",
            )
        return True

    def _visit_function(self, node) -> None:
        if is_generator_function(node):
            acquires: list[tuple[str, ast.Call]] = []
            released_in_finally: set[str] = set()
            for child in function_scope_walk(node):
                if isinstance(child, ast.Call) and isinstance(
                    child.func, ast.Attribute
                ):
                    if child.func.attr == "acquire":
                        receiver = dotted_name(child.func.value) or ast.unparse(
                            child.func.value
                        )
                        acquires.append((receiver, child))
                elif isinstance(child, ast.Try):
                    for stmt in child.finalbody:
                        for sub in ast.walk(stmt):
                            if (
                                isinstance(sub, ast.Call)
                                and isinstance(sub.func, ast.Attribute)
                                and sub.func.attr == "release"
                            ):
                                receiver = dotted_name(
                                    sub.func.value
                                ) or ast.unparse(sub.func.value)
                                released_in_finally.add(receiver)
            for receiver, call in acquires:
                if receiver in released_in_finally:
                    continue
                if self._check_transfer(receiver, call):
                    continue
                self.report(
                    call,
                    f"{receiver}.acquire() has no {receiver}.release() "
                    "in a finally block of this process; a failure or "
                    "interrupt between them leaks the slot",
                )
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


def _release_receivers(tree: ast.Module) -> frozenset[str]:
    """Dotted receivers of every ``<receiver>.release()`` call in a module."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "release"
        ):
            receiver = dotted_name(node.func.value) or ast.unparse(node.func.value)
            out.add(receiver)
    return frozenset(out)
