"""Process-body rules: Interrupt safety and resource leak detection.

Simulation processes are plain generator functions, so both rules key on
"does this function's own body yield" (:func:`is_generator_function`) --
helpers that never run on simulated time are exempt.
"""

from __future__ import annotations

import ast

from repro.analysis.core import (
    Rule,
    dotted_name,
    function_scope_walk,
    is_generator_function,
    register,
)

__all__ = ["BroadExceptRule", "AcquireReleaseRule"]


_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _exception_names(type_node: ast.AST | None) -> list[str]:
    if type_node is None:
        return []
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    out = []
    for node in nodes:
        name = dotted_name(node)
        if name is not None:
            out.append(name.split(".")[-1])
    return out


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body contains a bare ``raise``."""
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for stmt in handler.body
        for node in function_scope_walk(stmt)
    ) or any(
        isinstance(stmt, ast.Raise) and stmt.exc is None for stmt in handler.body
    )


@register
class BroadExceptRule(Rule):
    """Flag broad ``except`` clauses inside generator processes.

    :class:`repro.sim.engine.Interrupt` subclasses ``Exception``, so a
    ``try: ... except Exception: pass`` inside a process silently eats the
    interrupt another process threw -- the interrupted process keeps
    running and the interruptor's assumption is violated.  Catch specific
    exceptions, or re-raise with a bare ``raise``.
    """

    id = "SIM004"
    title = "broad except in a simulation process"
    rationale = (
        "Interrupt subclasses Exception; a bare/broad except inside a "
        "generator process swallows interrupts thrown by other processes. "
        "Catch specific exceptions or re-raise."
    )

    def _visit_function(self, node) -> None:
        if is_generator_function(node):
            for child in function_scope_walk(node):
                if not isinstance(child, ast.ExceptHandler):
                    continue
                names = _exception_names(child.type)
                broad = child.type is None or any(
                    name in _BROAD_NAMES for name in names
                )
                if broad and not _reraises(child):
                    what = (
                        "bare except"
                        if child.type is None
                        else f"except {' | '.join(names)}"
                    )
                    self.report(
                        child,
                        f"{what} in a generator process would swallow "
                        "sim.engine.Interrupt; catch specific exceptions or "
                        "re-raise",
                    )
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


@register
class AcquireReleaseRule(Rule):
    """Flag ``x.acquire()`` in a process with no ``x.release()`` in a finally.

    If the process fails (or is interrupted) between acquire and release,
    the slot leaks for the rest of the run: capacity shrinks and every
    later sample of queue depth and latency is silently skewed.  The safe
    shape is::

        yield resource.acquire()
        try:
            ...
        finally:
            resource.release()

    Protocols that intentionally hand a held slot to another process must
    carry a documented ``# ursalint: disable=SIM005`` suppression.
    """

    id = "SIM005"
    title = "acquire() without release() in a finally"
    rationale = (
        "A process failing between acquire and release leaks the slot for "
        "the rest of the run, skewing capacity, queue depths and latency. "
        "Release in a finally, or document the ownership handoff."
    )

    def _visit_function(self, node) -> None:
        if is_generator_function(node):
            acquires: list[tuple[str, ast.Call]] = []
            released_in_finally: set[str] = set()
            for child in function_scope_walk(node):
                if isinstance(child, ast.Call) and isinstance(
                    child.func, ast.Attribute
                ):
                    if child.func.attr == "acquire":
                        receiver = dotted_name(child.func.value) or ast.unparse(
                            child.func.value
                        )
                        acquires.append((receiver, child))
                elif isinstance(child, ast.Try):
                    for stmt in child.finalbody:
                        for sub in ast.walk(stmt):
                            if (
                                isinstance(sub, ast.Call)
                                and isinstance(sub.func, ast.Attribute)
                                and sub.func.attr == "release"
                            ):
                                receiver = dotted_name(
                                    sub.func.value
                                ) or ast.unparse(sub.func.value)
                                released_in_finally.add(receiver)
            for receiver, call in acquires:
                if receiver not in released_in_finally:
                    self.report(
                        call,
                        f"{receiver}.acquire() has no {receiver}.release() "
                        "in a finally block of this process; a failure or "
                        "interrupt between them leaks the slot",
                    )
        self.generic_visit(node)

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
