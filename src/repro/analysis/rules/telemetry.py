"""Telemetry rules: metric writes must match the declared registry.

The :class:`~repro.telemetry.metrics.MetricsHub` validates metric names
at runtime -- but only when the mistyped write actually executes, which
for a rarely-taken branch may be never in CI.  TEL001 closes the gap at
lint time: any *string literal* passed as the metric name to a hub write
method -- directly or through a module-level string constant (the
``_METRIC = "request_latency"`` idiom) -- is checked against
:data:`~repro.telemetry.registry.DEFAULT_REGISTRY` (name known, kind
matches the method, label keys declared).  Names built dynamically are
left to the runtime check, which every hub in the tree now runs in
strict mode.

TEL002 is the same contract for alert series: any string literal passed
as the ``name`` of an :class:`~repro.telemetry.slo.Alert` construction
(or to ``SLOMonitor._emit``) must be declared in
:data:`~repro.telemetry.registry.ALERT_REGISTRY`; the monitor's emit
path is the runtime twin.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Rule, register
from repro.telemetry.registry import ALERT_REGISTRY, DEFAULT_REGISTRY

__all__ = ["UnregisteredAlertRule", "UnregisteredMetricRule"]

#: Hub write method -> the metric kind it records.  The handle factories
#: (``latency_handle``/``counter_handle``) intern a series for later
#: writes; the name they intern is checked exactly like a direct write.
_METHOD_KIND = {
    "record_latency": "latency",
    "inc_counter": "counter",
    "observe_gauge": "gauge",
    "latency_handle": "latency",
    "counter_handle": "counter",
}

#: Position of the ``labels`` argument in each write method's signature.
_LABELS_ARG_INDEX = {
    "record_latency": 2,
    "inc_counter": 2,
    "observe_gauge": 2,
    "latency_handle": 1,
    "counter_handle": 1,
}


def _keyword(node: ast.Call, name: str) -> ast.expr | None:
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _literal_label_keys(node: ast.expr | None) -> list[str] | None:
    """Constant string keys of a dict literal, or ``None`` if not static."""
    if not isinstance(node, ast.Dict):
        return None
    keys = []
    for key in node.keys:
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        keys.append(key.value)
    return keys


@register
class UnregisteredMetricRule(Rule):
    """Flag metric-name literals the telemetry registry does not declare.

    A typo'd metric name silently creates a parallel series that every
    query misses -- dashboards and SLA checks read zeros while the data
    lands next door.  The registry plus this rule make the name itself a
    checked interface.
    """

    id = "TEL001"
    title = "unregistered metric name literal"
    rationale = (
        "Metric names are declared once in "
        "repro.telemetry.registry.DEFAULT_REGISTRY; a write using an "
        "undeclared literal (or the wrong kind/labels) creates a series "
        "no query reads. Register the metric or fix the typo."
    )

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._module_constants: dict[str, str] = {}

    def run(self, tree: ast.Module) -> None:
        # Pre-pass: module-level string constants, so the common
        # ``_METRIC = "request_latency"`` indirection stays checkable.
        # Reassigned names are dropped (their value is ambiguous).
        seen: dict[str, str | None] = {}
        for stmt in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id in seen:
                    seen[target.id] = None
                elif isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    seen[target.id] = value.value
                else:
                    seen[target.id] = None
        self._module_constants = {
            name: text for name, text in seen.items() if text is not None
        }
        self.visit(tree)

    def _resolve_name(self, node: ast.expr | None) -> str | None:
        """The static string value of ``node``, or ``None``."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return self._module_constants.get(node.id)
        return None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _METHOD_KIND:
            self._check_write(node, func.attr)
        self.generic_visit(node)

    def _check_write(self, node: ast.Call, method: str) -> None:
        name_node = node.args[0] if node.args else _keyword(node, "name")
        name = self._resolve_name(name_node)
        if name is None:
            return  # dynamic name: the hub's runtime check owns it
        spec = DEFAULT_REGISTRY.get(name)
        if spec is None:
            self.report(
                name_node,
                f"metric {name!r} is not declared in "
                "repro.telemetry.registry.DEFAULT_REGISTRY",
            )
            return
        kind = _METHOD_KIND[method]
        if spec.kind != kind:
            self.report(
                name_node,
                f"metric {name!r} is declared as a {spec.kind} but "
                f"{method}() records a {kind}",
            )
            return
        labels_index = _LABELS_ARG_INDEX[method]
        labels_node = (
            node.args[labels_index]
            if len(node.args) > labels_index
            else _keyword(node, "labels")
        )
        keys = _literal_label_keys(labels_node)
        if keys is None:
            return  # not a static dict literal
        extra = sorted(set(keys) - set(spec.labels))
        if extra:
            self.report(
                labels_node,
                f"metric {name!r} written with undeclared label keys "
                f"{extra}; declared: {sorted(spec.labels)}",
            )


#: Callables whose first (or ``name=``) argument is an alert series name.
#: ``Alert`` matches both the bare class name and ``slo.Alert``-style
#: attribute access; ``_emit`` is the monitor's internal emit path.
_ALERT_CALLABLES = frozenset({"Alert", "_emit"})


@register
class UnregisteredAlertRule(Rule):
    """Flag alert-name literals the alert registry does not declare.

    The SLO monitor raises on an undeclared alert name at emit time, but
    an alert that only fires under budget exhaustion may never fire in
    CI -- the same blind spot TEL001 closes for metric names.  Any
    string literal (or module-level constant) passed as the name of an
    ``Alert(...)`` construction must come from
    :data:`~repro.telemetry.registry.ALERT_REGISTRY`.
    """

    id = "TEL002"
    title = "unregistered alert name literal"
    rationale = (
        "Alert series are declared once in "
        "repro.telemetry.registry.ALERT_REGISTRY; an Alert built with an "
        "undeclared name literal creates a series no timeline query or "
        "dashboard reads, and the monitor would reject it at emit time. "
        "Register the alert or fix the typo."
    )

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._module_constants: dict[str, str] = {}

    def run(self, tree: ast.Module) -> None:
        # Same module-constant pre-pass as TEL001, so the canonical
        # ``ALERT_BURN_RATE = "slo-burn-rate"`` indirection resolves.
        seen: dict[str, str | None] = {}
        for stmt in tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id in seen:
                    seen[target.id] = None
                elif isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    seen[target.id] = value.value
                else:
                    seen[target.id] = None
        self._module_constants = {
            name: text for name, text in seen.items() if text is not None
        }
        self.visit(tree)

    def _resolve_name(self, node: ast.expr | None) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return self._module_constants.get(node.id)
        return None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        callee = None
        if isinstance(func, ast.Name):
            callee = func.id
        elif isinstance(func, ast.Attribute):
            callee = func.attr
        if callee in _ALERT_CALLABLES:
            name_node = node.args[0] if node.args else _keyword(node, "name")
            name = self._resolve_name(name_node)
            if name is not None and name not in ALERT_REGISTRY:
                self.report(
                    name_node,
                    f"alert {name!r} is not declared in "
                    "repro.telemetry.registry.ALERT_REGISTRY "
                    f"(known: {', '.join(ALERT_REGISTRY.names())})",
                )
        self.generic_visit(node)
