"""Runtime worker sanitizer: detect module-global drift around plan runs.

The whole-program PAR002 rule (:mod:`repro.analysis.program`) proves
*statically* that no worker-reachable code mutates a module-level
global.  This module is the *dynamic* half of that argument: with
``REPRO_SANITIZE=1``, :func:`run_guarded` snapshots a digest of every
data-valued global in the watched modules before and after each
:class:`~repro.experiments.parallel.RunPlan` executes -- in the pool
workers and on the sequential ``jobs=1`` path alike -- and raises
:class:`SanitizerError` naming the drifted globals.

Environment flags (inherited by pool workers under fork and spawn):

``REPRO_SANITIZE``
    ``1`` (or any value other than ``0``/empty) enables the guard.
``REPRO_SANITIZE_PREFIXES``
    Comma-separated module-name prefixes to watch (default ``repro``).
    Tests point this at a planted helper module to prove the guard
    fires; CI and ``make sanitize`` run the whole suite with it on.

The snapshot intentionally skips functions, classes and modules
(rebinding those is already impossible to do accidentally) and
fingerprints everything else by structural ``repr``-style digest, so an
``itertools.count`` advancing, a dict gaining a key, or an int global
being rebound all show up as drift.  Overhead is one ``sys.modules``
scan per plan -- microseconds against multi-second deployment runs; see
docs/performance.md.
"""

from __future__ import annotations

import hashlib
import os
import sys
import types
from typing import Any, Callable, Mapping

__all__ = [
    "ENV_FLAG",
    "ENV_PREFIXES",
    "SanitizerError",
    "enabled",
    "run_guarded",
    "snapshot",
]

ENV_FLAG = "REPRO_SANITIZE"
ENV_PREFIXES = "REPRO_SANITIZE_PREFIXES"
_DEFAULT_PREFIXES = ("repro",)

#: Globals allowed to drift across a plan run, as ``module.attribute``.
#: Keep this list empty unless a drift is provably benign *and*
#: documented here -- every entry weakens the jobs-invariance argument.
ALLOWED_DRIFT: frozenset[str] = frozenset()

_MAX_DEPTH = 6
_MAX_ITEMS = 128

_SKIPPED_TYPES = (
    types.ModuleType,
    types.FunctionType,
    types.BuiltinFunctionType,
    types.MethodType,
    type,
)


class SanitizerError(RuntimeError):
    """A plan run mutated module-level global state."""


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to a truthy value."""
    return os.environ.get(ENV_FLAG, "") not in ("", "0")


def _prefixes() -> tuple[str, ...]:
    raw = os.environ.get(ENV_PREFIXES, "")
    parts = tuple(p.strip() for p in raw.split(",") if p.strip())
    return parts or _DEFAULT_PREFIXES


def _watched(prefix: str, module_name: str) -> bool:
    return module_name == prefix or module_name.startswith(prefix + ".")


def _fingerprint(value: Any, depth: int = 0) -> str:
    """Deterministic structural digest of a runtime value.

    Bounded by ``_MAX_DEPTH``/``_MAX_ITEMS`` so pathological globals
    cannot make the guard quadratic; beyond the caps the summary still
    includes length and type, so growth is detected even when contents
    are elided.
    """
    if value is None or isinstance(value, (bool, int, float, complex, str, bytes)):
        return repr(value)
    if depth >= _MAX_DEPTH:
        return f"<depth-capped {type(value).__qualname__} len={_safe_len(value)}>"
    if isinstance(value, dict):
        items = [
            f"{_fingerprint(k, depth + 1)}:{_fingerprint(v, depth + 1)}"
            for k, v in list(value.items())[:_MAX_ITEMS]
        ]
        return "{" + ",".join(sorted(items)) + f"|len={len(value)}" + "}"
    if isinstance(value, (list, tuple)):
        open_, close = ("[", "]") if isinstance(value, list) else ("(", ")")
        items = [_fingerprint(v, depth + 1) for v in value[:_MAX_ITEMS]]
        return open_ + ",".join(items) + f"|len={len(value)}" + close
    if isinstance(value, (set, frozenset)):
        items = sorted(_fingerprint(v, depth + 1) for v in list(value)[:_MAX_ITEMS])
        return "{" + ",".join(items) + f"|len={len(value)}" + "}"
    # Stateful objects (itertools.count, RNGs, deques, user classes):
    # repr captures observable state for the common cases; a __dict__
    # adds structural depth for plain objects.
    state = getattr(value, "__dict__", None)
    if isinstance(state, dict) and state:
        return (
            f"<{type(value).__qualname__} "
            + _fingerprint(state, depth + 1)
            + ">"
        )
    try:
        return repr(value)
    except Exception:  # pragma: no cover - hostile __repr__
        return f"<unreprable {type(value).__qualname__}>"


def _safe_len(value: Any) -> int:
    try:
        return len(value)
    except TypeError:
        return -1


def snapshot() -> dict[str, str]:
    """Digest of every data-valued global in the watched modules."""
    prefixes = _prefixes()
    digests: dict[str, str] = {}
    for module_name in sorted(sys.modules):
        if not any(_watched(p, module_name) for p in prefixes):
            continue
        module = sys.modules[module_name]
        if module is None:  # pragma: no cover - import-machinery artifact
            continue
        for attr, value in sorted(vars(module).items()):
            if attr.startswith("__") or isinstance(value, _SKIPPED_TYPES):
                continue
            key = f"{module_name}.{attr}"
            if key in ALLOWED_DRIFT:
                continue
            raw = _fingerprint(value)
            digests[key] = hashlib.blake2b(
                raw.encode("utf-8", "backslashreplace"), digest_size=8
            ).hexdigest()
    return digests


def diff(before: Mapping[str, str], after: Mapping[str, str]) -> list[str]:
    """Human-readable drift entries between two snapshots."""
    out = []
    for key in sorted(set(before) | set(after)):
        if key not in after:
            out.append(f"{key} (deleted)")
        elif key not in before:
            out.append(f"{key} (created)")
        elif before[key] != after[key]:
            out.append(f"{key} (mutated)")
    return out


def run_guarded(
    fn: Callable[..., Any], kwargs: Mapping[str, Any], label: str = ""
) -> Any:
    """Run ``fn(**kwargs)``, raising :class:`SanitizerError` on drift.

    With ``REPRO_SANITIZE`` unset this is a plain call -- zero overhead
    beyond one environment read.
    """
    if not enabled():
        return fn(**kwargs)
    before = snapshot()
    result = fn(**kwargs)
    drifted = diff(before, snapshot())
    if drifted:
        what = f" {label!r}" if label else ""
        raise SanitizerError(
            f"plan{what} mutated module-level global state: "
            + ", ".join(drifted)
            + " -- module globals must stay constant during a run, or "
            "--jobs 1 and --jobs N diverge (see docs/static_analysis.md, "
            "PAR002)"
        )
    return result
