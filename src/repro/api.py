"""The supported public API: config in, results out.

Everything an experiment, benchmark, test, or notebook needs rides
through this module -- frozen config types (:class:`RunOptions` and
friends), the run entry points (``run_*``), and the three high-level
verbs:

* :func:`simulate` -- one managed deployment (one grid cell).
* :func:`simulate_grid` -- the (app x load x manager) performance grid.
* :func:`simulate_fleet` -- N budgeted tenant cells under a fleet-level
  node allocator.

Import from here, not from the implementation modules: ``repro.api`` is
the stability boundary (lint rule API002 enforces this for ``tests/``,
``benchmarks/``, and ``examples/``), and every name is re-exported lazily
from the top-level :mod:`repro` package::

    from repro.api import RunOptions, simulate

    result = simulate("social-network", options=RunOptions(seed=23))
    print(result.windowed_violation_rate, result.mean_cpu_allocation)
"""

from __future__ import annotations

from repro.experiments.ablations import (
    run_backpressure_ablation,
    run_grid_ablation,
    run_ttest_ablation,
)
from repro.experiments.fig02_backpressure import run_all_chains
from repro.experiments.fig04_thresholds import run_threshold_profiling
from repro.experiments.fig09_10_model_accuracy import run_model_accuracy
from repro.experiments.fig11_12_performance import (
    PerformanceGrid,
    run_cell,
    run_performance_grid,
)
from repro.experiments.fig13_diurnal import run_diurnal_trace
from repro.experiments.fig14_service_change import run_service_change
from repro.experiments.runner import (
    ClusterOptions,
    DeploymentMetrics,
    DeploymentResult,
    RunOptions,
    ScaleProfile,
    SLOArtifacts,
    SLOOptions,
    TraceArtifacts,
    TracingOptions,
    run_deployment,
    scale_profile,
)
from repro.experiments.table05_exploration import run_table05
from repro.experiments.table06_control_plane import run_table06
from repro.fleet import (
    CellSignal,
    CellSpec,
    FleetOutcome,
    FleetResult,
    FleetSpec,
    default_fleet,
    run_fleet,
)
from repro.workload.mixes import RequestMix

__all__ = [
    # config types
    "CellSpec",
    "ClusterOptions",
    "FleetSpec",
    "RequestMix",
    "RunOptions",
    "SLOOptions",
    "ScaleProfile",
    "TracingOptions",
    # result types
    "CellSignal",
    "DeploymentMetrics",
    "DeploymentResult",
    "FleetOutcome",
    "FleetResult",
    "PerformanceGrid",
    "SLOArtifacts",
    "TraceArtifacts",
    # entry points
    "default_fleet",
    "run_all_chains",
    "run_backpressure_ablation",
    "run_cell",
    "run_deployment",
    "run_diurnal_trace",
    "run_fleet",
    "run_grid_ablation",
    "run_model_accuracy",
    "run_performance_grid",
    "run_service_change",
    "run_table05",
    "run_table06",
    "run_threshold_profiling",
    "run_ttest_ablation",
    "scale_profile",
    "simulate",
    "simulate_fleet",
    "simulate_grid",
]


def simulate(
    app_name: str,
    load_kind: str = "constant",
    manager: str = "ursa",
    options: RunOptions | None = None,
) -> DeploymentResult:
    """One managed deployment of ``app_name`` (one grid cell).

    Thin, stable veneer over :func:`run_cell`: the app's spec, request
    mix, and load pattern are resolved from the benchmark defaults, the
    chosen manager is attached, and the run executes under ``options``.
    """
    return run_cell(app_name, load_kind, manager, options)


def simulate_grid(
    apps: tuple[str, ...],
    loads: tuple[str, ...] | None = None,
    managers: tuple[str, ...] | None = None,
    options: RunOptions | None = None,
    jobs: int | None = None,
    on_complete=None,
) -> PerformanceGrid:
    """The (app x load x manager) grid, fanned out across ``jobs``.

    ``None`` for ``loads``/``managers`` means the full Fig. 11/12 axes.
    """
    kwargs: dict = {}
    if loads is not None:
        kwargs["loads"] = loads
    if managers is not None:
        kwargs["managers"] = managers
    return run_performance_grid(
        apps, options=options, jobs=jobs, on_complete=on_complete, **kwargs
    )


def simulate_fleet(
    spec: FleetSpec | int | None = None,
    options: RunOptions | None = None,
    jobs: int | None = None,
    on_complete=None,
) -> FleetResult:
    """Run a fleet of budgeted tenant cells (see :mod:`repro.fleet`).

    ``spec`` may be a full :class:`FleetSpec`, an int (a
    :func:`default_fleet` of that many cells), or ``None`` (the default
    8-cell fleet).
    """
    if isinstance(spec, int):
        spec = default_fleet(spec)
    return run_fleet(spec, options=options, jobs=jobs, on_complete=on_complete)
