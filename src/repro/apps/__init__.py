"""Benchmark applications (§VI) and topology types.

Builders return :class:`~repro.apps.topology.AppSpec` objects; instantiate
them with :class:`~repro.apps.topology.Application` to deploy on a
simulated cluster.
"""

from repro.apps.chains import CHAIN_CLASS, build_chain_spec, tier_name
from repro.apps.media_service import MEDIA_SERVICE_SLAS, build_media_service_spec
from repro.apps.profiling_harness import PROFILE_CLASS, build_profiling_harness
from repro.apps.social_network import (
    SOCIAL_NETWORK_SLAS,
    build_social_network_spec,
    build_vanilla_social_network_spec,
    swap_object_detect_model,
)
from repro.apps.topology import Application, AppSpec, RequestClass, SlaSpec
from repro.apps.video_pipeline import VIDEO_PIPELINE_SLAS, build_video_pipeline_spec

__all__ = [
    "Application",
    "AppSpec",
    "CHAIN_CLASS",
    "MEDIA_SERVICE_SLAS",
    "PROFILE_CLASS",
    "RequestClass",
    "SlaSpec",
    "SOCIAL_NETWORK_SLAS",
    "VIDEO_PIPELINE_SLAS",
    "build_chain_spec",
    "build_media_service_spec",
    "build_profiling_harness",
    "build_social_network_spec",
    "build_vanilla_social_network_spec",
    "build_video_pipeline_spec",
    "swap_object_detect_model",
    "tier_name",
]
