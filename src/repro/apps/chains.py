"""Synthetic service chains for the §III backpressure case study.

Three 5-tier chains, one per communication method (Fig. 1): nested RPC,
event-driven RPC, and message queues.  Each tier runs a CPU-intensive loop
as its request handler.  The Fig. 2 experiment stress-tests a chain and
throttles the leaf tier's CPU mid-run to observe how latency anomalies
propagate upstream.
"""

from __future__ import annotations

from repro.apps.topology import AppSpec, RequestClass, SlaSpec
from repro.net.messages import Call, CallMode
from repro.services.spec import ServiceSpec
from repro.sim.random import LogNormal

__all__ = ["build_chain_spec", "CHAIN_CLASS", "tier_name"]

#: The single request class flowing through a chain.
CHAIN_CLASS = "chain-request"


def tier_name(index: int) -> str:
    """Name of the ``index``-th tier (1-based; tier 1 is client-facing)."""
    return f"tier-{index}"


#: Handler threads per core by tier depth.  Front tiers (API gateways)
#: run with large thread pools; deep back-end tiers with small ones -- the
#: standard production grading.  The pool *differences* are what localise
#: backpressure: a slow leaf backs traffic up into its parent's (small)
#: pool first, and each larger upstream pool absorbs progressively more of
#: the congestion -- producing Fig. 2's "most pronounced at the parent,
#: negligible above tier 3" shape.
DEFAULT_THREAD_GRADING: tuple[int, ...] = (10, 10, 9, 6, 4)


def build_chain_spec(
    mode: CallMode,
    tiers: int = 5,
    work_mean_s: float = 0.010,
    cpus_per_replica: int = 2,
    sla_s: float = 5.0,
    thread_grading: tuple[int, ...] | None = None,
    daemon_pool_factor: float = 1.25,
) -> AppSpec:
    """A ``tiers``-deep chain whose inter-service edges all use ``mode``.

    The client always reaches tier 1 via RPC (it is the user-facing
    service); ``mode`` governs every tier-to-tier edge, matching the three
    chains of Fig. 1.
    """
    if tiers < 2:
        raise ValueError(f"a chain needs >= 2 tiers, got {tiers}")
    grading = thread_grading if thread_grading is not None else DEFAULT_THREAD_GRADING
    if len(grading) < tiers:
        grading = tuple(grading) + (grading[-1],) * (tiers - len(grading))
    services = tuple(
        ServiceSpec(
            tier_name(i),
            cpus_per_replica=cpus_per_replica,
            handlers={CHAIN_CLASS: LogNormal(work_mean_s, 0.5)},
            memory_per_replica_gb=0.5,
            threads_per_cpu=grading[i - 1],
            daemon_pool_factor=daemon_pool_factor,
        )
        for i in range(1, tiers + 1)
    )
    # Build the chain inside-out: leaf first.
    tree = Call(tier_name(tiers), mode)
    for i in range(tiers - 1, 1, -1):
        tree = Call(tier_name(i), mode, (tree,))
    root = Call(tier_name(1), CallMode.RPC, (tree,))
    request_classes = (
        RequestClass(CHAIN_CLASS, root, SlaSpec(percentile=99.0, target_s=sla_s)),
    )
    return AppSpec(f"chain-{mode.value}", services, request_classes)
