"""The media-service benchmark (§VI, re-implemented DeathStarBench).

Table III SLAs.  Interactive classes (upload/download video, get-info,
rate-video) are RPC chains; the video-processing classes (transcode,
thumbnail) are FFmpeg-style heavy jobs consumed from message queues.
"""

from __future__ import annotations

from repro.apps.topology import AppSpec, RequestClass, SlaSpec
from repro.net.messages import Call, CallMode
from repro.services.spec import ServiceSpec
from repro.sim.random import LogNormal

__all__ = ["build_media_service_spec", "MEDIA_SERVICE_SLAS"]

#: Table III -- SLA requirements of the media service (seconds, p99).
MEDIA_SERVICE_SLAS: dict[str, float] = {
    "upload-video": 2.000,
    "download-video": 1.500,
    "get-info": 0.250,
    "rate-video": 0.400,
    "transcode-video": 40.000,
    "generate-thumbnail": 2.000,
}


def build_media_service_spec() -> AppSpec:
    light = 0.4
    services = (
        ServiceSpec(
            "media-frontend",
            cpus_per_replica=1,
            handlers={
                "upload-video": LogNormal(0.0030, light),
                "download-video": LogNormal(0.0025, light),
                "get-info": LogNormal(0.0020, light),
                "rate-video": LogNormal(0.0020, light),
            },
            memory_per_replica_gb=0.5,
        ),
        # Stores and serves actual video blobs; writes are expensive.
        ServiceSpec(
            "video-store",
            cpus_per_replica=2,
            handlers={
                "upload-video": LogNormal(0.300, 0.8),
                "download-video": LogNormal(0.220, 0.7),
                "transcode-video": LogNormal(0.150, 0.6),
                "generate-thumbnail": LogNormal(0.060, 0.6),
            },
            memory_per_replica_gb=4.0,
        ),
        ServiceSpec(
            "video-info",
            cpus_per_replica=1,
            handlers={"get-info": LogNormal(0.0150, 0.5)},
            memory_per_replica_gb=1.0,
        ),
        ServiceSpec(
            "rating-service",
            cpus_per_replica=1,
            handlers={"rate-video": LogNormal(0.0200, 0.5)},
            memory_per_replica_gb=1.0,
        ),
        ServiceSpec(
            "redis-media",
            cpus_per_replica=1,
            handlers={
                "get-info": LogNormal(0.0012, light),
                "rate-video": LogNormal(0.0012, light),
            },
            memory_per_replica_gb=2.0,
        ),
        # FFmpeg transcoding to multiple resolutions: ~8 s, variable.
        ServiceSpec(
            "transcode",
            cpus_per_replica=4,
            handlers={"transcode-video": LogNormal(8.000, 0.5)},
            memory_per_replica_gb=8.0,
        ),
        # Thumbnail extraction: a single FFmpeg seek+scale, ~0.3 s.
        ServiceSpec(
            "thumbnail",
            cpus_per_replica=1,
            handlers={"generate-thumbnail": LogNormal(0.280, 0.6)},
            memory_per_replica_gb=2.0,
        ),
    )
    sla = {
        name: SlaSpec(percentile=99.0, target_s=target)
        for name, target in MEDIA_SERVICE_SLAS.items()
    }
    request_classes = (
        RequestClass(
            "upload-video",
            Call("media-frontend", CallMode.RPC, (Call("video-store"),)),
            sla["upload-video"],
        ),
        RequestClass(
            "download-video",
            Call("media-frontend", CallMode.RPC, (Call("video-store"),)),
            sla["download-video"],
        ),
        RequestClass(
            "get-info",
            Call(
                "media-frontend",
                CallMode.RPC,
                (Call("video-info", CallMode.RPC, (Call("redis-media"),)),),
            ),
            sla["get-info"],
        ),
        RequestClass(
            "rate-video",
            Call(
                "media-frontend",
                CallMode.RPC,
                (Call("rating-service", CallMode.RPC, (Call("redis-media"),)),),
            ),
            sla["rate-video"],
        ),
        # Transcoding fetches the source and stores renditions via RPC to
        # the video store, but the job itself arrives on a message queue.
        RequestClass(
            "transcode-video",
            Call("transcode", CallMode.MQ, (Call("video-store"),)),
            sla["transcode-video"],
        ),
        RequestClass(
            "generate-thumbnail",
            Call("thumbnail", CallMode.MQ, (Call("video-store"),)),
            sla["generate-thumbnail"],
        ),
    )
    return AppSpec("media-service", services, request_classes)
