"""The 3-tier profiling harness of Fig. 3.

``client -> proxy -> tested service``: the proxy acts as the parent
service and simply forwards requests via nested RPC.  The backpressure
profiler ramps the tested service's CPU limit while watching the *proxy's*
latency; the CPU utilisation of the tested service just before the proxy
latency converges is its backpressure-free threshold.

The harness synthesises aggregate load from multiple upstream sources
(fan-in) by running several independent arrival processes against the same
proxy, per §III's "complex invocation patterns" note.
"""

from __future__ import annotations

from repro.apps.topology import Application, AppSpec, RequestClass, SlaSpec
from repro.cluster.cluster import Cluster
from repro.net.messages import Call, CallMode
from repro.services.spec import ServiceSpec
from repro.sim.engine import Environment
from repro.sim.random import Distribution, LogNormal, RandomStreams

__all__ = ["build_profiling_harness", "PROFILE_CLASS"]

#: Request class used by the profiling engine.
PROFILE_CLASS = "profile-request"


def build_profiling_harness(
    env: Environment,
    cluster: Cluster,
    streams: RandomStreams,
    tested_name: str,
    tested_work: Distribution,
    tested_cpus: int = 2,
    proxy_cpus: int = 4,
    proxy_threads_per_cpu: int | None = None,
    sla_s: float = 5.0,
    hub=None,
) -> Application:
    """Instantiate the Fig. 3 engine around one tested service.

    The proxy has ample CPU (it only forwards) but a realistic, bounded
    request-thread pool -- mirroring gRPC's concurrent-stream limits.  The
    bounded pool is what makes the proxy's latency sensitive to downstream
    congestion: when the tested service's residency grows, blocked proxy
    threads pile up and the proxy's own queueing delay rises.  By default
    the pool is sized to about twice the tested service's core count, which
    places the measured backpressure onset in the utilisation band the
    paper reports (Fig. 4: 46-60 %).
    """
    if proxy_threads_per_cpu is None:
        proxy_threads_per_cpu = max(1, (2 * tested_cpus) // proxy_cpus)
    spec = AppSpec(
        name=f"profiling-{tested_name}",
        services=(
            ServiceSpec(
                "proxy",
                cpus_per_replica=proxy_cpus,
                handlers={PROFILE_CLASS: LogNormal(0.0005, 0.3)},
                memory_per_replica_gb=0.5,
                threads_per_cpu=proxy_threads_per_cpu,
            ),
            ServiceSpec(
                tested_name,
                cpus_per_replica=tested_cpus,
                handlers={PROFILE_CLASS: tested_work},
                memory_per_replica_gb=1.0,
            ),
        ),
        request_classes=(
            RequestClass(
                PROFILE_CLASS,
                Call("proxy", CallMode.RPC, (Call(tested_name, CallMode.RPC),)),
                SlaSpec(percentile=99.0, target_s=sla_s),
            ),
        ),
    )
    return Application(
        spec,
        env=env,
        cluster=cluster,
        hub=hub,
        streams=streams,
        initial_replicas={"proxy": 1, tested_name: 1},
    )
