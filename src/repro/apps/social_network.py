"""The social-network benchmark (§VI, re-implemented DeathStarBench).

Request classes and SLAs follow Table II.  The topology mixes the three
communication methods:

* interactive classes (upload-post, read-timeline, image up/download) use
  nested RPC chains through the frontend;
* deferred classes (update-timeline, sentiment-analysis, object-detect)
  flow through message queues, exactly where the paper's re-implementation
  placed them;
* sentiment analysis and object detection model HuggingFace ML inference:
  large-mean, heavy-tailed service times.

The *vanilla* variant (``build_vanilla_social_network``) disables the ML
services, reproducing the original DeathStarBench feature set the paper
uses to isolate the effect of resource heterogeneity.

Handler work distributions are calibrated so that, at low load, each
class's end-to-end latency sits comfortably below its Table II SLA --
mirroring the paper's methodology of setting SLAs from pre-saturation
latencies.
"""

from __future__ import annotations

from repro.apps.topology import AppSpec, RequestClass, SlaSpec
from repro.net.messages import Call, CallMode
from repro.services.spec import ServiceSpec
from repro.sim.random import LogNormal

__all__ = [
    "build_social_network_spec",
    "build_vanilla_social_network_spec",
    "SOCIAL_NETWORK_SLAS",
    "swap_object_detect_model",
]

#: Table II -- SLA requirements of the social network (seconds, p99).
SOCIAL_NETWORK_SLAS: dict[str, float] = {
    "upload-post": 0.075,
    "read-timeline": 0.250,
    "update-timeline": 0.500,
    "upload-image": 0.200,
    "download-image": 0.075,
    "sentiment-analysis": 0.500,
    "object-detect": 10.000,
}


def _services(include_ml: bool) -> tuple[ServiceSpec, ...]:
    light = 0.4  # cv for fast text handlers
    services = [
        ServiceSpec(
            "frontend",
            cpus_per_replica=1,
            handlers={
                "upload-post": LogNormal(0.0020, light),
                "read-timeline": LogNormal(0.0020, light),
                "upload-image": LogNormal(0.0025, light),
                "download-image": LogNormal(0.0018, light),
                **(
                    {"object-detect": LogNormal(0.0020, light)}
                    if include_ml
                    else {}
                ),
            },
            memory_per_replica_gb=0.5,
        ),
        ServiceSpec(
            "text-service",
            cpus_per_replica=1,
            handlers={"upload-post": LogNormal(0.0060, 0.5)},
            memory_per_replica_gb=0.5,
        ),
        ServiceSpec(
            "user-service",
            cpus_per_replica=1,
            handlers={"upload-post": LogNormal(0.0025, light)},
            memory_per_replica_gb=0.5,
        ),
        ServiceSpec(
            "post-storage",
            cpus_per_replica=1,
            handlers={
                "upload-post": LogNormal(0.0050, 0.5),
                "read-timeline": LogNormal(0.0040, 0.5),
                **({"object-detect": LogNormal(0.0040, 0.5)} if include_ml else {}),
            },
            memory_per_replica_gb=1.0,
        ),
        ServiceSpec(
            "timeline-service",
            cpus_per_replica=1,
            handlers={"read-timeline": LogNormal(0.0120, 0.6)},
            memory_per_replica_gb=1.0,
        ),
        ServiceSpec(
            "timeline-update",
            cpus_per_replica=1,
            handlers={"update-timeline": LogNormal(0.0150, 0.6)},
            memory_per_replica_gb=1.0,
        ),
        ServiceSpec(
            "social-graph",
            cpus_per_replica=1,
            handlers={"update-timeline": LogNormal(0.0050, 0.5)},
            memory_per_replica_gb=0.5,
        ),
        ServiceSpec(
            "image-store",
            cpus_per_replica=1,
            handlers={
                "upload-image": LogNormal(0.0300, 0.7),
                "download-image": LogNormal(0.0080, 0.5),
                **({"object-detect": LogNormal(0.0100, 0.5)} if include_ml else {}),
            },
            memory_per_replica_gb=2.0,
        ),
        ServiceSpec(
            "redis-post",
            cpus_per_replica=1,
            handlers={
                "upload-post": LogNormal(0.0012, light),
                "read-timeline": LogNormal(0.0012, light),
            },
            memory_per_replica_gb=2.0,
        ),
        ServiceSpec(
            "redis-timeline",
            cpus_per_replica=1,
            handlers={
                "read-timeline": LogNormal(0.0012, light),
                "update-timeline": LogNormal(0.0015, light),
            },
            memory_per_replica_gb=2.0,
        ),
        ServiceSpec(
            "redis-social",
            cpus_per_replica=1,
            handlers={"update-timeline": LogNormal(0.0012, light)},
            memory_per_replica_gb=2.0,
        ),
    ]
    if include_ml:
        services.extend(
            [
                # HuggingFace sentiment model: ~80 ms inference, long tail.
                ServiceSpec(
                    "sentiment-ml",
                    cpus_per_replica=4,
                    handlers={"sentiment-analysis": LogNormal(0.080, 0.8)},
                    memory_per_replica_gb=4.0,
                ),
                # DETR object detection: ~1.5 s inference, variable.
                ServiceSpec(
                    "object-detect-ml",
                    cpus_per_replica=4,
                    handlers={"object-detect": LogNormal(1.500, 0.55)},
                    memory_per_replica_gb=8.0,
                ),
            ]
        )
    return tuple(services)


def _request_classes(include_ml: bool) -> tuple[RequestClass, ...]:
    sla = {
        name: SlaSpec(percentile=99.0, target_s=target)
        for name, target in SOCIAL_NETWORK_SLAS.items()
    }
    classes = [
        # Synchronous compose path: frontend -> text (-> user) + storage.
        RequestClass(
            name="upload-post",
            tree=Call(
                "frontend",
                CallMode.RPC,
                (
                    Call("text-service", CallMode.RPC, (Call("user-service"),)),
                    Call("post-storage", CallMode.RPC, (Call("redis-post"),)),
                ),
            ),
            sla=sla["upload-post"],
        ),
        # Timeline read fans out to the timeline index and post contents.
        RequestClass(
            name="read-timeline",
            tree=Call(
                "frontend",
                CallMode.RPC,
                (
                    Call(
                        "timeline-service",
                        CallMode.RPC,
                        (
                            Call("redis-timeline"),
                            Call(
                                "post-storage",
                                CallMode.RPC,
                                (Call("redis-post"),),
                                repeat=2,
                            ),
                        ),
                    ),
                ),
            ),
            sla=sla["read-timeline"],
        ),
        # Deferred fan-out write, consumed from a message queue.
        RequestClass(
            name="update-timeline",
            tree=Call(
                "timeline-update",
                CallMode.MQ,
                (
                    Call("social-graph", CallMode.RPC, (Call("redis-social"),)),
                    Call("redis-timeline", repeat=2),
                ),
            ),
            sla=sla["update-timeline"],
        ),
        RequestClass(
            name="upload-image",
            tree=Call("frontend", CallMode.RPC, (Call("image-store"),)),
            sla=sla["upload-image"],
        ),
        RequestClass(
            name="download-image",
            tree=Call("frontend", CallMode.RPC, (Call("image-store"),)),
            sla=sla["download-image"],
        ),
    ]
    if include_ml:
        classes.extend(
            [
                RequestClass(
                    name="sentiment-analysis",
                    tree=Call("sentiment-ml", CallMode.MQ),
                    sla=sla["sentiment-analysis"],
                ),
                # Fig. 14: object-detect requests traverse frontend, image
                # store, post service and the object-detect service.
                RequestClass(
                    name="object-detect",
                    tree=Call(
                        "frontend",
                        CallMode.RPC,
                        (
                            Call(
                                "object-detect-ml",
                                CallMode.MQ,
                                (
                                    Call("image-store"),
                                    Call("post-storage"),
                                ),
                            ),
                        ),
                    ),
                    sla=sla["object-detect"],
                ),
            ]
        )
    return tuple(classes)


def build_social_network_spec() -> AppSpec:
    """The full social network, including the ML services (§VI)."""
    return AppSpec(
        name="social-network",
        services=_services(include_ml=True),
        request_classes=_request_classes(include_ml=True),
    )


def build_vanilla_social_network_spec() -> AppSpec:
    """Original DeathStarBench feature set: no ML services (§VII-E)."""
    return AppSpec(
        name="vanilla-social-network",
        services=_services(include_ml=False),
        request_classes=_request_classes(include_ml=False),
    )


def swap_object_detect_model(spec: AppSpec) -> AppSpec:
    """§VII-G's business-logic update: DETR -> MobileNet.

    MobileNet is roughly 5x lighter than the DETR pipeline; the swapped
    handler keeps the distribution shape but scales the mean down.
    """
    service = spec.service("object-detect-ml")
    updated = service.with_handler("object-detect", LogNormal(0.300, 0.55))
    return spec.with_service(updated)
