"""Application topologies: request classes, SLAs, and the runtime wiring.

An :class:`AppSpec` is the static description of a benchmark application:
its microservices, and its request classes -- each a call tree with an SLA
(percentile + target latency, Tables II-IV) and a priority.  An
:class:`Application` instantiates the spec on a simulated cluster and is
the object workload generators and resource managers interact with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.cluster.cluster import Cluster
from repro.errors import ConfigurationError, TopologyError
from repro.net.messages import Call, CallMode, Request
from repro.services.base import Microservice
from repro.services.spec import ServiceSpec
from repro.sim.engine import Environment, Event
from repro.sim.random import RandomStreams
from repro.telemetry.metrics import MetricsHub
from repro.telemetry.tracing import Tracer

__all__ = ["SlaSpec", "RequestClass", "AppSpec", "Application"]


@dataclass(frozen=True)
class SlaSpec:
    """An SLA: the ``percentile``-th latency must stay below ``target_s``."""

    percentile: float
    target_s: float

    def __post_init__(self) -> None:
        if not 0 < self.percentile < 100:
            raise ConfigurationError(
                f"SLA percentile must be in (0, 100), got {self.percentile}"
            )
        if self.target_s <= 0:
            raise ConfigurationError(f"SLA target must be > 0, got {self.target_s}")


@dataclass(frozen=True)
class RequestClass:
    """One class (or priority level) of user requests."""

    name: str
    tree: Call
    sla: SlaSpec
    priority: int = 0

    def services(self) -> list[str]:
        """Unique services on this class's path, preorder."""
        seen: list[str] = []
        for name in self.tree.services():
            if name not in seen:
                seen.append(name)
        return seen

    def access_counts(self) -> dict[str, int]:
        """Accesses per request for each service on this class's path.

        A service called ``repeat`` times by a parent that is itself called
        multiple times accumulates multiplicatively; §IV treats the
        cumulative latency of all accesses as that service's latency.
        """
        counts: dict[str, int] = {}

        def walk(call: Call, multiplier: int) -> None:
            times = multiplier * call.repeat
            counts[call.service] = counts.get(call.service, 0) + times
            for child in call.children:
                walk(child, times)

        walk(self.tree, 1)
        return counts


@dataclass(frozen=True)
class AppSpec:
    """Static description of a benchmark application."""

    name: str
    services: tuple[ServiceSpec, ...]
    request_classes: tuple[RequestClass, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "services", tuple(self.services))
        object.__setattr__(self, "request_classes", tuple(self.request_classes))
        specs = {s.name for s in self.services}
        if len(specs) != len(self.services):
            raise ConfigurationError(f"{self.name}: duplicate service names")
        class_names = {c.name for c in self.request_classes}
        if len(class_names) != len(self.request_classes):
            raise ConfigurationError(f"{self.name}: duplicate request classes")
        by_name = {s.name: s for s in self.services}
        for rc in self.request_classes:
            for call in rc.tree.walk():
                if call.service not in specs:
                    raise TopologyError(
                        f"{self.name}: class {rc.name!r} references unknown "
                        f"service {call.service!r}"
                    )
                if rc.name not in by_name[call.service].handlers:
                    raise TopologyError(
                        f"{self.name}: service {call.service!r} lacks a handler "
                        f"for request class {rc.name!r}"
                    )

    def service(self, name: str) -> ServiceSpec:
        for spec in self.services:
            if spec.name == name:
                return spec
        raise TopologyError(f"{self.name}: unknown service {name!r}")

    def request_class(self, name: str) -> RequestClass:
        for rc in self.request_classes:
            if rc.name == name:
                return rc
        raise TopologyError(f"{self.name}: unknown request class {name!r}")

    def sla_table(self) -> dict[str, SlaSpec]:
        """Request class -> SLA (the paper's Tables II-IV)."""
        return {rc.name: rc.sla for rc in self.request_classes}

    def rpc_called_services(self) -> tuple[str, ...]:
        """Services invoked via RPC or event-driven RPC somewhere, sorted.

        Only these need backpressure-free threshold profiling (§III): a
        service consumed exclusively through message queues cannot inflate
        any caller's latency.  Roots of non-MQ classes count (the client
        calls them synchronously).  Returned sorted so callers may iterate
        it directly without tripping SIM003 (set iteration order is
        run-dependent under hash salting).
        """
        called: set[str] = set()
        for rc in self.request_classes:
            if rc.tree.mode != CallMode.MQ:
                called.add(rc.tree.service)
            for call in rc.tree.walk():
                for child in call.children:
                    if child.mode in (CallMode.RPC, CallMode.EVENT):
                        called.add(child.service)
        return tuple(sorted(called))

    def with_service(self, spec: ServiceSpec) -> "AppSpec":
        """A copy with one service spec replaced (§VII-G logic updates)."""
        services = tuple(spec if s.name == spec.name else s for s in self.services)
        if spec.name not in {s.name for s in self.services}:
            raise TopologyError(f"{self.name}: unknown service {spec.name!r}")
        return AppSpec(self.name, services, self.request_classes)


class Application:
    """A running application: services deployed on a cluster.

    This is the facade everything else uses:

    * workload generators call :meth:`submit`;
    * resource managers call :meth:`scale` / :meth:`replicas` and read the
      metrics hub;
    * experiments read :attr:`hub` for latency/violation/allocation series
      and may attach a :class:`~repro.telemetry.tracing.Tracer` (at
      construction or via :meth:`attach_tracer`) to collect span trees for
      sampled requests.
    """

    def __init__(
        self,
        spec: AppSpec,
        env: Environment | None = None,
        cluster: Cluster | None = None,
        hub: MetricsHub | None = None,
        streams: RandomStreams | None = None,
        initial_replicas: Mapping[str, int] | int = 2,
        network_delay_s: float = 0.0005,
        utilization_sample_interval_s: float = 5.0,
        tracer: Tracer | None = None,
    ) -> None:
        self.spec = spec
        self.env = env if env is not None else Environment()
        self.cluster = cluster if cluster is not None else Cluster(self.env)
        self.hub = hub if hub is not None else MetricsHub(lambda: self.env.now)
        self.streams = streams if streams is not None else RandomStreams(seed=0)
        self.services: dict[str, Microservice] = {}
        for svc_spec in spec.services:
            if isinstance(initial_replicas, int):
                replicas = initial_replicas
            else:
                replicas = initial_replicas.get(svc_spec.name, 2)
            self.services[svc_spec.name] = Microservice(
                env=self.env,
                spec=svc_spec,
                cluster=self.cluster,
                hub=self.hub,
                streams=self.streams,
                initial_replicas=replicas,
                network_delay_s=network_delay_s,
                utilization_sample_interval_s=utilization_sample_interval_s,
            )
        # Wire peers: every service can reach every other (the mesh).
        for service in self.services.values():
            service.peers = self.services
        self.request_classes: dict[str, RequestClass] = {
            rc.name: rc for rc in spec.request_classes
        }
        self._class_label_sets: dict[str, tuple] = {}
        #: Per-application request counter: ids are deterministic within
        #: a run and identical at any --jobs count (no process-global
        #: state; see PAR002 in docs/static_analysis.md).
        self._submitted = 0
        self.tracer = tracer
        #: Pure-observer completion subscribers called as
        #: ``fn(request, request_class, latency)`` from `_on_complete`
        #: (inside an already-scheduled event's callback -- subscribing
        #: never adds engine events, so the run digest is unchanged).
        self._completion_listeners: list = []
        if utilization_sample_interval_s > 0:
            self.env.process(
                self._cluster_monitor(utilization_sample_interval_s)
            )

    def attach_tracer(self, tracer: Tracer | None) -> None:
        """Install (or remove, with ``None``) the tracer for new requests."""
        self.tracer = tracer

    def add_completion_listener(self, fn) -> None:
        """Subscribe ``fn(request, request_class, latency)`` to completions.

        Listeners are observers: they run inside the completion event's
        existing callback chain and must not schedule engine events (the
        same contract as ``Environment(trace=...)`` hooks).
        """
        self._completion_listeners.append(fn)

    # -- workload entry -----------------------------------------------------
    def submit(self, class_name: str) -> tuple[Request, Event]:
        """Inject one request; returns (request, completion event).

        End-to-end latency and SLA violations are recorded on the hub when
        the request's call tree completes.
        """
        rc = self.request_classes.get(class_name)
        if rc is None:
            raise TopologyError(f"unknown request class {class_name!r}")
        request = Request(
            request_class=class_name,
            arrival_time=self.env.now,
            priority=rc.priority,
            request_id=self._submitted,
        )
        self._submitted += 1
        root = self.services[rc.tree.service]
        span = (
            self.tracer.begin(
                request,
                rc.tree.service,
                "mq" if rc.tree.mode == CallMode.MQ else "rpc",
            )
            if self.tracer is not None
            else None
        )
        if rc.tree.mode == CallMode.MQ:
            done = root.publish(request, rc.tree, span=span)
        else:
            _response, done = root.submit(request, rc.tree, span=span)
        labels = self._class_labels(class_name)
        self.hub.inc_counter("client_requests_total", labels=labels)
        done._add_callback(
            lambda _ev: self._on_complete(request, rc, labels, span)
        )
        return request, done

    def _class_labels(self, class_name: str):
        key = self._class_label_sets.get(class_name)
        if key is None:
            key = (("request", class_name),)
            self._class_label_sets[class_name] = key
        return key

    def _on_complete(
        self, request: Request, rc: RequestClass, labels, span=None
    ) -> None:
        request.completion_time = self.env.now
        latency = request.latency
        self.hub.record_latency("request_latency", latency, labels)
        if latency > rc.sla.target_s:
            self.hub.inc_counter("sla_violations_total", labels=labels)
        if span is not None:
            self.tracer.finish(span.trace, self.env.now)
        if self._completion_listeners:
            for listener in self._completion_listeners:
                listener(request, rc, latency)

    # -- control plane -------------------------------------------------------
    def scale(self, service: str, replicas: int) -> None:
        self._service(service).scale_to(replicas)

    def replicas(self, service: str) -> int:
        return self._service(service).replicas

    def allocated_cpus(self, service: str | None = None) -> int:
        if service is not None:
            return self._service(service).allocated_cpus
        return sum(s.allocated_cpus for s in self.services.values())

    def _service(self, name: str) -> Microservice:
        try:
            return self.services[name]
        except KeyError:
            raise TopologyError(f"unknown service {name!r}") from None

    def _cluster_monitor(self, interval: float):
        """Sample cluster-wide allocation gauges (pure observer process)."""
        env = self.env
        while True:
            yield env.timeout(interval)
            self.hub.observe_gauge(
                "cluster_allocated_cpus", float(self.cluster.allocated_cpus())
            )
            self.hub.observe_gauge(
                "cluster_free_cpus", float(self.cluster.free_cpus())
            )

    # -- accounting helpers ---------------------------------------------------
    def windowed_violation_rate(
        self, t0: float, t1: float, window_s: float = 60.0
    ) -> float:
        """SLA violation rate as the paper reports it.

        For each request class and each ``window_s`` evaluation window in
        ``[t0, t1)``, the class's SLA percentile is computed over the
        window's completed requests and checked against its target.  The
        violation rate is the fraction of failed checks.  This definition
        works for any SLA percentile (the video pipeline's low-priority SLA
        is on the median, where a per-request count would be meaningless).
        """
        checks = 0
        failures = 0
        t = t0
        while t < t1:
            t_next = min(t1, t + window_s)
            for rc in self.spec.request_classes:
                dist = self.hub.latency_distribution(
                    "request_latency", t, t_next, {"request": rc.name}
                )
                if dist:
                    checks += 1
                    if dist.percentile(rc.sla.percentile) > rc.sla.target_s:
                        failures += 1
            t = t_next
        if checks == 0:
            return 0.0
        return failures / checks

    def sla_violation_rate(self, t0: float, t1: float) -> float:
        """Overall fraction of completed requests violating their SLA.

        Computed from completed-request latencies recorded in ``[t0, t1)``
        across all request classes.
        """
        violations = 0.0
        completed = 0
        for rc in self.spec.request_classes:
            labels = {"request": rc.name}
            dist = self.hub.latency_distribution("request_latency", t0, t1, labels)
            if dist:
                completed += dist.count
                violations += dist.fraction_above(rc.sla.target_s) * dist.count
        if completed == 0:
            return 0.0
        return violations / completed

    def per_class_violation_rate(self, t0: float, t1: float) -> dict[str, float]:
        """Per-request-class SLA violation rates over ``[t0, t1)``."""
        rates: dict[str, float] = {}
        for rc in self.spec.request_classes:
            dist = self.hub.latency_distribution(
                "request_latency", t0, t1, {"request": rc.name}
            )
            rates[rc.name] = dist.fraction_above(rc.sla.target_s) if dist else 0.0
        return rates

    def mean_cpu_allocation(self, t0: float, t1: float) -> float:
        """Average total CPUs allocated to the app over ``[t0, t1)``."""
        total = 0.0
        for name in self.services:
            total += self.hub.gauge_mean(
                "cpu_allocated", t0, t1, {"service": name}, default=0.0
            )
        return total
