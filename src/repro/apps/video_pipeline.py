"""The video-processing-pipeline benchmark (§VI).

Three MQ-connected stages -- metadata extraction (FFmpeg), snapshotting
(FFmpeg), face recognition (OpenCV) -- processing two request priorities.
High-priority requests are served whenever any are waiting; low-priority
requests are served otherwise (the priority queues in
:mod:`repro.net.mq` implement exactly this).  Table IV SLAs: the
high-priority class at the 99th percentile, low-priority at the 50th.
"""

from __future__ import annotations

from repro.apps.topology import AppSpec, RequestClass, SlaSpec
from repro.net.messages import Call, CallMode
from repro.services.spec import ServiceSpec
from repro.sim.random import LogNormal

__all__ = ["build_video_pipeline_spec", "VIDEO_PIPELINE_SLAS"]

#: Table IV -- (percentile, target seconds) per priority class.
VIDEO_PIPELINE_SLAS: dict[str, tuple[float, float]] = {
    "high-priority": (99.0, 20.000),
    "low-priority": (50.0, 4.000),
}


def _stage_tree() -> Call:
    """metadata -> snapshot -> face-recognition, all via MQs."""
    return Call(
        "vp-metadata",
        CallMode.MQ,
        (
            Call(
                "vp-snapshot",
                CallMode.MQ,
                (Call("vp-facerec", CallMode.MQ),),
            ),
        ),
    )


def build_video_pipeline_spec() -> AppSpec:
    both = lambda dist: {"high-priority": dist, "low-priority": dist}  # noqa: E731
    services = (
        # Stage 1: ffprobe-style metadata extraction.
        ServiceSpec(
            "vp-metadata",
            cpus_per_replica=2,
            handlers=both(LogNormal(0.300, 0.5)),
            memory_per_replica_gb=2.0,
        ),
        # Stage 2: fixed-interval snapshots.
        ServiceSpec(
            "vp-snapshot",
            cpus_per_replica=2,
            handlers=both(LogNormal(0.800, 0.5)),
            memory_per_replica_gb=2.0,
        ),
        # Stage 3: OpenCV face recognition over the snapshots.
        ServiceSpec(
            "vp-facerec",
            cpus_per_replica=4,
            handlers=both(LogNormal(1.200, 0.5)),
            memory_per_replica_gb=4.0,
        ),
    )
    request_classes = (
        RequestClass(
            "high-priority",
            _stage_tree(),
            SlaSpec(*VIDEO_PIPELINE_SLAS["high-priority"]),
            priority=0,
        ),
        RequestClass(
            "low-priority",
            _stage_tree(),
            SlaSpec(*VIDEO_PIPELINE_SLAS["low-priority"]),
            priority=1,
        ),
    )
    return AppSpec("video-pipeline", services, request_classes)
