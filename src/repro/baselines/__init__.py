"""Competing approaches (§VII-B): step autoscaling, Sinan, Firm."""

from repro.baselines.autoscaler import StepAutoscaler, auto_a, auto_b

__all__ = ["StepAutoscaler", "auto_a", "auto_b"]
