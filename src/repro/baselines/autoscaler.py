"""Step autoscaling (the traditional baseline, §VII-B).

CPU-utilisation threshold scaling in the style of AWS step scaling / the
Kubernetes HPA: scale out when a service's utilisation crosses the upper
threshold, scale in below the lower threshold.  Two stock configurations:

* **Auto-a** -- the AWS default (out above 60 %, in below 30 %): frugal
  with resources at the cost of SLA violations;
* **Auto-b** -- manually tuned to protect the tested applications' SLAs
  (out above 30 %, in below 12 %, larger step): low violation rates but
  significantly more CPUs allocated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.topology import Application
from repro.errors import ConfigurationError

__all__ = ["StepAutoscaler", "auto_a", "auto_b"]


@dataclass(frozen=True)
class _Config:
    name: str
    scale_out_above: float
    scale_in_below: float
    #: Replicas added per breach (AWS step adjustment).
    step_out: int
    step_in: int
    control_interval_s: float = 30.0


def auto_a() -> _Config:
    """AWS step-scaling default: out > 60 % CPU, in < 30 %."""
    return _Config("auto-a", 0.60, 0.30, step_out=1, step_in=1)


def auto_b() -> _Config:
    """Manually tuned for SLA maintenance: aggressive out, reluctant in."""
    return _Config("auto-b", 0.30, 0.12, step_out=2, step_in=1)


class StepAutoscaler:
    """Per-service utilisation-threshold scaling loop."""

    def __init__(
        self,
        app: Application,
        config: _Config | None = None,
        min_replicas: int = 1,
        max_replicas: int = 64,
    ) -> None:
        self.app = app
        self.config = config if config is not None else auto_a()
        if not 0 < self.config.scale_in_below < self.config.scale_out_above <= 1:
            raise ConfigurationError(
                f"need 0 < in < out <= 1, got {self.config}"
            )
        self.min_replicas = int(min_replicas)
        self.max_replicas = int(max_replicas)
        self.decisions = 0
        self._started = False

    def start(self) -> None:
        if self._started:
            raise ConfigurationError("autoscaler already started")
        self._started = True
        self.app.env.process(self._loop())

    def decide(self, service: str) -> int | None:
        """Return the new replica count for ``service``, or None to hold.

        This single threshold comparison is the entire decision path --
        the reason autoscaling is the fastest control plane in Table VI.
        """
        hub = self.app.hub
        now = self.app.env.now
        t0 = max(0.0, now - self.config.control_interval_s)
        if now <= t0:
            return None
        utilization = hub.gauge_mean(
            "cpu_utilization", t0, now, {"service": service}, default=-1.0
        )
        if utilization < 0:
            return None
        current = max(1, self.app.services[service].deployment.desired_replicas)
        if utilization > self.config.scale_out_above:
            return min(self.max_replicas, current + self.config.step_out)
        if utilization < self.config.scale_in_below:
            # Scale in only if the lower count would stay under the upper
            # threshold (protects against flapping).
            target = max(self.min_replicas, current - self.config.step_in)
            if target < current:
                projected = utilization * current / target
                if projected < self.config.scale_out_above:
                    return target
        return None

    def step(self) -> None:
        for service in self.app.services:
            target = self.decide(service)
            if target is not None:
                current = self.app.services[service].deployment.desired_replicas
                if target != current:
                    self.app.scale(service, target)
                    self.decisions += 1

    def _loop(self):
        env = self.app.env
        yield env.timeout(self.app.hub.window_s)
        while True:
            self.step()
            yield env.timeout(self.config.control_interval_s)
