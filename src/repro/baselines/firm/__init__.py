"""Firm baseline: model-free per-service RL resource management (§VII-B)."""

from repro.baselines.firm.agent import STATE_DIM, FirmAgent
from repro.baselines.firm.controller import FirmManager, train_firm_agents
from repro.baselines.firm.replay import ReplayBuffer

__all__ = [
    "FirmAgent",
    "FirmManager",
    "ReplayBuffer",
    "STATE_DIM",
    "train_firm_agents",
]
