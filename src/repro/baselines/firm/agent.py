"""Firm's per-service RL agent: a compact DDPG in numpy (§VII-B).

Each microservice gets its own agent that directly adjusts the service's
replica count.  State: (CPU utilisation, normalised queue depth, SLA
pressure, normalised replicas).  Action: a continuous value in [-1, 1]
mapped to a replica delta.  Reward (the paper's design): a weighted sum of
resource savings and SLA status -- the weighting is what makes Firm
occasionally prefer savings over SLA, producing its characteristic
violations under pressure.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.firm.replay import ReplayBuffer
from repro.errors import ConfigurationError

__all__ = ["FirmAgent", "STATE_DIM"]

STATE_DIM = 4


class _TwoLayerNet:
    """Tanh-output MLP with one hidden ReLU layer and SGD updates."""

    def __init__(self, input_dim: int, hidden: int, seed: int, tanh_out: bool):
        rng = np.random.default_rng(seed)
        self.w1 = rng.normal(0, np.sqrt(2.0 / input_dim), (input_dim, hidden))
        self.b1 = np.zeros(hidden)
        self.w2 = rng.normal(0, np.sqrt(1.0 / hidden), (hidden, 1))
        self.b2 = np.zeros(1)
        self.tanh_out = tanh_out

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        h = np.maximum(0.0, x @ self.w1 + self.b1)
        out = h @ self.w2 + self.b2
        if self.tanh_out:
            out = np.tanh(out)
        return out, h

    def params(self):
        return [self.w1, self.b1, self.w2, self.b2]

    def soft_update_from(self, other: "_TwoLayerNet", tau: float) -> None:
        for target, source in zip(self.params(), other.params()):
            target *= 1.0 - tau
            target += tau * source

    def copy_from(self, other: "_TwoLayerNet") -> None:
        self.soft_update_from(other, 1.0)


class FirmAgent:
    """DDPG agent controlling one service's replica count."""

    def __init__(
        self,
        service: str,
        max_delta: int = 2,
        hidden: int = 32,
        gamma: float = 0.95,
        tau: float = 0.01,
        lr_actor: float = 1e-3,
        lr_critic: float = 1e-3,
        buffer_capacity: int = 20_000,
        sla_weight: float = 1.0,
        resource_weight: float = 0.7,
        seed: int = 0,
    ) -> None:
        if max_delta < 1:
            raise ConfigurationError("max_delta must be >= 1")
        self.service = service
        self.max_delta = int(max_delta)
        self.gamma = gamma
        self.tau = tau
        self.lr_actor = lr_actor
        self.lr_critic = lr_critic
        #: Reward = -(sla_weight * violation + resource_weight * usage).
        #: resource_weight close to sla_weight is Firm's Achilles heel: big
        #: savings can outweigh an SLA breach.
        self.sla_weight = float(sla_weight)
        self.resource_weight = float(resource_weight)
        self.actor = _TwoLayerNet(STATE_DIM, hidden, seed, tanh_out=True)
        self.actor_target = _TwoLayerNet(STATE_DIM, hidden, seed, tanh_out=True)
        self.actor_target.copy_from(self.actor)
        self.critic = _TwoLayerNet(STATE_DIM + 1, hidden, seed + 1, tanh_out=False)
        self.critic_target = _TwoLayerNet(
            STATE_DIM + 1, hidden, seed + 1, tanh_out=False
        )
        self.critic_target.copy_from(self.critic)
        self.buffer = ReplayBuffer(buffer_capacity, STATE_DIM, seed=seed + 2)
        self._rng = np.random.default_rng(seed + 3)
        self.updates = 0

    # ------------------------------------------------------------------
    def act(self, state: np.ndarray, noise_std: float = 0.0) -> float:
        """Continuous action in [-1, 1]."""
        out, _ = self.actor.forward(np.atleast_2d(state))
        action = float(out[0, 0])
        if noise_std > 0:
            action += float(self._rng.normal(0, noise_std))
        return float(np.clip(action, -1.0, 1.0))

    def action_to_delta(self, action: float) -> int:
        """Map [-1, 1] to a replica delta in [-max_delta, max_delta]."""
        return int(round(action * self.max_delta))

    def reward(self, violated: bool, cpus_used: float, cpus_reference: float) -> float:
        """The paper's weighted reward."""
        usage = cpus_used / max(cpus_reference, 1e-9)
        return -(self.sla_weight * float(violated) + self.resource_weight * usage)

    def remember(
        self,
        state: np.ndarray,
        action: float,
        reward: float,
        next_state: np.ndarray,
    ) -> None:
        self.buffer.push(state, action, reward, next_state)

    # ------------------------------------------------------------------
    def update(self, batch_size: int = 32) -> float:
        """One DDPG update; returns the critic loss."""
        if len(self.buffer) < batch_size:
            return 0.0
        states, actions, rewards, next_states = self.buffer.sample(batch_size)
        # Critic target: r + gamma * Q_target(s', pi_target(s')).
        next_actions, _ = self.actor_target.forward(next_states)
        q_next, _ = self.critic_target.forward(
            np.hstack([next_states, next_actions])
        )
        target = rewards + self.gamma * q_next
        # Critic update (MSE).
        critic_in = np.hstack([states, actions])
        q, h = self.critic.forward(critic_in)
        error = q - target
        loss = float(np.mean(error**2))
        n = len(states)
        dout = 2.0 * error / n
        gw2 = h.T @ dout
        gb2 = dout.sum(axis=0)
        dh = (dout @ self.critic.w2.T) * (h > 0)
        gw1 = critic_in.T @ dh
        gb1 = dh.sum(axis=0)
        self.critic.w2 -= self.lr_critic * gw2
        self.critic.b2 -= self.lr_critic * gb2
        self.critic.w1 -= self.lr_critic * gw1
        self.critic.b1 -= self.lr_critic * gb1
        # Actor update: ascend dQ/da through the deterministic policy.
        actions_pi, h_a = self.actor.forward(states)
        critic_in_pi = np.hstack([states, actions_pi])
        q_pi, h_c = self.critic.forward(critic_in_pi)
        # dQ/da: backprop through the critic to its action input.
        dq = np.ones_like(q_pi) / n
        dh_c = (dq @ self.critic.w2.T) * (h_c > 0)
        dinput = dh_c @ self.critic.w1.T
        dq_da = dinput[:, STATE_DIM:]
        # Chain through the actor (tanh output).
        dpre = dq_da * (1.0 - actions_pi**2)
        gw2a = h_a.T @ dpre
        gb2a = dpre.sum(axis=0)
        dha = (dpre @ self.actor.w2.T) * (h_a > 0)
        gw1a = states.T @ dha
        gb1a = dha.sum(axis=0)
        # Gradient *ascent* on Q.
        self.actor.w2 += self.lr_actor * gw2a
        self.actor.b2 += self.lr_actor * gb2a
        self.actor.w1 += self.lr_actor * gw1a
        self.actor.b1 += self.lr_actor * gb1a
        # Soft target updates.
        self.actor_target.soft_update_from(self.actor, self.tau)
        self.critic_target.soft_update_from(self.critic, self.tau)
        self.updates += 1
        return loss
