"""Firm's manager: per-service agents, online training, deployment loop.

Training follows the paper: agents learn during online deployment with
injected performance anomalies (random CPU throttles and load spikes) so
they see SLA-violating states.  At deployment each control interval every
agent reads its service's state, picks a replica delta, and the manager
applies it -- the decision path is one small forward pass per service
(Table VI: faster than Sinan's centralised batch inference, slower than
Ursa's threshold check).
"""

from __future__ import annotations

import time

import numpy as np

from repro.apps.topology import Application, AppSpec
from repro.baselines.firm.agent import FirmAgent
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.core.exploration import provisioning_for
from repro.errors import ConfigurationError
from repro.sim.engine import Environment
from repro.sim.random import RandomStreams
from repro.telemetry.metrics import MetricsHub
from repro.workload.generator import LoadGenerator
from repro.workload.mixes import RequestMix
from repro.workload.patterns import ConstantLoad

__all__ = ["FirmManager", "train_firm_agents"]


def _service_state(app: Application, service: str, t0: float, t1: float,
                   max_replicas: int) -> np.ndarray:
    hub = app.hub
    utilization = hub.gauge_mean(
        "cpu_utilization", t0, t1, {"service": service}, default=0.0
    )
    queue_depth = hub.gauge_mean(
        "queue_depth", t0, t1, {"service": service}, default=0.0
    )
    pressure = 0.0
    for rc in app.spec.request_classes:
        dist = app.hub.latency_distribution(
            "request_latency", t0, t1, {"request": rc.name}
        )
        if dist:
            pressure = max(
                pressure, dist.percentile(rc.sla.percentile) / rc.sla.target_s
            )
    replicas = app.services[service].deployment.desired_replicas
    return np.asarray(
        [
            min(1.0, utilization),
            min(1.0, queue_depth / 100.0),
            min(3.0, pressure) / 3.0,
            replicas / max_replicas,
        ]
    )


def _app_violated(app: Application, t0: float, t1: float) -> bool:
    for rc in app.spec.request_classes:
        dist = app.hub.latency_distribution(
            "request_latency", t0, t1, {"request": rc.name}
        )
        if dist and dist.count >= 10 and (
            dist.percentile(rc.sla.percentile) > rc.sla.target_s
        ):
            return True
    return False


def train_firm_agents(
    spec: AppSpec,
    mix: RequestMix,
    rps: float,
    streams: RandomStreams,
    n_samples: int = 400,
    window_s: float = 30.0,
    max_replicas: int = 32,
    anomaly_probability: float = 0.25,
    seed_salt: int = 0,
) -> tuple[dict[str, FirmAgent], float]:
    """Online training with anomaly injection.

    Returns the trained agents and the simulated collection time.  Each
    window yields one transition per agent; the paper's budget is 10,000
    samples (Table V accounting).
    """
    agents = {
        s.name: FirmAgent(s.name, seed=seed_salt * 131 + k)
        for k, s in enumerate(spec.services)
    }
    provisioning = provisioning_for(spec, mix, rps)
    env = Environment()
    cluster = Cluster(env, nodes=[Node(f"firm-{i}", 96, 256) for i in range(8)])
    hub = MetricsHub(lambda: env.now, window_s=window_s, strict=True)
    app = Application(
        spec,
        env=env,
        cluster=cluster,
        hub=hub,
        streams=streams.fork(seed_salt),
        initial_replicas=provisioning,
    )
    LoadGenerator(
        app,
        pattern=ConstantLoad(rps),
        mix=mix,
        streams=streams.fork(seed_salt + 1),
    ).start()
    env.run(until=60)
    rng = streams.stream(f"firm-train:{spec.name}:{seed_salt}")
    cpus_reference = {
        s.name: provisioning[s.name] * s.cpus_per_replica for s in spec.services
    }
    t_start = env.now
    states: dict[str, np.ndarray] = {}
    actions: dict[str, float] = {}
    throttled: str | None = None
    for step in range(n_samples):
        w0 = env.now
        # Anomaly injection: occasionally throttle a random service.
        if throttled is not None:
            app.services[throttled].set_speed_factor(1.0)
            throttled = None
        elif rng.random() < anomaly_probability:
            throttled = str(rng.choice(list(agents)))
            app.services[throttled].set_speed_factor(float(rng.uniform(0.2, 0.6)))
        env.run(until=w0 + window_s)
        violated = _app_violated(app, w0, env.now)
        noise = max(0.05, 0.5 * (1.0 - step / max(1, n_samples)))
        for name, agent in agents.items():
            state = _service_state(app, name, w0, env.now, max_replicas)
            if name in states:
                cpus = app.services[name].allocated_cpus
                reward = agent.reward(violated, cpus, cpus_reference[name])
                agent.remember(states[name], actions[name], reward, state)
                agent.update()
            action = agent.act(state, noise_std=noise)
            delta = agent.action_to_delta(action)
            current = app.services[name].deployment.desired_replicas
            target = int(np.clip(current + delta, 1, max_replicas))
            if target != current:
                app.scale(name, target)
            states[name] = state
            actions[name] = action
    return agents, env.now - t_start


class FirmManager:
    """Deployment-time controller applying the trained agents."""

    def __init__(
        self,
        app: Application,
        agents: dict[str, FirmAgent],
        control_interval_s: float = 30.0,
        max_replicas: int = 32,
        online_learning: bool = True,
    ) -> None:
        missing = set(app.services) - set(agents)
        if missing:
            raise ConfigurationError(f"no agents for services: {sorted(missing)}")
        self.app = app
        self.agents = agents
        self.control_interval_s = float(control_interval_s)
        self.max_replicas = int(max_replicas)
        self.online_learning = online_learning
        self.decisions = 0
        self._started = False
        self._last: dict[str, tuple[np.ndarray, float]] = {}
        self._cpus_reference = {
            s.name: 4 * s.cpus_per_replica for s in app.spec.services
        }

    def initialize(self, replicas: dict[str, int] | int = 2) -> None:
        for name in self.app.services:
            count = replicas if isinstance(replicas, int) else replicas.get(name, 2)
            self.app.scale(name, count)

    def start(self) -> None:
        if self._started:
            raise ConfigurationError("manager already started")
        self._started = True
        self.app.env.process(self._loop())

    # ------------------------------------------------------------------
    def decide(self, service: str, t0: float, t1: float) -> int:
        """One agent decision: state read + actor forward pass."""
        agent = self.agents[service]
        state = _service_state(self.app, service, t0, t1, self.max_replicas)
        action = agent.act(state)
        delta = agent.action_to_delta(action)
        current = self.app.services[service].deployment.desired_replicas
        self._last[service] = (state, action)
        return int(np.clip(current + delta, 1, self.max_replicas))

    def time_decision(self, repeats: int = 20) -> float:
        """Mean wall-clock seconds for a full per-service decision pass."""
        now = self.app.env.now
        t0 = max(0.0, now - self.control_interval_s)
        # Table VI probe: real compute cost of a decision, not simulated time.
        start = time.perf_counter()  # ursalint: disable=SIM001 -- Table VI probe
        for _ in range(repeats):
            for service in self.agents:
                self.decide(service, t0, now)
        # ursalint: disable=SIM001 -- Table VI probe
        return (time.perf_counter() - start) / repeats

    def time_update(self, iterations: int = 1) -> float:
        """Wall-clock seconds for online RL update iterations (Table VI)."""
        start = time.perf_counter()  # ursalint: disable=SIM001 -- Table VI probe
        for _ in range(iterations):
            for agent in self.agents.values():
                agent.update()
        return time.perf_counter() - start  # ursalint: disable=SIM001 -- Table VI probe

    def step(self) -> None:
        now = self.app.env.now
        t0 = max(0.0, now - self.control_interval_s)
        if now <= t0:
            return
        violated = _app_violated(self.app, t0, now)
        for service, agent in self.agents.items():
            if self.online_learning and service in self._last:
                state, action = self._last[service]
                next_state = _service_state(
                    self.app, service, t0, now, self.max_replicas
                )
                cpus = self.app.services[service].allocated_cpus
                reward = agent.reward(
                    violated, cpus, self._cpus_reference[service]
                )
                agent.remember(state, action, reward, next_state)
                agent.update()
            target = self.decide(service, t0, now)
            if target != self.app.services[service].deployment.desired_replicas:
                self.app.scale(service, target)
        self.decisions += 1

    def _loop(self):
        env = self.app.env
        yield env.timeout(self.app.hub.window_s)
        while True:
            self.step()
            yield env.timeout(self.control_interval_s)
