"""Experience replay buffer for Firm's RL agents."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ReplayBuffer"]


class ReplayBuffer:
    """Fixed-capacity ring buffer of (s, a, r, s') transitions."""

    def __init__(self, capacity: int, state_dim: int, seed: int = 0) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if state_dim < 1:
            raise ConfigurationError(f"state_dim must be >= 1, got {state_dim}")
        self.capacity = int(capacity)
        self.state_dim = int(state_dim)
        self._states = np.zeros((capacity, state_dim))
        self._actions = np.zeros((capacity, 1))
        self._rewards = np.zeros((capacity, 1))
        self._next_states = np.zeros((capacity, state_dim))
        self._size = 0
        self._head = 0
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return self._size

    def push(
        self,
        state: np.ndarray,
        action: float,
        reward: float,
        next_state: np.ndarray,
    ) -> None:
        i = self._head
        self._states[i] = state
        self._actions[i] = action
        self._rewards[i] = reward
        self._next_states[i] = next_state
        self._head = (self._head + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def sample(
        self, batch_size: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if self._size == 0:
            raise ConfigurationError("cannot sample from an empty buffer")
        idx = self._rng.integers(0, self._size, size=min(batch_size, self._size))
        return (
            self._states[idx],
            self._actions[idx],
            self._rewards[idx],
            self._next_states[idx],
        )
