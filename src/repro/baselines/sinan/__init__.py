"""Sinan baseline: model-based ML-driven resource management (§VII-B).

Pipeline: :class:`SinanDataCollector` gathers balanced training data,
:class:`SinanPredictor` trains the latency MLP + violation GBDT pair, and
:class:`SinanManager` drives deployments by batch-scoring candidate
allocations with both models.
"""

from repro.baselines.sinan.data_collection import (
    SinanDataCollector,
    SinanDataset,
    TrainingSample,
)
from repro.baselines.sinan.features import FeatureSchema
from repro.baselines.sinan.gbdt import GradientBoostedClassifier
from repro.baselines.sinan.nn import MlpRegressor
from repro.baselines.sinan.predictor import SinanPredictor
from repro.baselines.sinan.scheduler import SinanManager

__all__ = [
    "FeatureSchema",
    "GradientBoostedClassifier",
    "MlpRegressor",
    "SinanDataCollector",
    "SinanDataset",
    "SinanManager",
    "SinanPredictor",
    "TrainingSample",
]
