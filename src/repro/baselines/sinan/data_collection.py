"""Sinan's training-data collection process (§VII-B/C).

Runs the application under its exploration workload while randomising
resource allocations window by window, recording (features, next-window
latency, violation-within-horizon) tuples.  The sampler keeps the ratio of
violating to meeting samples near 1:1 so the trained models are unbiased
(the paper's stated collection goal): when violations lag, it biases
toward tighter allocations, and vice versa.

The paper trains Sinan and Firm on **10,000 samples** collected at one per
minute (~166.7 h) -- the Table V figures.  The collector here accepts any
budget; the exploration-overhead benchmark accounts Sinan/Firm at the
paper-prescribed budget while the performance experiments train on a
simulation-sized sample set.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.topology import Application, AppSpec
from repro.baselines.sinan.features import FeatureSchema
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.core.exploration import provisioning_for
from repro.errors import ExplorationError
from repro.sim.engine import Environment
from repro.sim.random import RandomStreams
from repro.telemetry.metrics import MetricsHub
from repro.workload.generator import LoadGenerator
from repro.workload.mixes import RequestMix
from repro.workload.patterns import ConstantLoad

__all__ = ["TrainingSample", "SinanDataset", "SinanDataCollector"]


@dataclass
class TrainingSample:
    features: np.ndarray
    #: per-class p99 latency in the following window (seconds).
    next_latency: np.ndarray
    #: 1 if any class violates its SLA within the lookahead horizon.
    violation: int


@dataclass
class SinanDataset:
    schema: FeatureSchema
    samples: list[TrainingSample] = field(default_factory=list)
    collection_time_s: float = 0.0

    @property
    def size(self) -> int:
        return len(self.samples)

    def violation_ratio(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.violation for s in self.samples) / len(self.samples)

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        x = np.vstack([s.features for s in self.samples])
        y = np.vstack([s.next_latency for s in self.samples])
        v = np.asarray([s.violation for s in self.samples])
        return x, y, v


class SinanDataCollector:
    """Randomised-allocation data collection with 1:1 violation balancing."""

    def __init__(
        self,
        streams: RandomStreams,
        window_s: float = 60.0,
        lookahead_windows: int = 2,
        settle_s: float = 20.0,
    ) -> None:
        self.streams = streams
        self.window_s = float(window_s)
        self.lookahead = int(lookahead_windows)
        self.settle_s = float(settle_s)

    def collect(
        self,
        spec: AppSpec,
        mix: RequestMix,
        rps: float,
        n_samples: int,
        seed_salt: int = 0,
    ) -> SinanDataset:
        """Collect ``n_samples`` (one per window) on a fresh deployment."""
        if n_samples < self.lookahead + 1:
            raise ExplorationError("sample budget smaller than the lookahead")
        schema = FeatureSchema.for_spec(spec)
        provisioning = provisioning_for(spec, mix, rps)
        env = Environment()
        cluster = Cluster(env, nodes=[Node(f"col-{i}", 96, 256) for i in range(8)])
        hub = MetricsHub(lambda: env.now, window_s=self.window_s, strict=True)
        app = Application(
            spec,
            env=env,
            cluster=cluster,
            hub=hub,
            streams=self.streams.fork(seed_salt),
            initial_replicas=provisioning,
        )
        LoadGenerator(
            app,
            pattern=ConstantLoad(rps),
            mix=mix,
            streams=self.streams.fork(seed_salt + 1),
        ).start()
        env.run(until=60)

        rng = self.streams.stream(f"sinan-collect:{spec.name}:{seed_salt}")
        dataset = SinanDataset(schema=schema)
        t_start = env.now
        # Rolling log of (feature, per-class p99s of later windows).
        pending: list[tuple[np.ndarray, list[np.ndarray], list[bool]]] = []
        violations_so_far = 0
        records = 0

        def window_stats(w0: float, w1: float) -> tuple[np.ndarray, bool]:
            p99s = []
            violated = False
            for rc in spec.request_classes:
                dist = app.hub.latency_distribution(
                    "request_latency", w0, w1, {"request": rc.name}
                )
                if dist:
                    p = dist.percentile(rc.sla.percentile)
                    p99s.append(p)
                    if dist.count >= 10 and p > rc.sla.target_s:
                        violated = True
                else:
                    p99s.append(0.0)
            return np.asarray(p99s), violated

        while records < n_samples:
            # Randomise the allocation, biased to balance violations 1:1.
            want_violation = violations_so_far < records / 2.0
            for name, generous in provisioning.items():
                if want_violation:
                    replicas = max(1, int(rng.integers(1, max(2, generous))))
                else:
                    replicas = max(
                        1, generous + int(rng.integers(-1, 2))
                    )
                app.scale(name, replicas)
            env.run(until=env.now + self.settle_s)
            w0 = env.now
            env.run(until=w0 + self.window_s)
            features = schema.observe(app, w0, env.now)
            pending.append((features, [], []))
            # Attribute this window's outcome to earlier pending samples.
            latencies, violated = window_stats(w0, env.now)
            finished = []
            for entry in pending:
                entry[1].append(latencies)
                entry[2].append(violated)
                if len(entry[1]) >= self.lookahead:
                    finished.append(entry)
            for entry in finished:
                pending.remove(entry)
                features_t, later_latencies, later_violations = entry
                violation = int(any(later_violations))
                dataset.samples.append(
                    TrainingSample(
                        features=features_t,
                        next_latency=later_latencies[0],
                        violation=violation,
                    )
                )
                violations_so_far += violation
                records += 1
                if records >= n_samples:
                    break
        dataset.collection_time_s = env.now - t_start
        return dataset
