"""Feature engineering shared by Sinan's models and scheduler.

A feature vector describes one (allocation, load, recent-latency) state:

* per service (in spec order): replica count;
* per request class (in spec order): client arrival rate (RPS);
* per request class: recent end-to-end latency (p99 over the last window,
  normalised by the class SLA target so the model sees "SLA pressure").

Targets derived from the same telemetry: the next window's per-class p99
latency (regression) and whether any class violates its SLA within the
lookahead horizon (classification -- Sinan's "later into the future"
violation predictor accounting for queueing inertia).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.topology import Application, AppSpec

__all__ = ["FeatureSchema"]


@dataclass
class FeatureSchema:
    """Feature vector layout for one application."""

    services: list[str]
    classes: list[str]

    @classmethod
    def for_spec(cls, spec: AppSpec) -> "FeatureSchema":
        return cls(
            services=[s.name for s in spec.services],
            classes=[rc.name for rc in spec.request_classes],
        )

    @property
    def dim(self) -> int:
        return len(self.services) + 2 * len(self.classes)

    def vector(
        self,
        replicas: dict[str, int],
        loads: dict[str, float],
        latency_ratio: dict[str, float],
    ) -> np.ndarray:
        """Assemble one feature vector."""
        parts = [float(replicas.get(s, 0)) for s in self.services]
        parts += [float(loads.get(c, 0.0)) for c in self.classes]
        parts += [float(latency_ratio.get(c, 0.0)) for c in self.classes]
        return np.asarray(parts)

    def observe(self, app: Application, t0: float, t1: float) -> np.ndarray:
        """Feature vector from the app's telemetry over ``[t0, t1)``."""
        replicas = {
            name: service.deployment.desired_replicas
            for name, service in app.services.items()
        }
        loads = {
            rc.name: app.hub.counter_rate(
                "client_requests_total", t0, t1, {"request": rc.name}
            )
            for rc in app.spec.request_classes
        }
        ratios = {}
        for rc in app.spec.request_classes:
            dist = app.hub.latency_distribution(
                "request_latency", t0, t1, {"request": rc.name}
            )
            if dist:
                ratios[rc.name] = (
                    dist.percentile(rc.sla.percentile) / rc.sla.target_s
                )
            else:
                ratios[rc.name] = 0.0
        return self.vector(replicas, loads, ratios)

    def with_replicas(
        self, base: np.ndarray, replicas: dict[str, int]
    ) -> np.ndarray:
        """Copy of ``base`` with the replica slots replaced (candidates)."""
        out = base.copy()
        for k, name in enumerate(self.services):
            if name in replicas:
                out[k] = float(replicas[name])
        return out

    def replicas_of(self, vector: np.ndarray) -> dict[str, int]:
        return {
            name: int(round(vector[k])) for k, name in enumerate(self.services)
        }
