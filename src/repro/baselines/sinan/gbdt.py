"""Gradient-boosted decision trees from scratch (Sinan's violation model).

Sinan pairs its CNN with a boosted-trees model predicting whether a
candidate allocation will cause an SLA violation *later in the future*
(capturing queueing inertia).  This is a standard gradient-boosting
implementation for binary classification with logistic loss: regression
trees fitted to negative gradients, with per-leaf Newton steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["GradientBoostedClassifier"]


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _RegressionTree:
    """CART regression tree on (gradient, hessian) targets."""

    def __init__(self, max_depth: int, min_samples_leaf: int, reg_lambda: float):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.root: _Node | None = None

    @staticmethod
    def _leaf_value(g: np.ndarray, h: np.ndarray, reg: float) -> float:
        return float(-g.sum() / (h.sum() + reg))

    def fit(self, x: np.ndarray, g: np.ndarray, h: np.ndarray) -> None:
        self.root = self._build(x, g, h, depth=0)

    def _build(self, x: np.ndarray, g: np.ndarray, h: np.ndarray, depth: int) -> _Node:
        node = _Node(value=self._leaf_value(g, h, self.reg_lambda))
        if depth >= self.max_depth or len(x) < 2 * self.min_samples_leaf:
            return node
        best_gain = 1e-9
        best = None
        base_score = g.sum() ** 2 / (h.sum() + self.reg_lambda)
        for feature in range(x.shape[1]):
            order = np.argsort(x[:, feature], kind="stable")
            xs = x[order, feature]
            gs = g[order]
            hs = h[order]
            g_left = np.cumsum(gs)[:-1]
            h_left = np.cumsum(hs)[:-1]
            g_right = g.sum() - g_left
            h_right = h.sum() - h_left
            # Candidate split positions: between distinct feature values,
            # honouring the min-leaf constraint.
            positions = np.arange(1, len(xs))
            valid = (
                (positions >= self.min_samples_leaf)
                & (positions <= len(xs) - self.min_samples_leaf)
                & (xs[1:] > xs[:-1])
            )
            if not valid.any():
                continue
            gains = (
                g_left**2 / (h_left + self.reg_lambda)
                + g_right**2 / (h_right + self.reg_lambda)
                - base_score
            )
            gains = np.where(valid, gains, -np.inf)
            k = int(np.argmax(gains))
            if gains[k] > best_gain:
                best_gain = float(gains[k])
                best = (feature, (xs[k] + xs[k + 1]) / 2.0)
        if best is None:
            return node
        feature, threshold = best
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], g[mask], h[mask], depth + 1)
        node.right = self._build(x[~mask], g[~mask], h[~mask], depth + 1)
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self.root
            while node is not None and not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value if node is not None else 0.0
        return out


class GradientBoostedClassifier:
    """Binary classifier: P(SLA violation | allocation, load, history)."""

    def __init__(
        self,
        n_trees: int = 80,
        max_depth: int = 5,
        learning_rate: float = 0.15,
        min_samples_leaf: int = 5,
        reg_lambda: float = 1.0,
    ) -> None:
        if n_trees < 1:
            raise ConfigurationError("need >= 1 tree")
        if not 0 < learning_rate <= 1:
            raise ConfigurationError("learning rate must be in (0, 1]")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.trees: list[_RegressionTree] = []
        self.base_score = 0.0

    def fit(self, features: np.ndarray, labels: np.ndarray) -> None:
        """Fit on binary labels (1 = violation)."""
        x = np.atleast_2d(np.asarray(features, dtype=float))
        y = np.asarray(labels, dtype=float)
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ConfigurationError("labels must be binary")
        if len(x) != len(y):
            raise ConfigurationError("features/labels length mismatch")
        positive = y.mean()
        positive = min(max(positive, 1e-4), 1 - 1e-4)
        self.base_score = float(np.log(positive / (1 - positive)))
        raw = np.full(len(y), self.base_score)
        self.trees = []
        for _ in range(self.n_trees):
            p = 1.0 / (1.0 + np.exp(-raw))
            gradient = p - y
            hessian = p * (1.0 - p)
            tree = _RegressionTree(
                self.max_depth, self.min_samples_leaf, self.reg_lambda
            )
            tree.fit(x, gradient, hessian)
            raw += self.learning_rate * tree.predict(x)
            self.trees.append(tree)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Violation probabilities for rows of ``features``."""
        x = np.atleast_2d(np.asarray(features, dtype=float))
        raw = np.full(len(x), self.base_score)
        for tree in self.trees:
            raw += self.learning_rate * tree.predict(x)
        return 1.0 / (1.0 + np.exp(-raw))

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(features) >= threshold).astype(int)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        pred = self.predict(features)
        return float((pred == np.asarray(labels)).mean())
