"""A small neural network in numpy (Sinan's latency predictor).

Sinan's short-term model is a CNN over resource/latency history; the
essential function is a learned mapping from (resource allocation, load,
recent latency) features to predicted end-to-end latency per request
class.  This module implements a multi-layer perceptron with ReLU hidden
layers trained by Adam on mean-squared error -- the same function class at
the fidelity the simulator warrants, with a deliberately generous
parameter count so that control-plane inference cost is representative
(Table VI).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["MlpRegressor"]


class MlpRegressor:
    """ReLU MLP trained with Adam on MSE.

    Features and targets are standardised internally; predictions are
    returned in the original target units.
    """

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        hidden: tuple[int, ...] = (256, 256, 128),
        seed: int = 0,
        learning_rate: float = 1e-3,
    ) -> None:
        if input_dim < 1 or output_dim < 1:
            raise ConfigurationError("input/output dims must be >= 1")
        if not hidden:
            raise ConfigurationError("need at least one hidden layer")
        self.input_dim = input_dim
        self.output_dim = output_dim
        self.learning_rate = learning_rate
        rng = np.random.default_rng(seed)
        dims = [input_dim, *hidden, output_dim]
        self.weights = [
            rng.normal(0.0, np.sqrt(2.0 / dims[i]), size=(dims[i], dims[i + 1]))
            for i in range(len(dims) - 1)
        ]
        self.biases = [np.zeros(dims[i + 1]) for i in range(len(dims) - 1)]
        # Adam state.
        self._m = [np.zeros_like(w) for w in self.weights]
        self._v = [np.zeros_like(w) for w in self.weights]
        self._mb = [np.zeros_like(b) for b in self.biases]
        self._vb = [np.zeros_like(b) for b in self.biases]
        self._t = 0
        # Standardisation parameters (fitted).
        self._x_mean = np.zeros(input_dim)
        self._x_std = np.ones(input_dim)
        self._y_mean = np.zeros(output_dim)
        self._y_std = np.ones(output_dim)
        self._fitted = False

    @property
    def num_parameters(self) -> int:
        return sum(w.size for w in self.weights) + sum(b.size for b in self.biases)

    # ------------------------------------------------------------------
    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        activations = [x]
        h = x
        for w, b in zip(self.weights[:-1], self.biases[:-1]):
            h = np.maximum(0.0, h @ w + b)
            activations.append(h)
        out = h @ self.weights[-1] + self.biases[-1]
        return out, activations

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict targets for ``features`` of shape (n, input_dim)."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        if features.shape[1] != self.input_dim:
            raise ConfigurationError(
                f"expected {self.input_dim} features, got {features.shape[1]}"
            )
        x = (features - self._x_mean) / self._x_std
        out, _ = self._forward(x)
        return out * self._y_std + self._y_mean

    # ------------------------------------------------------------------
    def fit(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        epochs: int = 60,
        batch_size: int = 64,
        seed: int = 1,
        verbose: bool = False,
    ) -> list[float]:
        """Train; returns the per-epoch training losses."""
        features = np.atleast_2d(np.asarray(features, dtype=float))
        targets = np.asarray(targets, dtype=float)
        if targets.ndim == 1:
            targets = targets[:, None]
        if len(features) != len(targets):
            raise ConfigurationError("features/targets length mismatch")
        if len(features) < 2:
            raise ConfigurationError("need >= 2 training samples")
        self._x_mean = features.mean(axis=0)
        self._x_std = np.where(features.std(axis=0) > 1e-12, features.std(axis=0), 1.0)
        self._y_mean = targets.mean(axis=0)
        self._y_std = np.where(targets.std(axis=0) > 1e-12, targets.std(axis=0), 1.0)
        x_all = (features - self._x_mean) / self._x_std
        y_all = (targets - self._y_mean) / self._y_std
        rng = np.random.default_rng(seed)
        losses = []
        n = len(x_all)
        for _epoch in range(epochs):
            order = rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                epoch_loss += self._step(x_all[idx], y_all[idx]) * len(idx)
            losses.append(epoch_loss / n)
        self._fitted = True
        return losses

    def _step(self, x: np.ndarray, y: np.ndarray) -> float:
        out, activations = self._forward(x)
        n = len(x)
        error = out - y
        loss = float(np.mean(error**2))
        # Backprop.
        grad = 2.0 * error / (n * y.shape[1])
        grads_w = []
        grads_b = []
        delta = grad
        for layer in range(len(self.weights) - 1, -1, -1):
            a_prev = activations[layer]
            grads_w.append(a_prev.T @ delta)
            grads_b.append(delta.sum(axis=0))
            if layer > 0:
                delta = (delta @ self.weights[layer].T) * (activations[layer] > 0)
        grads_w.reverse()
        grads_b.reverse()
        # Adam update.
        self._t += 1
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        lr = self.learning_rate
        for i in range(len(self.weights)):
            self._m[i] = beta1 * self._m[i] + (1 - beta1) * grads_w[i]
            self._v[i] = beta2 * self._v[i] + (1 - beta2) * grads_w[i] ** 2
            m_hat = self._m[i] / (1 - beta1**self._t)
            v_hat = self._v[i] / (1 - beta2**self._t)
            self.weights[i] -= lr * m_hat / (np.sqrt(v_hat) + eps)
            self._mb[i] = beta1 * self._mb[i] + (1 - beta1) * grads_b[i]
            self._vb[i] = beta2 * self._vb[i] + (1 - beta2) * grads_b[i] ** 2
            mb_hat = self._mb[i] / (1 - beta1**self._t)
            vb_hat = self._vb[i] / (1 - beta2**self._t)
            self.biases[i] -= lr * mb_hat / (np.sqrt(vb_hat) + eps)
        return loss
