"""Sinan's model pair: latency regressor + violation classifier."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.sinan.data_collection import SinanDataset
from repro.baselines.sinan.features import FeatureSchema
from repro.baselines.sinan.gbdt import GradientBoostedClassifier
from repro.baselines.sinan.nn import MlpRegressor
from repro.errors import ConfigurationError

__all__ = ["SinanPredictor"]


@dataclass
class SinanPredictor:
    """Trained models answering "what happens under this allocation?"."""

    schema: FeatureSchema
    latency_model: MlpRegressor
    violation_model: GradientBoostedClassifier
    #: Hold-out accuracy of the violation model (the paper reports Sinan
    #: reaching only 80-85 % with multiple request classes).
    violation_accuracy: float

    @classmethod
    def train(
        cls,
        dataset: SinanDataset,
        seed: int = 0,
        epochs: int = 40,
        holdout_fraction: float = 0.2,
    ) -> "SinanPredictor":
        if dataset.size < 20:
            raise ConfigurationError(
                f"need >= 20 samples to train Sinan, got {dataset.size}"
            )
        x, y, v = dataset.arrays()
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(x))
        split = max(1, int(len(x) * holdout_fraction))
        test_idx, train_idx = order[:split], order[split:]
        latency_model = MlpRegressor(
            input_dim=dataset.schema.dim,
            output_dim=y.shape[1],
            seed=seed,
        )
        latency_model.fit(x[train_idx], y[train_idx], epochs=epochs)
        violation_model = GradientBoostedClassifier()
        violation_model.fit(x[train_idx], v[train_idx])
        accuracy = violation_model.accuracy(x[test_idx], v[test_idx])
        return cls(
            schema=dataset.schema,
            latency_model=latency_model,
            violation_model=violation_model,
            violation_accuracy=accuracy,
        )

    def predict_latency(self, features: np.ndarray) -> np.ndarray:
        """Per-class latency predictions (clipped to be non-negative)."""
        return np.maximum(0.0, self.latency_model.predict(features))

    def predict_violation_proba(self, features: np.ndarray) -> np.ndarray:
        return self.violation_model.predict_proba(features)
