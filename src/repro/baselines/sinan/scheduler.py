"""Sinan's centralised scheduler (§VII-B).

Every control interval the scheduler assembles the current feature vector,
generates a batch of candidate allocations around the current one, runs
the *full model pair* over the batch (the CNN-equivalent latency model and
the boosted-trees violation model are on the critical path of every
decision -- the Table VI cost), and applies the cheapest candidate the
models consider safe.  When no candidate is safe it scales up the
bottleneck services.
"""

from __future__ import annotations

import time

import numpy as np

from repro.apps.topology import Application
from repro.baselines.sinan.predictor import SinanPredictor
from repro.errors import ConfigurationError

__all__ = ["SinanManager"]


class SinanManager:
    """Deploy-time manager driving an app with Sinan's models."""

    def __init__(
        self,
        app: Application,
        predictor: SinanPredictor,
        control_interval_s: float = 30.0,
        candidates: int = 256,
        safety_margin: float = 0.9,
        violation_threshold: float = 0.5,
        max_replicas: int = 64,
        seed: int = 0,
    ) -> None:
        if candidates < 8:
            raise ConfigurationError("need >= 8 candidates")
        self.app = app
        self.predictor = predictor
        self.control_interval_s = float(control_interval_s)
        self.candidates = int(candidates)
        self.safety_margin = float(safety_margin)
        self.violation_threshold = float(violation_threshold)
        self.max_replicas = int(max_replicas)
        self._rng = np.random.default_rng(seed)
        self.decisions = 0
        self._started = False
        schema = predictor.schema
        self._cpus = {
            s.name: s.cpus_per_replica for s in app.spec.services
        }
        self._sla_targets = np.asarray(
            [rc.sla.target_s for rc in app.spec.request_classes]
        )
        if schema.classes != [rc.name for rc in app.spec.request_classes]:
            raise ConfigurationError("predictor schema does not match app")

    # ------------------------------------------------------------------
    def initialize(self, replicas: dict[str, int] | int = 2) -> None:
        """Apply a starting allocation."""
        for name in self.app.services:
            count = replicas if isinstance(replicas, int) else replicas.get(name, 2)
            self.app.scale(name, count)

    def start(self) -> None:
        if self._started:
            raise ConfigurationError("manager already started")
        self._started = True
        self.app.env.process(self._loop())

    # ------------------------------------------------------------------
    def _candidate_matrix(self, base: np.ndarray) -> np.ndarray:
        """Batch of candidate feature vectors around the current state."""
        schema = self.predictor.schema
        current = schema.replicas_of(base)
        rows = [base]
        # Structured neighbours: +-1 on each service, +-1 globally.
        for name in schema.services:
            for delta in (-1, 1):
                candidate = dict(current)
                candidate[name] = int(
                    np.clip(candidate[name] + delta, 1, self.max_replicas)
                )
                rows.append(schema.with_replicas(base, candidate))
        for delta in (-1, 1):
            candidate = {
                name: int(np.clip(count + delta, 1, self.max_replicas))
                for name, count in current.items()
            }
            rows.append(schema.with_replicas(base, candidate))
        # Random neighbours fill the batch.
        while len(rows) < self.candidates:
            candidate = {
                name: int(
                    np.clip(count + self._rng.integers(-2, 3), 1, self.max_replicas)
                )
                for name, count in current.items()
            }
            rows.append(schema.with_replicas(base, candidate))
        return np.vstack(rows)

    def _allocation_cost(self, vector: np.ndarray) -> float:
        replicas = self.predictor.schema.replicas_of(vector)
        return sum(self._cpus[name] * count for name, count in replicas.items())

    def decide(self) -> dict[str, int]:
        """One full decision: candidate generation + batch inference."""
        hub = self.app.hub
        now = self.app.env.now
        t0 = max(0.0, now - hub.window_s)
        base = self.predictor.schema.observe(self.app, t0, now)
        batch = self._candidate_matrix(base)
        latencies = self.predictor.predict_latency(batch)
        violation_p = self.predictor.predict_violation_proba(batch)
        safe = (
            (latencies <= self._sla_targets * self.safety_margin).all(axis=1)
            & (violation_p < self.violation_threshold)
        )
        if safe.any():
            costs = np.asarray(
                [self._allocation_cost(row) for row in batch]
            )
            costs = np.where(safe, costs, np.inf)
            chosen = batch[int(np.argmin(costs))]
        else:
            # No safe candidate: pick the one with the lowest predicted
            # SLA pressure (scale-up fallback).
            pressure = (latencies / self._sla_targets).max(axis=1)
            chosen = batch[int(np.argmin(pressure))]
        return self.predictor.schema.replicas_of(chosen)

    def time_decision(self, repeats: int = 10) -> float:
        """Mean wall-clock seconds per decision (Table VI)."""
        # Table VI probe: real compute cost of a decision, not simulated time.
        start = time.perf_counter()  # ursalint: disable=SIM001 -- Table VI probe
        for _ in range(repeats):
            self.decide()
        # ursalint: disable=SIM001 -- Table VI probe
        return (time.perf_counter() - start) / repeats

    def step(self) -> None:
        target = self.decide()
        for name, count in target.items():
            if self.app.services[name].deployment.desired_replicas != count:
                self.app.scale(name, count)
        self.decisions += 1

    def _loop(self):
        env = self.app.env
        yield env.timeout(self.app.hub.window_s)
        while True:
            self.step()
            yield env.timeout(self.control_interval_s)
