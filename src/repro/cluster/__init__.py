"""Kubernetes-like cluster substrate: nodes, pods, deployments, scheduler."""

from repro.cluster.cluster import Cluster
from repro.cluster.deployment import Deployment, Pod, PodState
from repro.cluster.node import Node, default_testbed_nodes
from repro.cluster.scheduler import Scheduler

__all__ = [
    "Cluster",
    "Deployment",
    "Node",
    "Pod",
    "PodState",
    "Scheduler",
    "default_testbed_nodes",
]
