"""The cluster facade: the "Kubernetes API" resource managers talk to.

Holds nodes, the scheduler and all deployments, and exposes the operations
Ursa and the baselines use:

* ``create_deployment(...)`` -- register a microservice's replica set;
* ``scale(service, n)`` -- set replica counts;
* ``allocated_cpus()`` / ``replicas()`` -- observability for accounting.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.deployment import Deployment, Pod
from repro.cluster.node import Node, default_testbed_nodes
from repro.cluster.scheduler import Scheduler
from repro.errors import SchedulingError
from repro.sim.engine import Environment

__all__ = ["Cluster"]


class Cluster:
    """A simulated cluster with named deployments."""

    def __init__(
        self,
        env: Environment,
        nodes: list[Node] | None = None,
        cap_on_full: bool = False,
    ) -> None:
        self.env = env
        self.nodes = nodes if nodes is not None else default_testbed_nodes()
        self.scheduler = Scheduler(self.nodes)
        #: When True, deployments cap scale-ups at cluster capacity
        #: instead of raising SchedulingError (budgeted fleet cells).
        self.cap_on_full = bool(cap_on_full)
        self._deployments: dict[str, Deployment] = {}

    def create_deployment(
        self,
        name: str,
        cpus_per_replica: int,
        memory_per_replica_gb: float = 1.0,
        replicas: int = 1,
        startup_delay_s: float = 5.0,
        on_pod_running: Callable[[Pod], None] | None = None,
        on_pod_stopping: Callable[[Pod], None] | None = None,
    ) -> Deployment:
        """Register a new deployment and start its initial replicas."""
        if name in self._deployments:
            raise SchedulingError(f"deployment {name!r} already exists")
        deployment = Deployment(
            env=self.env,
            scheduler=self.scheduler,
            name=name,
            cpus_per_replica=cpus_per_replica,
            memory_per_replica_gb=memory_per_replica_gb,
            startup_delay_s=startup_delay_s,
            on_pod_running=on_pod_running,
            on_pod_stopping=on_pod_stopping,
            cap_on_full=self.cap_on_full,
        )
        self._deployments[name] = deployment
        if replicas:
            deployment.scale_to(replicas)
        return deployment

    def deployment(self, name: str) -> Deployment:
        try:
            return self._deployments[name]
        except KeyError:
            raise SchedulingError(f"unknown deployment {name!r}") from None

    def deployments(self) -> list[Deployment]:
        return list(self._deployments.values())

    def scale(self, name: str, replicas: int) -> None:
        """Set the replica count of deployment ``name``."""
        self.deployment(name).scale_to(replicas)

    def replicas(self, name: str) -> int:
        return self.deployment(name).replicas

    def allocated_cpus(self, name: str | None = None) -> int:
        """CPUs reserved by one deployment, or by all of them."""
        if name is not None:
            return self.deployment(name).allocated_cpus
        return sum(d.allocated_cpus for d in self._deployments.values())

    def capped_scale_ups(self) -> int:
        """Scale-up pods refused at capacity (capped clusters only)."""
        return sum(d.capped_scale_ups for d in self._deployments.values())

    def total_cpus(self) -> int:
        return self.scheduler.total_cpus()

    def free_cpus(self) -> int:
        return self.scheduler.free_cpus()
