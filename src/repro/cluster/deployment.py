"""Deployments and pods: the replica-scaling API Ursa drives.

A :class:`Deployment` owns the pods of one microservice.  Scaling up places
new pods via the scheduler; each pod becomes *running* after a configurable
startup delay (container pull + boot).  Scaling down stops the youngest
pods first: a stopping pod is announced to the service layer (which drains
in-flight work), and its node resources are freed once the drain completes.

This is the only interface resource managers get -- exactly the Kubernetes
replica-count API the paper's systems use.
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.cluster.node import Node
from repro.cluster.scheduler import Scheduler
from repro.errors import SchedulingError
from repro.sim.engine import Environment, Event

__all__ = ["Pod", "PodState", "Deployment"]


class PodState(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    STOPPING = "stopping"
    STOPPED = "stopped"


class Pod:
    """One replica instance of a deployment."""

    def __init__(
        self, name: str, cpus: int, memory_gb: float, node: Node, env: Environment
    ) -> None:
        self.name = name
        self.cpus = cpus
        self.memory_gb = memory_gb
        self.node = node
        self.state = PodState.PENDING
        #: Fired by the service layer when in-flight work has drained.
        self.drained: Event = env.event()
        #: Set when a pending pod is cancelled before becoming running.
        self.cancelled = False

    def __repr__(self) -> str:
        return f"<Pod {self.name} {self.state.value} on {self.node.name}>"


class Deployment:
    """Replica set for one microservice.

    ``on_pod_running`` / ``on_pod_stopping`` connect the cluster substrate
    to the service layer: the former attaches a request-serving replica to
    the pod, the latter stops dispatch and triggers ``pod.drained`` when
    in-flight requests finish.
    """

    def __init__(
        self,
        env: Environment,
        scheduler: Scheduler,
        name: str,
        cpus_per_replica: int,
        memory_per_replica_gb: float,
        startup_delay_s: float = 5.0,
        on_pod_running: Callable[[Pod], None] | None = None,
        on_pod_stopping: Callable[[Pod], None] | None = None,
        cap_on_full: bool = False,
    ) -> None:
        if cpus_per_replica < 1:
            raise SchedulingError(
                f"{name}: cpus_per_replica must be >= 1 (static CPU policy), "
                f"got {cpus_per_replica}"
            )
        if startup_delay_s < 0:
            raise SchedulingError(f"{name}: negative startup delay")
        self.env = env
        self.scheduler = scheduler
        self.name = name
        self.cpus_per_replica = int(cpus_per_replica)
        self.memory_per_replica_gb = float(memory_per_replica_gb)
        self.startup_delay_s = float(startup_delay_s)
        self.on_pod_running = on_pod_running
        self.on_pod_stopping = on_pod_stopping
        #: When the cluster is full, stop scaling up instead of raising
        #: (budgeted fleet cells degrade to queueing, not a crash).
        self.cap_on_full = bool(cap_on_full)
        #: Pods a capped scale-up could not place (observability only).
        self.capped_scale_ups = 0
        self._pods: list[Pod] = []
        self._pod_seq = 0
        self.desired_replicas = 0

    # -- views --------------------------------------------------------------
    @property
    def pods(self) -> list[Pod]:
        """Pods that still hold resources (pending, running or stopping)."""
        return [p for p in self._pods if p.state != PodState.STOPPED]

    @property
    def running_pods(self) -> list[Pod]:
        return [p for p in self._pods if p.state == PodState.RUNNING]

    @property
    def replicas(self) -> int:
        """Number of running replicas."""
        return len(self.running_pods)

    @property
    def allocated_cpus(self) -> int:
        """CPUs currently reserved on nodes by this deployment."""
        return sum(p.cpus for p in self.pods)

    # -- scaling --------------------------------------------------------------
    def scale_to(self, replicas: int) -> None:
        """Set the desired replica count (the Kubernetes ``scale`` verb)."""
        if replicas < 0:
            raise SchedulingError(f"{self.name}: negative replica count")
        self.desired_replicas = int(replicas)
        current = [p for p in self._pods if p.state in (PodState.PENDING, PodState.RUNNING)]
        delta = self.desired_replicas - len(current)
        if delta > 0:
            for _ in range(delta):
                if not self._start_pod():
                    break
        elif delta < 0:
            # Stop youngest first; prefer cancelling pods still pending.
            victims = sorted(
                current, key=lambda p: (p.state != PodState.PENDING, -self._pods.index(p))
            )[: -delta]
            for pod in victims:
                self._stop_pod(pod)

    def scale_by(self, delta: int) -> None:
        """Adjust desired replicas by ``delta`` (floored at zero)."""
        self.scale_to(max(0, self.desired_replicas + delta))

    def _start_pod(self) -> bool:
        """Place one pod; returns False when a capped cluster is full."""
        if self.cap_on_full:
            node = self.scheduler.try_place(
                self.cpus_per_replica, self.memory_per_replica_gb
            )
            if node is None:
                self.capped_scale_ups += 1
                return False
        else:
            node = self.scheduler.place(
                self.cpus_per_replica, self.memory_per_replica_gb
            )
        self._pod_seq += 1
        pod = Pod(
            name=f"{self.name}-{self._pod_seq}",
            cpus=self.cpus_per_replica,
            memory_gb=self.memory_per_replica_gb,
            node=node,
            env=self.env,
        )
        self._pods.append(pod)
        self.env.process(self._startup(pod))
        return True

    def _startup(self, pod: Pod):
        if self.startup_delay_s > 0:
            yield self.env.timeout(self.startup_delay_s)
        if pod.cancelled:
            return
        pod.state = PodState.RUNNING
        if self.on_pod_running is not None:
            self.on_pod_running(pod)

    def _stop_pod(self, pod: Pod) -> None:
        if pod.state == PodState.PENDING:
            # Never became running: cancel and free immediately.
            pod.cancelled = True
            pod.state = PodState.STOPPED
            pod.node.free(pod.cpus, pod.memory_gb)
            return
        pod.state = PodState.STOPPING
        if self.on_pod_stopping is not None:
            self.on_pod_stopping(pod)
        else:
            pod.drained.succeed()
        self.env.process(self._await_drain(pod))

    def _await_drain(self, pod: Pod):
        if not pod.drained.triggered:
            yield pod.drained
        else:
            yield self.env.timeout(0)
        pod.state = PodState.STOPPED
        pod.node.free(pod.cpus, pod.memory_gb)
