"""Cluster nodes (machines) with CPU and memory capacity.

Models the paper's testbed: 8 machines with 40-88 CPUs and 126-188 GB of
memory each.  Under Kubernetes's *static* CPU-management policy a container
with an integer CPU request gets exclusive cores, so allocation here is
whole-core and exclusive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError

__all__ = ["Node", "default_testbed_nodes"]


@dataclass
class Node:
    """One machine: whole-core CPU and memory accounting."""

    name: str
    cpus: int
    memory_gb: float

    _cpus_used: int = field(default=0, repr=False)
    _memory_used: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.cpus < 1:
            raise ValueError(f"node needs >= 1 CPU, got {self.cpus}")
        if self.memory_gb <= 0:
            raise ValueError(f"node needs > 0 memory, got {self.memory_gb}")

    @property
    def cpus_free(self) -> int:
        return self.cpus - self._cpus_used

    @property
    def memory_free_gb(self) -> float:
        return self.memory_gb - self._memory_used

    def fits(self, cpus: int, memory_gb: float) -> bool:
        """Can this node host a pod with the given resources?"""
        return cpus <= self.cpus_free and memory_gb <= self.memory_free_gb + 1e-9

    def allocate(self, cpus: int, memory_gb: float) -> None:
        """Reserve resources for a pod (exclusive cores, static policy)."""
        if cpus < 1:
            raise SchedulingError(f"pods need >= 1 CPU, got {cpus}")
        if not self.fits(cpus, memory_gb):
            raise SchedulingError(
                f"node {self.name} cannot fit {cpus} CPUs / {memory_gb} GB "
                f"(free: {self.cpus_free} CPUs / {self.memory_free_gb:.1f} GB)"
            )
        self._cpus_used += cpus
        self._memory_used += memory_gb

    def free(self, cpus: int, memory_gb: float) -> None:
        """Return resources previously allocated."""
        if cpus > self._cpus_used or memory_gb > self._memory_used + 1e-9:
            raise SchedulingError(
                f"node {self.name}: freeing more than allocated "
                f"({cpus} CPUs / {memory_gb} GB)"
            )
        self._cpus_used -= cpus
        self._memory_used = max(0.0, self._memory_used - memory_gb)


def default_testbed_nodes() -> list[Node]:
    """The paper's 8-machine local cluster (§VII-A).

    Machines have 40-88 CPUs and 126-188 GB; we spread the range evenly.
    """
    specs = [
        (88, 188.0),
        (80, 188.0),
        (72, 160.0),
        (64, 160.0),
        (56, 126.0),
        (48, 126.0),
        (40, 126.0),
        (40, 126.0),
    ]
    return [
        Node(name=f"node-{i}", cpus=cpus, memory_gb=mem)
        for i, (cpus, mem) in enumerate(specs)
    ]
