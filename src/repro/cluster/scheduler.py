"""Pod placement: first-fit-decreasing bin packing over nodes.

A deliberately simple stand-in for the Kubernetes scheduler: pods are
placed on the node with the most free CPUs that fits them (worst-fit by
CPU, which balances load across machines and reduces CPU contention --
consistent with the paper's interference-avoidance setup).
"""

from __future__ import annotations

from repro.cluster.node import Node
from repro.errors import SchedulingError

__all__ = ["Scheduler"]


class Scheduler:
    """Places pods on nodes; raises :class:`SchedulingError` when full."""

    def __init__(self, nodes: list[Node]) -> None:
        if not nodes:
            raise SchedulingError("scheduler needs at least one node")
        names = [node.name for node in nodes]
        if len(set(names)) != len(names):
            raise SchedulingError(f"duplicate node names: {names}")
        self.nodes = list(nodes)

    def place(self, cpus: int, memory_gb: float) -> Node:
        """Choose a node for a pod and allocate its resources."""
        chosen = self.try_place(cpus, memory_gb)
        if chosen is None:
            total_free = sum(node.cpus_free for node in self.nodes)
            raise SchedulingError(
                f"no node fits {cpus} CPUs / {memory_gb} GB "
                f"({total_free} CPUs free cluster-wide)"
            )
        return chosen

    def try_place(self, cpus: int, memory_gb: float) -> Node | None:
        """Like :meth:`place` but returns ``None`` when no node fits.

        The capacity-capped scaling path (budgeted fleet cells) uses this
        to treat a full cluster as back-off instead of an error.
        """
        candidates = [node for node in self.nodes if node.fits(cpus, memory_gb)]
        if not candidates:
            return None
        # Worst-fit by free CPUs; node name breaks ties deterministically.
        chosen = max(candidates, key=lambda node: (node.cpus_free, node.name))
        chosen.allocate(cpus, memory_gb)
        return chosen

    def total_cpus(self) -> int:
        return sum(node.cpus for node in self.nodes)

    def free_cpus(self) -> int:
        return sum(node.cpus_free for node in self.nodes)
