"""Ursa core: the paper's primary contribution.

* :mod:`repro.core.theorem` -- Theorem 1 percentile decomposition.
* :mod:`repro.core.backpressure` -- backpressure-free threshold profiling.
* :mod:`repro.core.exploration` -- Algorithm 1 LPR exploration.
* :mod:`repro.core.optimizer` -- the MIP-based optimisation engine.
* :mod:`repro.core.overestimation` -- bound-to-estimate calibration.
* :mod:`repro.core.resource_controller` -- threshold scaling (fast path).
* :mod:`repro.core.anomaly` -- load/latency anomaly triggers.
* :mod:`repro.core.manager` -- the :class:`UrsaManager` facade.
"""

from repro.core.anomaly import AnomalyDetector, AnomalyEvent, request_ratio_deviation
from repro.core.backpressure import (
    BackpressureProfile,
    BackpressureProfiler,
    ProfilePoint,
)
from repro.core.exploration import (
    ExplorationController,
    ExplorationResult,
    LprOption,
    ServiceProfile,
    load_exploration,
    provisioning_for,
    save_exploration,
)
from repro.core.manager import UrsaManager
from repro.core.optimizer import (
    OptimizationEngine,
    OptimizationOutcome,
    ScalingThreshold,
)
from repro.core.overestimation import OverestimationTracker
from repro.core.resource_controller import ResourceController, ScalingDecision
from repro.core.theorem import (
    empirical_bound_holds,
    latency_upper_bound,
    residuals_fit,
    split_residual_evenly,
)

__all__ = [
    "AnomalyDetector",
    "AnomalyEvent",
    "BackpressureProfile",
    "BackpressureProfiler",
    "ExplorationController",
    "ExplorationResult",
    "LprOption",
    "OptimizationEngine",
    "OptimizationOutcome",
    "OverestimationTracker",
    "ProfilePoint",
    "ResourceController",
    "ScalingDecision",
    "ScalingThreshold",
    "ServiceProfile",
    "UrsaManager",
    "empirical_bound_holds",
    "latency_upper_bound",
    "load_exploration",
    "provisioning_for",
    "save_exploration",
    "request_ratio_deviation",
    "residuals_fit",
    "split_residual_evenly",
]
