"""The anomaly detector (§V item 5): load- and latency-anomaly triggers.

Two anomaly kinds drive two escalation levels:

* **Load anomalies** -- the request-class mix drifts from the one the
  thresholds were computed for, measured by the *request ratio deviation*:
  with per-class service loads ``L_j`` and per-replica thresholds ``t_j``,
  replica counts are driven by ``max_j L_j / t_j``; when that maximum
  diverges from the average utilisation ratio the provisioning is skewed
  and resources are wasted.  Crossing the user threshold asks the
  optimisation engine to *recalculate* thresholds from existing
  exploration data.
* **Latency anomalies** -- the end-to-end SLA violation rate over the last
  evaluation window exceeds its threshold, meaning the recorded latency
  distributions no longer describe the service: the detector requests
  *re-exploration* of the offending services.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.apps.topology import Application
from repro.core.optimizer import ScalingThreshold
from repro.errors import ConfigurationError

__all__ = ["AnomalyDetector", "AnomalyEvent", "request_ratio_deviation"]


def request_ratio_deviation(
    loads: Mapping[str, float], thresholds: Mapping[str, float]
) -> float:
    """Imbalance of per-class utilisation ratios at one service.

    Returns ``max_j (L_j / t_j) / mean_j (L_j / t_j) - 1``: zero when all
    classes load the service proportionally to their thresholds (the mix
    matches exploration), growing as one class dominates.
    """
    ratios = []
    for class_name, load in loads.items():
        threshold = thresholds.get(class_name, 0.0)
        if threshold > 0 and load >= 0:
            ratios.append(load / threshold)
    positive = [r for r in ratios if r > 0]
    if not positive:
        return 0.0
    mean = sum(positive) / len(positive)
    if mean <= 0:
        return 0.0
    return max(positive) / mean - 1.0


@dataclass
class AnomalyEvent:
    time: float
    kind: str  # "load" | "latency"
    detail: str


class AnomalyDetector:
    """Periodic anomaly checks over the tracing framework's metrics."""

    def __init__(
        self,
        app: Application,
        thresholds: Mapping[str, ScalingThreshold],
        on_recalculate: Callable[[], None] | None = None,
        on_reexplore: Callable[[list[str]], None] | None = None,
        check_interval_s: float = 60.0,
        ratio_deviation_threshold: float = 1.0,
        sla_violation_threshold: float = 0.10,
    ) -> None:
        if check_interval_s <= 0:
            raise ConfigurationError("check interval must be > 0")
        if ratio_deviation_threshold <= 0:
            raise ConfigurationError("deviation threshold must be > 0")
        if not 0 < sla_violation_threshold <= 1:
            raise ConfigurationError("SLA violation threshold must be in (0, 1]")
        self.app = app
        self.thresholds = dict(thresholds)
        self.on_recalculate = on_recalculate
        self.on_reexplore = on_reexplore
        self.check_interval_s = float(check_interval_s)
        self.ratio_deviation_threshold = float(ratio_deviation_threshold)
        self.sla_violation_threshold = float(sla_violation_threshold)
        self.events: list[AnomalyEvent] = []
        self._started = False

    def set_thresholds(self, thresholds: Mapping[str, ScalingThreshold]) -> None:
        self.thresholds = dict(thresholds)

    def start(self) -> None:
        if self._started:
            raise ConfigurationError("detector already started")
        self._started = True
        self.app.env.process(self._loop())

    # ------------------------------------------------------------------
    def check_load_anomaly(self, t0: float, t1: float) -> list[str]:
        """Services whose request-ratio deviation crossed the threshold."""
        skewed = []
        for service, threshold in self.thresholds.items():
            loads = {}
            for class_name in threshold.lpr:
                loads[class_name] = self.app.hub.counter_rate(
                    "requests_total",
                    t0,
                    t1,
                    {"service": service, "request": class_name},
                )
            deviation = request_ratio_deviation(loads, threshold.lpr)
            if deviation > self.ratio_deviation_threshold:
                skewed.append(service)
        return skewed

    def check_latency_anomaly(self, t0: float, t1: float) -> float:
        """Windowed SLA violation rate over ``[t0, t1)``."""
        return self.app.windowed_violation_rate(t0, t1, window_s=t1 - t0)

    def step(self) -> None:
        now = self.app.env.now
        t0 = max(0.0, now - self.check_interval_s)
        if t0 >= now:
            return
        skewed = self.check_load_anomaly(t0, now)
        if skewed:
            self.events.append(
                AnomalyEvent(now, "load", f"request-ratio deviation at {skewed}")
            )
            if self.on_recalculate is not None:
                self.on_recalculate()
        violation_rate = self.check_latency_anomaly(t0, now)
        if violation_rate > self.sla_violation_threshold:
            self.events.append(
                AnomalyEvent(
                    now, "latency", f"SLA violation rate {violation_rate:.3f}"
                )
            )
            if self.on_reexplore is not None:
                self.on_reexplore(sorted(self.thresholds))

    def _loop(self):
        env = self.app.env
        while True:
            yield env.timeout(self.check_interval_s)
            self.step()
