"""Backpressure-free CPU-utilisation threshold profiling (§III, Figs. 3-4).

The profiling engine wraps one tested service in the 3-tier harness of
Fig. 3 (client -> proxy -> tested service, nested RPC).  It ramps the
tested service's CPU limit upward while replaying a fixed workload; at
each limit it records the proxy's p99 latency (one sample per measurement
window) and the tested service's CPU utilisation.  The proxy latency has
*converged* when Welch's t-test can no longer distinguish the samples
under the last two CPU limits; the tested service's utilisation just
before convergence is its **backpressure-free threshold**: operating below
it, the service cannot inflate its parent's latency.

Operating every service below its threshold is what lets Ursa treat
services as independent (O(N) instead of O(N^2) modelling factors).
"""

from __future__ import annotations

import zlib

from dataclasses import dataclass, field
from typing import Callable

from repro.apps.profiling_harness import PROFILE_CLASS, build_profiling_harness
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.errors import ExplorationError
from repro.services.spec import ServiceSpec
from repro.sim.engine import Environment, Event
from repro.sim.random import Distribution, Mixture, RandomStreams
from repro.stats.ttest import means_differ
from repro.telemetry.metrics import MetricsHub
from repro.workload.generator import LoadGenerator
from repro.workload.mixes import RequestMix
from repro.workload.patterns import ConstantLoad

__all__ = ["BackpressureProfiler", "BackpressureProfile", "ProfilePoint"]


@dataclass(frozen=True)
class ProfilePoint:
    """One CPU-limit step of the profiling curve (one Fig. 4 x-position)."""

    cpu_limit: int
    proxy_p99_samples: tuple[float, ...]
    tested_p99: float
    utilization: float

    @property
    def proxy_p99_mean(self) -> float:
        return sum(self.proxy_p99_samples) / len(self.proxy_p99_samples)

    @property
    def proxy_p99_std(self) -> float:
        mean = self.proxy_p99_mean
        n = len(self.proxy_p99_samples)
        if n < 2:
            return 0.0
        return (sum((x - mean) ** 2 for x in self.proxy_p99_samples) / (n - 1)) ** 0.5


@dataclass
class BackpressureProfile:
    """Result of profiling one service."""

    service: str
    #: CPU utilisation just before proxy-latency convergence (§III).
    threshold_utilization: float
    #: The CPU limit at which the proxy latency converged.
    converged_cpu_limit: int
    points: list[ProfilePoint] = field(default_factory=list)


class BackpressureProfiler:
    """Runs the Fig. 3 profiling procedure for individual services."""

    def __init__(
        self,
        streams: RandomStreams,
        window_s: float = 10.0,
        samples_per_limit: int = 8,
        alpha: float = 0.05,
        saturation_cpus: float = 2.2,
        equivalence_rel_tol: float = 0.15,
        equivalence_abs_tol_s: float = 0.005,
    ) -> None:
        if samples_per_limit < 2:
            raise ExplorationError("need >= 2 samples per CPU limit for the t-test")
        self.streams = streams
        self.window_s = float(window_s)
        self.samples_per_limit = int(samples_per_limit)
        self.alpha = float(alpha)
        #: The workload is sized to keep this many cores busy, so the ramp
        #: always traverses saturation (low limits) into comfort (high
        #: limits) regardless of the CPU-limit range.
        self.saturation_cpus = float(saturation_cpus)
        self.equivalence_rel_tol = float(equivalence_rel_tol)
        #: Absolute noise floor: differences below this are measurement
        #: noise on real systems (the paper's t-test operates on jittery
        #: hardware measurements; the simulator is cleaner).
        self.equivalence_abs_tol_s = float(equivalence_abs_tol_s)

    def profile_spec(
        self,
        spec: ServiceSpec,
        mix: RequestMix | None = None,
        max_cpu_limit: int | None = None,
        trace: Callable[[float, int, int, Event], None] | None = None,
    ) -> BackpressureProfile:
        """Profile a service spec, synthesising its aggregate workload.

        ``mix`` weights the service's handler distributions into the
        aggregate request stream (fan-in of multiple upstreams); without a
        mix the handlers are weighted equally.  ``trace`` is installed on
        every measurement environment (see :meth:`profile`).
        """
        if not spec.handlers:
            raise ExplorationError(f"service {spec.name!r} has no handlers")
        components = []
        for class_name, dist in spec.handlers.items():
            weight = mix.fraction(class_name) if mix is not None else 1.0
            if weight > 0:
                components.append((weight, dist))
        if not components:
            raise ExplorationError(
                f"service {spec.name!r}: request mix gives it zero load"
            )
        work = Mixture(components)
        top = max_cpu_limit if max_cpu_limit is not None else max(
            6, spec.cpus_per_replica * 2
        )
        return self.profile(spec.name, work, max_cpu_limit=top, trace=trace)

    def _measure_at_limit(
        self,
        service_name: str,
        work: Distribution,
        cpu_limit: int,
        rps: float,
        trace: Callable[[float, int, int, Event], None] | None = None,
    ) -> ProfilePoint:
        """One CPU-limit step on a fresh harness (no backlog carry-over)."""
        env = Environment(trace=trace)
        cluster = Cluster(
            env, nodes=[Node("prof-0", 64, 256), Node("prof-1", 64, 256)]
        )
        salt = (zlib.crc32(service_name.encode()) + cpu_limit * 7919) % 2**31
        hub = MetricsHub(lambda: env.now, window_s=self.window_s, strict=True)
        app = build_profiling_harness(
            env=env,
            cluster=cluster,
            streams=self.streams.fork(salt),
            tested_name=service_name,
            tested_work=work,
            tested_cpus=cpu_limit,
            hub=hub,
        )
        env.run(until=20)  # replicas up
        tested = app.services[service_name]
        generator = LoadGenerator(
            app,
            pattern=ConstantLoad(rps),
            mix=RequestMix({PROFILE_CLASS: 1.0}),
            streams=self.streams.fork(salt + 1),
        )
        generator.start()
        env.run(until=env.now + self.window_s)  # settle
        proxy_samples = []
        t_measure_start = env.now
        busy_before = sum(r.busy_time for r in tested._replicas.values())
        for _ in range(self.samples_per_limit):
            t0 = env.now
            env.run(until=t0 + self.window_s)
            proxy_samples.append(
                app.hub.latency_percentile(
                    "service_latency",
                    99.0,
                    t0,
                    env.now,
                    {"service": "proxy", "request": PROFILE_CLASS},
                    default=0.0,
                )
            )
        busy_after = sum(r.busy_time for r in tested._replicas.values())
        elapsed = env.now - t_measure_start
        utilization = min(1.0, (busy_after - busy_before) / (cpu_limit * elapsed))
        tested_p99 = app.hub.latency_percentile(
            "service_latency",
            99.0,
            t_measure_start,
            env.now,
            {"service": service_name, "request": PROFILE_CLASS},
            default=0.0,
        )
        return ProfilePoint(
            cpu_limit=cpu_limit,
            proxy_p99_samples=tuple(proxy_samples),
            tested_p99=tested_p99,
            utilization=utilization,
        )

    def profile(
        self,
        service_name: str,
        work: Distribution,
        max_cpu_limit: int = 8,
        trace: Callable[[float, int, int, Event], None] | None = None,
    ) -> BackpressureProfile:
        """Ramp the CPU limit 1..max and find the convergence threshold.

        Convergence requires both (a) Welch's t-test failing to distinguish
        the proxy-latency samples of the last two limits and (b) the tested
        service no longer running saturated -- two fully-saturated steps
        have statistically similar (exploding) latencies but say nothing
        about backpressure-free operation.

        ``trace`` is an engine event-trace hook (see
        :mod:`repro.sim.trace`) installed on every per-limit measurement
        environment, so one hook accumulates the whole profiling ramp --
        e.g. a single :class:`~repro.sim.trace.RunDigest` fingerprints the
        full Fig. 4 curve for a service.
        """
        if max_cpu_limit < 2:
            raise ExplorationError("need >= 2 CPU limits to detect convergence")
        # Size the load to keep ~saturation_cpus cores of work in the
        # system: low CPU limits run saturated, high limits comfortable.
        rps = self.saturation_cpus / work.mean
        points: list[ProfilePoint] = []
        converged_at: int | None = None
        for cpu_limit in range(1, max_cpu_limit + 1):
            points.append(
                self._measure_at_limit(
                    service_name, work, cpu_limit, rps, trace=trace
                )
            )
            if len(points) >= 2:
                previous, current = points[-2], points[-1]
                # Both points must be past saturation: two saturated steps
                # have similar (exploding) latencies but say nothing about
                # backpressure-free operation, and the threshold is read
                # from the *previous* point.
                saturated = (
                    current.utilization > 0.95 or previous.utilization > 0.98
                )
                distinct = means_differ(
                    list(previous.proxy_p99_samples),
                    list(current.proxy_p99_samples),
                    alpha=self.alpha,
                )
                # Practical-equivalence band: simulated samples are far less
                # noisy than the paper's real measurements, so a tiny (but
                # statistically significant) difference still counts as
                # converged.
                means_close = abs(
                    previous.proxy_p99_mean - current.proxy_p99_mean
                ) <= max(
                    self.equivalence_rel_tol * current.proxy_p99_mean,
                    self.equivalence_abs_tol_s,
                )
                if not saturated and (not distinct or means_close):
                    converged_at = cpu_limit
                    break
        if converged_at is None:
            raise ExplorationError(
                f"proxy latency never converged for {service_name!r} "
                f"(max CPU limit {max_cpu_limit} too low?)"
            )
        # Utilisation just before convergence is the threshold.
        threshold = points[-2].utilization
        return BackpressureProfile(
            service=service_name,
            threshold_utilization=threshold,
            converged_cpu_limit=converged_at,
            points=points,
        )
