"""Allocation-space exploration: Algorithm 1 of the paper.

Each microservice is explored *individually* on a fresh deployment of its
application: every other service is provisioned generously, and the
profiled service's replica count is reduced step by step.  At each step
the controller collects a fixed number of one-window samples (the paper
samples once per minute) recording

* the per-replica load of each request class at the service (the LPR
  vector candidate),
* the service's per-class latency percentile rows (a row of ``D_i^j``),
* the service's CPU utilisation, and
* the end-to-end SLA-violation frequency of the application.

Exploration stops -- *without* recording the current step -- as soon as
the SLA-violation frequency reaches ``F_sla`` or the utilisation crosses
the service's backpressure-free threshold, preserving the independence
assumption of the performance model.  Because services are explored
independently, the wall-clock exploration time of an application is the
*maximum* over its services, while the sample budget is the sum
(Table V's accounting).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.apps.topology import Application, AppSpec
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.errors import ExplorationError
from repro.sim.engine import Environment, Event
from repro.sim.random import RandomStreams
from repro.telemetry.metrics import MetricsHub
from repro.stats.distributions import DEFAULT_PERCENTILE_GRID
from repro.workload.generator import LoadGenerator
from repro.workload.mixes import RequestMix
from repro.workload.patterns import ConstantLoad

__all__ = [
    "LprOption",
    "ServiceProfile",
    "ExplorationResult",
    "ExplorationController",
    "provisioning_for",
    "save_exploration",
    "load_exploration",
]


@dataclass
class LprOption:
    """One recorded load-per-replica threshold candidate."""

    replicas: int
    #: class -> mean service-level load per replica (requests/second).
    lpr: dict[str, float]
    #: class -> per-window per-replica load samples (for the t-test scaler).
    load_samples: dict[str, list[float]]
    #: class -> latency percentiles on the grid (per access).
    latency_rows: dict[str, list[float]]
    utilization: float

    def max_lpr(self) -> float:
        return max(self.lpr.values()) if self.lpr else 0.0


@dataclass
class ServiceProfile:
    """Exploration output for one service (the map of Algorithm 1)."""

    service: str
    cpus_per_replica: int
    #: Options in exploration order: descending replicas = ascending LPR.
    options: list[LprOption]
    samples_collected: int
    profiling_time_s: float
    terminated_by: str  # "sla" | "backpressure" | "min_replicas"

    def __post_init__(self) -> None:
        if not self.options:
            raise ExplorationError(
                f"exploration of {self.service!r} recorded no feasible LPR "
                f"option (initial provisioning already violates its SLA?)"
            )


@dataclass
class ExplorationResult:
    """Exploration output for a whole application."""

    app_name: str
    profiles: dict[str, ServiceProfile]
    #: Hex checksum of the engine event trace covering every exploration
    #: environment (set by callers that pass ``trace=`` a
    #: :class:`~repro.sim.trace.RunDigest`); ``None`` for untraced runs
    #: and results saved before tracing existed.
    trace_digest: str | None = None
    #: Sum of samples over all services (Table V "Samples").
    total_samples: int = field(init=False)
    #: Max profiling time over services -- they are explored independently
    #: and can run in parallel (Table V "Time").
    exploration_time_s: float = field(init=False)

    def __post_init__(self) -> None:
        self.total_samples = sum(p.samples_collected for p in self.profiles.values())
        self.exploration_time_s = max(
            (p.profiling_time_s for p in self.profiles.values()), default=0.0
        )


def provisioning_for(
    spec: AppSpec,
    mix: RequestMix,
    rps: float,
    target_utilization: float = 0.35,
    headroom_replicas: int = 1,
) -> dict[str, int]:
    """Generous replica counts: enough to keep every service comfortable.

    Uses handler means and per-class access counts to estimate each
    service's CPU demand at ``rps``, then provisions for
    ``target_utilization``.
    """
    if rps <= 0:
        raise ExplorationError(f"rps must be > 0, got {rps}")
    access: dict[str, dict[str, float]] = {}
    for rc in spec.request_classes:
        for service, count in rc.access_counts().items():
            access.setdefault(service, {})[rc.name] = float(count)
    replicas: dict[str, int] = {}
    for service in spec.services:
        demand = 0.0
        for class_name, count in access.get(service.name, {}).items():
            work = service.handlers.get(class_name)
            if work is None:
                continue
            demand += rps * mix.fraction(class_name) * count * work.mean
        cores = service.cpus_per_replica
        needed = demand / (cores * target_utilization) if demand > 0 else 0.0
        replicas[service.name] = max(1, math.ceil(needed) + headroom_replicas)
    return replicas


class ExplorationController:
    """Runs Algorithm 1 for each service of an application."""

    def __init__(
        self,
        streams: RandomStreams,
        percentile_grid: Sequence[float] = DEFAULT_PERCENTILE_GRID,
        window_s: float = 60.0,
        samples_per_step: int = 10,
        sla_violation_threshold: float = 0.10,
        warmup_s: float = 60.0,
        settle_s: float = 30.0,
        min_window_samples: int = 30,
        max_escalations: int = 3,
        probe_beyond_min_replicas: bool = True,
        probe_growth: float = 1.3,
        probe_max_multiplier: float = 2.2,
        cluster_factory: Callable[[Environment], Cluster] | None = None,
    ) -> None:
        if samples_per_step < 1:
            raise ExplorationError("need >= 1 sample per step")
        if not 0 < sla_violation_threshold <= 1:
            raise ExplorationError("F_sla must be in (0, 1]")
        self.streams = streams
        self.grid = list(percentile_grid)
        self.window_s = float(window_s)
        self.samples_per_step = int(samples_per_step)
        self.f_sla = float(sla_violation_threshold)
        self.warmup_s = float(warmup_s)
        self.settle_s = float(settle_s)
        #: Windows with fewer completed requests of a class than this do
        #: not evaluate that class's SLA (a p99 of a handful of samples is
        #: just the maximum and would trigger spurious terminations).
        self.min_window_samples = int(min_window_samples)
        #: If the SLA is violated before any LPR option was recorded, the
        #: initial provisioning was not "adequate CPUs to keep latency
        #: low"; escalate the profiled service's replicas and retry.
        self.max_escalations = int(max_escalations)
        #: When the profiled service reaches 1 replica without violating,
        #: replay the workload trace at growing intensity so exploration
        #: still finds the service's true SLA-bounded capacity.
        self.probe_beyond_min_replicas = bool(probe_beyond_min_replicas)
        if probe_growth <= 1.0:
            raise ExplorationError("probe_growth must be > 1")
        self.probe_growth = float(probe_growth)
        #: Probe intensity ceiling: bounds per-service exploration time at
        #: the cost of capping the discoverable LPR range.
        self.probe_max_multiplier = float(probe_max_multiplier)
        self.cluster_factory = cluster_factory or (
            lambda env: Cluster(
                env, nodes=[Node(f"exp-{i}", 96, 256) for i in range(8)]
            )
        )

    # ------------------------------------------------------------------
    def explore_app(
        self,
        spec: AppSpec,
        mix: RequestMix,
        rps: float,
        backpressure_thresholds: Mapping[str, float],
        services: Sequence[str] | None = None,
        seed_salt: int = 0,
        trace: Callable[[float, int, int, Event], None] | None = None,
    ) -> ExplorationResult:
        """Explore every service (or the given subset) of ``spec``.

        ``trace`` is an engine event-trace hook installed on every
        per-service exploration environment; one
        :class:`~repro.sim.trace.RunDigest` therefore fingerprints the
        whole Algorithm-1 run (its hex digest lands on
        :attr:`ExplorationResult.trace_digest`).
        """
        names = list(services) if services is not None else [
            s.name for s in spec.services
        ]
        profiles: dict[str, ServiceProfile] = {}
        for k, name in enumerate(names):
            profiles[name] = self.explore_service(
                spec,
                name,
                mix,
                rps,
                backpressure_thresholds.get(name, 1.0),
                seed_salt=seed_salt * 1000 + k,
                trace=trace,
            )
        digest = trace.hexdigest() if hasattr(trace, "hexdigest") else None
        return ExplorationResult(
            app_name=spec.name, profiles=profiles, trace_digest=digest
        )

    def explore_service(
        self,
        spec: AppSpec,
        service_name: str,
        mix: RequestMix,
        rps: float,
        backpressure_threshold: float = 1.0,
        seed_salt: int = 0,
        trace: Callable[[float, int, int, Event], None] | None = None,
    ) -> ServiceProfile:
        """Algorithm 1 for one service on a fresh deployment."""
        service_spec = spec.service(service_name)
        provisioning = provisioning_for(spec, mix, rps)
        initial = provisioning[service_name]

        env = Environment(trace=trace)
        cluster = self.cluster_factory(env)
        # The telemetry hub's aggregation window matches the sampling
        # window so per-sample latency distributions and rates are exact.
        hub = MetricsHub(lambda: env.now, window_s=self.window_s, strict=True)
        app = Application(
            spec,
            env=env,
            cluster=cluster,
            hub=hub,
            streams=self.streams.fork(seed_salt),
            initial_replicas=provisioning,
        )
        # batch_candidates=1: exploration replays the trace "hotter" by
        # raising the rate multiplier mid-run, which requires the exact
        # per-candidate thinning loop (the batched scan samples the
        # multiplier only at wake time).
        generator = LoadGenerator(
            app,
            pattern=ConstantLoad(rps),
            mix=mix,
            streams=self.streams.fork(seed_salt + 1),
            batch_candidates=1,
        )
        generator.start()
        env.run(until=self.warmup_s)

        # Classes that actually touch the profiled service.
        touched = [
            rc for rc in spec.request_classes
            if service_name in rc.access_counts() and mix.fraction(rc.name) > 0
        ]
        if not touched:
            raise ExplorationError(
                f"service {service_name!r} receives no load under this mix"
            )

        options: list[LprOption] = []
        samples = 0
        replicas = initial
        escalations = 0
        terminated_by = "min_replicas"
        t_start = env.now

        while replicas > 0:
            # -- one step: collect samples_per_step one-window samples ----
            per_class_rates: dict[str, list[float]] = {rc.name: [] for rc in touched}
            violated_windows = 0
            util_sum = 0.0
            step_t0 = env.now
            for _ in range(self.samples_per_step):
                w0 = env.now
                env.run(until=w0 + self.window_s)
                samples += 1
                window_violated = False
                for rc in spec.request_classes:
                    dist = app.hub.latency_distribution(
                        "request_latency", w0, env.now, {"request": rc.name}
                    )
                    if (
                        dist
                        and dist.count >= self.min_window_samples
                        and dist.percentile(rc.sla.percentile) > rc.sla.target_s
                    ):
                        window_violated = True
                if window_violated:
                    violated_windows += 1
                for rc in touched:
                    rate = app.hub.counter_rate(
                        "requests_total",
                        w0,
                        env.now,
                        {"service": service_name, "request": rc.name},
                    )
                    per_class_rates[rc.name].append(rate)
                util_sum += app.hub.gauge_mean(
                    "cpu_utilization", w0, env.now, {"service": service_name},
                    default=0.0,
                )
            utilization = util_sum / self.samples_per_step
            f_sla = violated_windows / self.samples_per_step

            # -- Algorithm 1's termination checks (do not record this step)
            if f_sla >= self.f_sla and not options:
                # Violations before any feasible option were recorded: the
                # initial provisioning was inadequate -- escalate and retry.
                if escalations >= self.max_escalations:
                    terminated_by = "sla"
                    break
                escalations += 1
                replicas += 1
                app.scale(service_name, replicas)
                env.run(until=env.now + self.settle_s)
                continue
            if utilization >= backpressure_threshold:
                terminated_by = "backpressure"
                break
            if f_sla >= self.f_sla:
                terminated_by = "sla"
                break

            # -- record the LPR option -----------------------------------
            latency_rows: dict[str, list[float]] = {}
            usable = True
            for rc in touched:
                dist = app.hub.latency_distribution(
                    "service_latency",
                    step_t0,
                    env.now,
                    {"service": service_name, "request": rc.name},
                )
                if not dist:
                    usable = False
                    break
                latency_rows[rc.name] = dist.percentiles(self.grid)
            if usable:
                options.append(
                    LprOption(
                        replicas=replicas,
                        lpr={
                            name: sum(rates) / len(rates) / replicas
                            for name, rates in per_class_rates.items()
                        },
                        load_samples={
                            name: [r / replicas for r in rates]
                            for name, rates in per_class_rates.items()
                        },
                        latency_rows=latency_rows,
                        utilization=utilization,
                    )
                )

            if replicas > 1:
                replicas -= 1
                app.scale(service_name, replicas)
            else:
                # One replica and still no violation: the base trace cannot
                # push the per-replica load higher by removing replicas.
                # Replay the trace hotter to keep probing LPR candidates,
                # until the SLA/backpressure stop fires or the probe budget
                # runs out.
                next_multiplier = generator.rate_multiplier * self.probe_growth
                limit = min(self.probe_max_multiplier, generator.max_multiplier)
                if (
                    not self.probe_beyond_min_replicas
                    or next_multiplier > limit
                ):
                    terminated_by = "min_replicas"
                    break
                generator.set_rate_multiplier(next_multiplier)
                # Keep every *other* service generously provisioned under
                # the hotter trace so the profiled service stays the only
                # bottleneck candidate.
                for other, base_replicas in provisioning.items():
                    if other != service_name:
                        app.scale(other, math.ceil(base_replicas * next_multiplier))
            env.run(until=env.now + self.settle_s)

        return ServiceProfile(
            service=service_name,
            cpus_per_replica=service_spec.cpus_per_replica,
            options=options,
            samples_collected=samples,
            profiling_time_s=env.now - t_start,
            terminated_by=terminated_by,
        )


def save_exploration(result: ExplorationResult, path) -> None:
    """Persist an exploration result as JSON (portable across versions).

    Exploration is the expensive offline phase; persisting it lets
    deployments reuse profiles without re-running Algorithm 1 (the paper's
    re-exploration only touches updated services).
    """
    import json
    from pathlib import Path

    payload = {
        "app_name": result.app_name,
        "trace_digest": result.trace_digest,
        "profiles": {
            name: {
                "service": p.service,
                "cpus_per_replica": p.cpus_per_replica,
                "samples_collected": p.samples_collected,
                "profiling_time_s": p.profiling_time_s,
                "terminated_by": p.terminated_by,
                "options": [
                    {
                        "replicas": o.replicas,
                        "lpr": o.lpr,
                        "load_samples": o.load_samples,
                        "latency_rows": o.latency_rows,
                        "utilization": o.utilization,
                    }
                    for o in p.options
                ],
            }
            for name, p in result.profiles.items()
        },
    }
    with Path(path).open("w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)


def load_exploration(path) -> ExplorationResult:
    """Load an exploration result saved by :func:`save_exploration`."""
    import json
    from pathlib import Path

    with Path(path).open() as fh:
        payload = json.load(fh)
    profiles = {}
    for name, p in payload["profiles"].items():
        options = [
            LprOption(
                replicas=int(o["replicas"]),
                lpr={k: float(v) for k, v in o["lpr"].items()},
                load_samples={
                    k: [float(x) for x in v] for k, v in o["load_samples"].items()
                },
                latency_rows={
                    k: [float(x) for x in v] for k, v in o["latency_rows"].items()
                },
                utilization=float(o["utilization"]),
            )
            for o in p["options"]
        ]
        profiles[name] = ServiceProfile(
            service=p["service"],
            cpus_per_replica=int(p["cpus_per_replica"]),
            options=options,
            samples_collected=int(p["samples_collected"]),
            profiling_time_s=float(p["profiling_time_s"]),
            terminated_by=str(p["terminated_by"]),
        )
    return ExplorationResult(
        app_name=payload["app_name"],
        profiles=profiles,
        trace_digest=payload.get("trace_digest"),
    )
