"""UrsaManager: the facade wiring all five Ursa components (§V, Fig. 5).

1. tracing framework -- the application's :class:`MetricsHub`;
2. exploration controller -- :mod:`repro.core.exploration` (offline);
3. optimisation engine -- :mod:`repro.core.optimizer`;
4. resource controller -- :mod:`repro.core.resource_controller`;
5. anomaly detector -- :mod:`repro.core.anomaly`.

Typical lifecycle::

    exploration = ExplorationController(streams).explore_app(spec, mix, rps, bp)
    app = Application(spec, ...)
    manager = UrsaManager(app, exploration)
    manager.initialize(class_loads={"read-timeline": 25.0, ...})
    manager.start()
    env.run(until=...)
"""

from __future__ import annotations

import time
from typing import Mapping

from repro.apps.topology import Application
from repro.core.anomaly import AnomalyDetector
from repro.core.exploration import ExplorationResult
from repro.core.optimizer import OptimizationEngine, OptimizationOutcome
from repro.core.overestimation import OverestimationTracker
from repro.core.resource_controller import ResourceController
from repro.errors import ConfigurationError
from repro.telemetry.slo import SLOMonitor

__all__ = ["UrsaManager"]


class UrsaManager:
    """Deploy-time resource management for one application.

    ``slo_monitor`` (optional) subscribes a pure-observer
    :class:`~repro.telemetry.slo.SLOMonitor` to the application's
    completions; :meth:`initialize` additionally feeds it the MIP's
    per-service budgets so it can stream per-hop budget breaches.  The
    monitor is an observed-violation *signal source* only -- control
    decisions never read it, so attaching one leaves the simulated
    timeline (and :class:`~repro.sim.trace.RunDigest`) byte-identical.
    """

    def __init__(
        self,
        app: Application,
        exploration: ExplorationResult,
        engine: OptimizationEngine | None = None,
        control_interval_s: float = 15.0,
        anomaly_check_interval_s: float = 120.0,
        ratio_deviation_threshold: float = 1.0,
        sla_violation_threshold: float = 0.10,
        slo_monitor: SLOMonitor | None = None,
    ) -> None:
        self.app = app
        self.exploration = exploration
        self.engine = engine if engine is not None else OptimizationEngine()
        self.slo_monitor = slo_monitor
        if slo_monitor is not None:
            slo_monitor.attach(app)
            slo_monitor.attach_services(app)
        self.overestimation = OverestimationTracker()
        self.outcome: OptimizationOutcome | None = None
        self.controller = ResourceController(
            app, thresholds={}, control_interval_s=control_interval_s
        )
        self.detector = AnomalyDetector(
            app,
            thresholds={},
            on_recalculate=self._recalculate_from_observed_load,
            on_reexplore=self._mark_for_reexploration,
            check_interval_s=anomaly_check_interval_s,
            ratio_deviation_threshold=ratio_deviation_threshold,
            sla_violation_threshold=sla_violation_threshold,
        )
        self.recalculations = 0
        #: Services flagged by latency anomalies for offline re-exploration
        #: (§V item 5).  Exploration runs on a separate deployment, so the
        #: manager surfaces the request rather than blocking the control
        #: loop; the Fig. 14 experiment shows the full cycle.
        self.pending_reexploration: list[str] = []
        self._started = False

    # ------------------------------------------------------------------
    def initialize(self, class_loads: Mapping[str, float]) -> OptimizationOutcome:
        """Solve the MIP for ``class_loads`` and apply initial replicas."""
        outcome = self.engine.optimize(self.app.spec, self.exploration, class_loads)
        self.outcome = outcome
        self.controller.set_thresholds(outcome.thresholds)
        self.detector.set_thresholds(outcome.thresholds)
        if self.slo_monitor is not None:
            self.slo_monitor.set_service_budgets(outcome.service_budgets)
        access = {
            rc.name: rc.access_counts() for rc in self.app.spec.request_classes
        }
        for service, threshold in outcome.thresholds.items():
            service_loads = {}
            for class_name, load in class_loads.items():
                count = access.get(class_name, {}).get(service, 0)
                if count:
                    service_loads[class_name] = load * count
            self.app.scale(service, threshold.replicas_for(service_loads))
        return outcome

    def start(self) -> None:
        """Spawn the resource controller and anomaly detector loops."""
        if self.outcome is None:
            raise ConfigurationError("call initialize() before start()")
        if self._started:
            raise ConfigurationError("manager already started")
        self._started = True
        self.controller.start()
        self.detector.start()

    # ------------------------------------------------------------------
    def observed_class_loads(self, horizon_s: float = 300.0) -> dict[str, float]:
        """Recent client-level per-class arrival rates from telemetry."""
        now = self.app.env.now
        t0 = max(0.0, now - horizon_s)
        if now <= t0:
            return {}
        return {
            rc.name: self.app.hub.counter_rate(
                "client_requests_total", t0, now, {"request": rc.name}
            )
            for rc in self.app.spec.request_classes
        }

    def _mark_for_reexploration(self, services: list[str]) -> None:
        for name in services:
            if name not in self.pending_reexploration:
                self.pending_reexploration.append(name)

    def apply_reexploration(self, exploration: ExplorationResult) -> None:
        """Merge fresh (partial) exploration data and re-optimise.

        Call after running :class:`ExplorationController` for the services
        in :attr:`pending_reexploration`; clears the pending list.
        """
        profiles = dict(self.exploration.profiles)
        profiles.update(exploration.profiles)
        self.exploration = ExplorationResult(
            app_name=self.exploration.app_name, profiles=profiles
        )
        self.pending_reexploration = [
            s for s in self.pending_reexploration
            if s not in exploration.profiles
        ]
        self._recalculate_from_observed_load()

    def _recalculate_from_observed_load(self) -> None:
        loads = self.observed_class_loads()
        if not loads or all(v <= 0 for v in loads.values()):
            return
        outcome = self.engine.optimize(self.app.spec, self.exploration, loads)
        self.outcome = outcome
        self.controller.set_thresholds(outcome.thresholds)
        self.detector.set_thresholds(outcome.thresholds)
        if self.slo_monitor is not None:
            self.slo_monitor.set_service_budgets(outcome.service_budgets)
        self.recalculations += 1

    # ------------------------------------------------------------------
    # Control-plane latency probes (Table VI)
    # ------------------------------------------------------------------
    def time_deploy_decision(self, repeats: int = 50) -> float:
        """Mean wall-clock seconds for one full fast-path decision pass."""
        if self.outcome is None:
            raise ConfigurationError("call initialize() first")
        # The Table VI probes below intentionally read the host clock: they
        # measure the controller's real compute cost, never simulated state.
        start = time.perf_counter()  # ursalint: disable=SIM001 -- Table VI probe
        for _ in range(repeats):
            for service in self.outcome.thresholds:
                self.controller.decide(service)
        # ursalint: disable=SIM001 -- Table VI probe
        return (time.perf_counter() - start) / repeats

    def time_update_decision(self, class_loads: Mapping[str, float]) -> float:
        """Wall-clock seconds to recompute the optimisation model."""
        start = time.perf_counter()  # ursalint: disable=SIM001 -- Table VI probe
        self.engine.optimize(self.app.spec, self.exploration, class_loads)
        return time.perf_counter() - start  # ursalint: disable=SIM001 -- Table VI probe
