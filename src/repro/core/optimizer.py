"""The optimisation engine: exploration data + load -> LPR thresholds.

Builds the §IV allocation MIP from per-service exploration profiles and
the application's current per-class load, solves it exactly, and emits one
:class:`ScalingThreshold` per service -- the artefact the resource
controller scales against.  This is the component invoked at deployment
time and re-invoked by the anomaly detector when the request mix shifts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.apps.topology import AppSpec
from repro.core.exploration import ExplorationResult, LprOption
from repro.errors import ConfigurationError
from repro.solver import AllocationModel, ClassSla, ServiceOptions, Solution, solve
from repro.stats.distributions import DEFAULT_PERCENTILE_GRID

__all__ = ["ScalingThreshold", "OptimizationEngine", "OptimizationOutcome"]

#: Per-class LPRs below this rate cannot size replica counts (the class
#: effectively saw no load during exploration).
_MIN_LPR = 1e-9


@dataclass
class ScalingThreshold:
    """The per-service scaling rule Ursa deploys.

    ``lpr`` is the chosen load-per-replica threshold vector; the resource
    controller keeps every class's per-replica load below it.
    ``load_samples`` are the per-window per-replica loads recorded during
    exploration at this LPR -- the reference sample for the controller's
    Welch t-test.
    """

    service: str
    cpus_per_replica: int
    lpr: dict[str, float]
    load_samples: dict[str, list[float]]
    utilization: float

    def replicas_for(self, service_loads: Mapping[str, float]) -> int:
        """Replicas needed so no class exceeds its per-replica threshold."""
        needed = 1
        for class_name, load in service_loads.items():
            if load <= 0:
                continue
            threshold = self.lpr.get(class_name, 0.0)
            if threshold <= _MIN_LPR:
                continue  # class saw no exploration load; cannot size by it
            needed = max(needed, math.ceil(load / threshold - 1e-9))
        return needed


@dataclass
class OptimizationOutcome:
    """Thresholds plus the raw solver artefacts (for accuracy analysis)."""

    thresholds: dict[str, ScalingThreshold]
    solution: Solution
    #: class -> predicted end-to-end latency upper bound (seconds).
    predicted_bounds: dict[str, float]
    #: class -> the SLA percentile the bound applies to.
    bound_percentiles: dict[str, float]
    #: class -> service -> the budgeted seconds the solver picked for that
    #: hop (the chosen LPR row at the chosen percentile column) -- the
    #: reference side of the span-driven budget audit.
    service_budgets: dict[str, dict[str, float]] = field(default_factory=dict)


class OptimizationEngine:
    """Builds and solves the allocation MIP."""

    def __init__(
        self, percentile_grid: Sequence[float] = DEFAULT_PERCENTILE_GRID
    ) -> None:
        self.grid = list(percentile_grid)

    # ------------------------------------------------------------------
    def build_model(
        self,
        spec: AppSpec,
        exploration: ExplorationResult,
        class_loads: Mapping[str, float],
    ) -> AllocationModel:
        """Assemble MIP 1 for the given client-level per-class loads (RPS)."""
        access: dict[str, dict[str, int]] = {}
        for rc in spec.request_classes:
            for service, count in rc.access_counts().items():
                access.setdefault(service, {})[rc.name] = count

        services = []
        for name, profile in exploration.profiles.items():
            if not profile.options:
                raise ConfigurationError(
                    f"service {name!r} has no exploration options"
                )
            resources = [
                self._replicas_for_option(
                    option, access.get(name, {}), class_loads
                )
                * profile.cpus_per_replica
                for option in profile.options
            ]
            latency: dict[str, np.ndarray] = {}
            classes = profile.options[0].latency_rows.keys()
            for class_name in classes:
                count = access.get(name, {}).get(class_name, 1)
                rows = [
                    np.asarray(option.latency_rows[class_name]) * count
                    for option in profile.options
                ]
                latency[class_name] = np.vstack(rows)
            services.append(
                ServiceOptions(name=name, resources=resources, latency=latency)
            )
        profiled_classes = {
            c for s in services for c in s.latency
        }
        slas = [
            ClassSla(rc.name, rc.sla.percentile, rc.sla.target_s)
            for rc in spec.request_classes
            if rc.name in profiled_classes
        ]
        return AllocationModel(services, slas, self.grid)

    @staticmethod
    def _replicas_for_option(
        option: LprOption,
        access_counts: Mapping[str, int],
        class_loads: Mapping[str, float],
    ) -> int:
        """Replica count Eq. 3 implies for one LPR option under a load."""
        needed = 1
        for class_name, lpr in option.lpr.items():
            if lpr <= _MIN_LPR:
                continue
            load = class_loads.get(class_name, 0.0) * access_counts.get(
                class_name, 1
            )
            if load > 0:
                needed = max(needed, math.ceil(load / lpr - 1e-9))
        return needed

    # ------------------------------------------------------------------
    def optimize(
        self,
        spec: AppSpec,
        exploration: ExplorationResult,
        class_loads: Mapping[str, float],
    ) -> OptimizationOutcome:
        """Solve MIP 1 and emit the per-service scaling thresholds."""
        model = self.build_model(spec, exploration, class_loads)
        solution = solve(model)
        thresholds: dict[str, ScalingThreshold] = {}
        for name, profile in exploration.profiles.items():
            option = profile.options[solution.lpr_choice[name]]
            thresholds[name] = ScalingThreshold(
                service=name,
                cpus_per_replica=profile.cpus_per_replica,
                lpr=dict(option.lpr),
                load_samples={k: list(v) for k, v in option.load_samples.items()},
                utilization=option.utilization,
            )
        percentiles = {
            rc.name: rc.sla.percentile for rc in spec.request_classes
        }
        service_budgets: dict[str, dict[str, float]] = {}
        for svc in model.services:
            row = solution.lpr_choice[svc.name]
            for class_name, matrix in svc.latency.items():
                column = solution.percentile_choice.get((svc.name, class_name))
                if column is None:
                    continue
                service_budgets.setdefault(class_name, {})[svc.name] = float(
                    matrix[row][column]
                )
        return OptimizationOutcome(
            thresholds=thresholds,
            solution=solution,
            predicted_bounds=dict(solution.latency_bound),
            bound_percentiles={
                name: percentiles[name] for name in solution.latency_bound
            },
            service_budgets=service_budgets,
        )
