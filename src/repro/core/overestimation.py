"""Overestimation mitigation (§IV, "Mitigating latency overestimation").

Theorem 1's sum-of-percentiles is an upper bound; using it raw would
over-provision.  Following the paper, Ursa records the ratio of *actual*
end-to-end latency to the bound during exploration and deployment, and
estimates the true latency as ``bound x expected overestimation ratio``.
The Fig. 9/10 experiments compare this estimate against measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["OverestimationTracker"]


@dataclass
class OverestimationTracker:
    """Tracks per-class measured/bound ratios with an exponential average.

    ``alpha`` is the EWMA weight of the newest observation.  Before any
    observation the ratio defaults to 1.0 (use the bound as-is).
    """

    alpha: float = 0.3
    _ratios: dict[str, float] = field(default_factory=dict)
    _counts: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ConfigurationError(f"alpha must be in (0, 1], got {self.alpha}")

    def observe(self, request_class: str, measured: float, bound: float) -> None:
        """Record one (measured latency, predicted bound) pair."""
        if measured < 0:
            raise ConfigurationError(f"measured latency must be >= 0: {measured}")
        if bound <= 0:
            raise ConfigurationError(f"bound must be > 0: {bound}")
        ratio = measured / bound
        previous = self._ratios.get(request_class)
        if previous is None:
            self._ratios[request_class] = ratio
        else:
            self._ratios[request_class] = (
                self.alpha * ratio + (1.0 - self.alpha) * previous
            )
        self._counts[request_class] = self._counts.get(request_class, 0) + 1

    def ratio(self, request_class: str) -> float:
        """Expected measured/bound ratio (1.0 when nothing observed)."""
        return self._ratios.get(request_class, 1.0)

    def estimate(self, request_class: str, bound: float) -> float:
        """Estimated actual latency for a predicted ``bound``."""
        if bound <= 0:
            raise ConfigurationError(f"bound must be > 0: {bound}")
        return bound * self.ratio(request_class)

    def observations(self, request_class: str) -> int:
        return self._counts.get(request_class, 0)
