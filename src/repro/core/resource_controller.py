"""The resource controller: threshold-based replica scaling (§V item 4).

The fast path of Ursa's control plane.  Every control interval it reads
each service's recent per-class load from the tracing framework, divides
by the replica count, and compares against the service's load-per-replica
threshold:

* **scale out** when the per-replica load of any class *significantly*
  exceeds its threshold -- Welch's t-test against the load samples
  recorded during exploration absorbs load-fluctuation noise;
* **scale in** when one fewer replica would still keep every class's
  per-replica load below threshold (again judged by the t-test).

The number of replicas requested is always the threshold arithmetic's
``max_j ceil(load_j / lpr_j)`` -- a single multiplication and comparison
per class, which is why Ursa's deployment-time decisions are orders of
magnitude faster than ML inference (Table VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.apps.topology import Application
from repro.core.optimizer import ScalingThreshold
from repro.errors import ConfigurationError
from repro.stats.ttest import mean_exceeds

__all__ = ["ResourceController", "ScalingDecision"]


@dataclass
class ScalingDecision:
    """One decision record (kept for diagnostics and the experiments)."""

    time: float
    service: str
    from_replicas: int
    to_replicas: int
    reason: str


class ResourceController:
    """Per-application scaling loop driven by LPR thresholds."""

    def __init__(
        self,
        app: Application,
        thresholds: Mapping[str, ScalingThreshold],
        control_interval_s: float = 15.0,
        lookback_windows: int = 3,
        alpha: float = 0.05,
        min_replicas: int = 1,
    ) -> None:
        if control_interval_s <= 0:
            raise ConfigurationError("control interval must be > 0")
        if lookback_windows < 1:
            raise ConfigurationError("need >= 1 lookback window")
        self.app = app
        self.thresholds = dict(thresholds)
        self.control_interval_s = float(control_interval_s)
        self.lookback_windows = int(lookback_windows)
        self.alpha = float(alpha)
        self.min_replicas = int(min_replicas)
        self.decisions: list[ScalingDecision] = []
        self._started = False

    def set_thresholds(self, thresholds: Mapping[str, ScalingThreshold]) -> None:
        """Swap thresholds (after the optimiser recalculates)."""
        self.thresholds = dict(thresholds)

    def start(self) -> None:
        """Spawn the control loop as a simulation process."""
        if self._started:
            raise ConfigurationError("controller already started")
        self._started = True
        self.app.env.process(self._loop())

    # ------------------------------------------------------------------
    def _recent_load_samples(self, service: str, classes) -> dict[str, list[float]]:
        """Per-window service-level load rates over the lookback horizon."""
        hub = self.app.hub
        now = self.app.env.now
        window = hub.window_s
        samples: dict[str, list[float]] = {}
        for class_name in classes:
            rates = []
            for k in range(self.lookback_windows, 0, -1):
                t0 = max(0.0, now - k * window)
                t1 = now - (k - 1) * window
                if t1 <= t0:
                    continue
                rates.append(
                    hub.counter_rate(
                        "requests_total",
                        t0,
                        t1,
                        {"service": service, "request": class_name},
                    )
                )
            samples[class_name] = rates
        return samples

    def decide(self, service: str) -> ScalingDecision | None:
        """One scaling decision for one service (the Table VI fast path)."""
        threshold = self.thresholds.get(service)
        if threshold is None:
            return None
        deployment = self.app.services[service].deployment
        current = max(1, deployment.desired_replicas)
        loads = self._recent_load_samples(service, threshold.lpr.keys())
        mean_loads = {
            name: (sum(rates) / len(rates) if rates else 0.0)
            for name, rates in loads.items()
        }
        desired = max(self.min_replicas, threshold.replicas_for(mean_loads))

        if desired > current:
            # Confirm with the t-test that some class really exceeds its
            # recorded threshold load per replica.
            for class_name, rates in loads.items():
                recorded = threshold.load_samples.get(class_name, [])
                if len(rates) < 2 or len(recorded) < 2:
                    continue
                per_replica = [r / current for r in rates]
                if mean_exceeds(per_replica, recorded, alpha=self.alpha):
                    return ScalingDecision(
                        self.app.env.now, service, current, desired,
                        f"scale-out: {class_name} load exceeds threshold",
                    )
            # Threshold arithmetic says more, but the t-test attributes it
            # to noise: hold.
            return None
        if desired < current:
            # Scale in only when the load at the lower count would *not*
            # significantly exceed the recorded threshold samples.
            for class_name, rates in loads.items():
                recorded = threshold.load_samples.get(class_name, [])
                if len(rates) < 2 or len(recorded) < 2:
                    continue
                hypothetical = [r / desired for r in rates]
                if mean_exceeds(hypothetical, recorded, alpha=self.alpha):
                    return None
            return ScalingDecision(
                self.app.env.now, service, current, desired, "scale-in"
            )
        return None

    def step(self) -> list[ScalingDecision]:
        """Evaluate every service once and apply the decisions."""
        applied = []
        for service in self.thresholds:
            decision = self.decide(service)
            if decision is not None and decision.to_replicas != decision.from_replicas:
                self.app.scale(service, decision.to_replicas)
                self.decisions.append(decision)
                applied.append(decision)
        return applied

    def _loop(self):
        env = self.app.env
        # Give telemetry one full window before the first decision.
        yield env.timeout(self.app.hub.window_s)
        while True:
            self.step()
            yield env.timeout(self.control_interval_s)
