"""Theorem 1: percentile decomposition of end-to-end latency.

For a chain of services with latency distributions ``t_1 .. t_n`` and any
percentiles ``x_1 .. x_n``:

    t_e2e(x_c) <= sum_i t_i(x_i)   whenever   100 - x_c >= sum_i (100 - x_i)

i.e. the sum of per-service percentile latencies upper-bounds the
end-to-end percentile as long as the per-service percentile *residuals*
fit within the end-to-end residual.  The bound holds for arbitrary joint
distributions (dependence allowed); the proof is a union bound: the event
"end-to-end latency exceeds the sum" implies at least one service exceeded
its own percentile, and those events' probabilities sum to at most the
end-to-end residual.

This module provides residual-budget helpers and an empirical checker used
by the property-based tests and the model-accuracy experiments.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigurationError
from repro.stats.distributions import EmpiricalDistribution

__all__ = [
    "residuals_fit",
    "latency_upper_bound",
    "split_residual_evenly",
    "empirical_bound_holds",
]


def residuals_fit(e2e_percentile: float, per_service: Sequence[float]) -> bool:
    """Check Theorem 1's side condition ``100 - x_c >= sum(100 - x_i)``."""
    if not 0 < e2e_percentile < 100:
        raise ConfigurationError(
            f"end-to-end percentile must be in (0, 100), got {e2e_percentile}"
        )
    for x in per_service:
        if not 0 < x < 100:
            raise ConfigurationError(f"per-service percentile {x} out of range")
    return 100.0 - e2e_percentile >= sum(100.0 - x for x in per_service) - 1e-9


def latency_upper_bound(
    distributions: Sequence[EmpiricalDistribution],
    percentiles: Sequence[float],
) -> float:
    """``sum_i t_i(x_i)`` for the given per-service percentile choices."""
    if len(distributions) != len(percentiles):
        raise ConfigurationError(
            f"{len(distributions)} distributions vs {len(percentiles)} percentiles"
        )
    return sum(d.percentile(x) for d, x in zip(distributions, percentiles))


def split_residual_evenly(e2e_percentile: float, n_services: int) -> list[float]:
    """The simplest valid split: each service gets ``residual / n``.

    E.g. a p99 SLA over 2 services yields (99.5, 99.5).
    """
    if n_services < 1:
        raise ConfigurationError(f"need >= 1 service, got {n_services}")
    residual = (100.0 - e2e_percentile) / n_services
    return [100.0 - residual] * n_services


def empirical_bound_holds(
    e2e: EmpiricalDistribution,
    per_service: Sequence[EmpiricalDistribution],
    e2e_percentile: float,
    per_service_percentiles: Sequence[float],
) -> bool:
    """Empirically verify Theorem 1 on recorded samples.

    Returns True when the side condition holds and the measured end-to-end
    percentile is below the per-service percentile sum.  (On finite samples
    the theorem can be violated by sampling noise only; the property tests
    allow for that explicitly.)
    """
    if not residuals_fit(e2e_percentile, per_service_percentiles):
        raise ConfigurationError(
            "residual condition violated: the bound is not applicable"
        )
    bound = latency_upper_bound(per_service, per_service_percentiles)
    return e2e.percentile(e2e_percentile) <= bound + 1e-12
