"""Exception hierarchy for the repro package.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything from this package with one ``except`` clause.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "TopologyError",
    "SchedulingError",
    "ExplorationError",
    "InfeasibleModelError",
    "SolverError",
    "TelemetryError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """Invalid user-supplied configuration (SLAs, topologies, parameters)."""


class TopologyError(ReproError):
    """Malformed service graph (cycles, unknown services, bad edges)."""


class SchedulingError(ReproError):
    """Cluster could not satisfy a placement or scaling request."""


class ExplorationError(ReproError):
    """The exploration controller could not collect usable profiles."""


class SolverError(ReproError):
    """The MIP solver was given a malformed model."""


class InfeasibleModelError(SolverError):
    """The resource-optimisation model has no feasible assignment.

    Raised by the optimisation engine when no combination of profiled LPR
    thresholds can satisfy the end-to-end SLAs; carries enough context to
    tell the user which SLA is binding.
    """

    def __init__(self, message: str, binding_constraints: list[str] | None = None):
        super().__init__(message)
        self.binding_constraints = binding_constraints or []


class TelemetryError(ReproError):
    """Malformed metric queries or recordings."""
