"""Per-table/figure reproduction harnesses (see DESIGN.md's index).

Modules:

* :mod:`repro.experiments.fig02_backpressure` -- Fig. 2 heatmaps.
* :mod:`repro.experiments.fig04_thresholds` -- Fig. 4 threshold curves.
* :mod:`repro.experiments.table05_exploration` -- Table V overheads.
* :mod:`repro.experiments.fig09_10_model_accuracy` -- Figs. 9/10.
* :mod:`repro.experiments.fig11_12_performance` -- Figs. 11/12.
* :mod:`repro.experiments.fig13_diurnal` -- Fig. 13 traces.
* :mod:`repro.experiments.table06_control_plane` -- Table VI latencies.
* :mod:`repro.experiments.fig14_service_change` -- Fig. 14 / §VII-G.

Shared infrastructure: :mod:`repro.experiments.runner` (deployment loop,
scale profiles), :mod:`repro.experiments.parallel` (process-pool fan-out
for independent runs), :mod:`repro.experiments.artifacts` (cached
exploration data and trained baselines), :mod:`repro.experiments.managers`
(manager factories), :mod:`repro.experiments.report` (table/series
rendering), :mod:`repro.experiments.ablations` (design-knockout sweeps).
"""

from repro.experiments.parallel import RunPlan, partition_seeds, run_many
from repro.experiments.runner import (
    DeploymentMetrics,
    DeploymentResult,
    ScaleProfile,
    run_deployment,
    scale_profile,
)

__all__ = [
    "DeploymentMetrics",
    "DeploymentResult",
    "RunPlan",
    "ScaleProfile",
    "partition_seeds",
    "run_deployment",
    "run_many",
    "scale_profile",
]
