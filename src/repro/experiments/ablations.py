"""Ablation sweeps: design decisions knocked out one at a time.

Three ablations of Ursa's design, each comparing the shipped mechanism
against a degraded variant on otherwise-identical inputs:

* **t-test scaling** (§V item 4) -- Welch's t-test (alpha = 0.05) vs a
  naive mean comparison (alpha ~ 1) in the resource controller.
* **backpressure-free stop** (Algorithm 1) -- exploration with the
  utilisation stop enforced vs disabled (threshold = 1.0).
* **percentile-grid resolution** (Theorem 1) -- the MIP solved on
  coarser column subsets of the exploration grid.

The variant/cell functions live here (not in ``benchmarks/``) at module
top level so :func:`repro.experiments.parallel.run_many` can ship them
to worker processes; each sweep's variants are independent runs and fan
out across ``jobs``.  The ``benchmarks/test_ablation_*`` files call the
``run_*_ablation`` entry points and assert the expected shapes.
"""

from __future__ import annotations

# Solve-time probes below use wall-clock deliberately (they measure the
# optimiser, not simulated time); SIM001 is allowlisted for
# repro/experiments by repro.analysis.policy.
import time

from repro.core.exploration import ExplorationController
from repro.core.manager import UrsaManager
from repro.errors import InfeasibleModelError
from repro.experiments import artifacts
from repro.experiments.parallel import RunPlan, run_many
from repro.experiments.report import render_table
from repro.experiments.runner import RunOptions, make_app, scale_profile
from repro.experiments.store import RunMeta
from repro.sim.random import RandomStreams
from repro.sim.trace import RunDigest
from repro.solver import AllocationModel, ClassSla, ServiceOptions, solve
from repro.stats.distributions import DEFAULT_PERCENTILE_GRID
from repro.workload.defaults import default_mix_for
from repro.workload.generator import LoadGenerator
from repro.workload.patterns import ConstantLoad

__all__ = [
    "ABLATION_APP",
    "BP_SERVICE",
    "GRID_SUBSETS",
    "ttest_variant",
    "run_ttest_ablation",
    "ttest_meta",
    "backpressure_variant",
    "run_backpressure_ablation",
    "backpressure_meta",
    "grid_subset_solve",
    "run_grid_ablation",
    "grid_meta",
]

#: Default seed of the t-test ablation deployments.
TTEST_SEED = 41

#: All three ablations use the vanilla social network: it is the
#: cheapest app whose topology still exercises every mechanism.
ABLATION_APP = "vanilla-social-network"

#: RPC-called service whose exploration the backpressure ablation probes.
BP_SERVICE = "timeline-service"


# -- t-test scaling (Welch vs naive) --------------------------------------


def ttest_variant(alpha: float, options: RunOptions | None = None) -> dict:
    """One Ursa deployment with the controller's t-test alpha overridden."""
    options = (
        options if options is not None
        else RunOptions(seed=TTEST_SEED, digest=True)
    )
    seed = options.seed
    duration = options.resolved_duration_s()
    measure_from = options.resolved_measure_from_s()
    spec = artifacts.app_spec(ABLATION_APP)
    mix = default_mix_for(ABLATION_APP)
    rps = artifacts.app_rps(ABLATION_APP)
    exploration = artifacts.exploration_result(ABLATION_APP)
    run_digest = RunDigest() if options.digest else None
    app = make_app(spec, seed=seed, trace=run_digest)
    app.env.run(until=10)
    manager = UrsaManager(app, exploration)
    manager.controller.alpha = alpha
    manager.initialize({c: rps * mix.fraction(c) for c in mix.classes()})
    manager.start()
    LoadGenerator(
        app, ConstantLoad(rps), mix, RandomStreams(seed + 1), stop_at_s=duration
    ).start()
    app.env.run(until=duration)
    return {
        "decisions": len(manager.controller.decisions),
        "violations": app.windowed_violation_rate(measure_from, duration),
        "cpus": app.mean_cpu_allocation(measure_from, duration),
        "run_digest": (
            run_digest.hexdigest() if run_digest is not None else None
        ),
    }


def run_ttest_ablation(
    options: RunOptions | None = None, jobs: int | None = None
):
    """(table, with_ttest, naive) -- §V item 4 knocked out.

    Per-run knobs (seed, durations, digest) ride in ``options``; both
    variants share it so they face identical workloads.
    """
    artifacts.exploration_result(ABLATION_APP)  # prewarm before forking
    with_ttest, naive = run_many(
        [
            RunPlan(
                ttest_variant,
                {"alpha": 0.05, "options": options},
                label="ablation:ttest:welch",
            ),
            RunPlan(
                ttest_variant,
                {"alpha": 0.9999, "options": options},
                label="ablation:ttest:naive",
            ),
        ],
        jobs=jobs,
    )
    table = render_table(
        ["variant", "scaling_decisions", "violation_rate", "mean_cpus"],
        [
            (
                "welch t-test (a=0.05)",
                with_ttest["decisions"],
                f"{with_ttest['violations']:.3f}",
                f"{with_ttest['cpus']:.1f}",
            ),
            (
                "naive comparison (a~1)",
                naive["decisions"],
                f"{naive['violations']:.3f}",
                f"{naive['cpus']:.1f}",
            ),
        ],
        title="Ablation: t-test noise filtering in the resource controller",
    )
    return table, with_ttest, naive


def ttest_meta(with_ttest: dict, naive: dict, seed: int = TTEST_SEED) -> RunMeta:
    """Provenance sidecar for the t-test ablation (two digested runs)."""
    return RunMeta(
        experiment="ablation_ttest",
        scale=scale_profile().name,
        seeds={"welch": seed, "naive": seed},
        digests={
            label: variant["run_digest"]
            for label, variant in (("welch", with_ttest), ("naive", naive))
            if variant.get("run_digest")
        },
        summaries={
            label: {
                "scaling_decisions": float(variant["decisions"]),
                "violation_rate": round(variant["violations"], 9),
                "mean_cpus": round(variant["cpus"], 9),
            }
            for label, variant in (("welch", with_ttest), ("naive", naive))
        },
    )


# -- backpressure-free stop during exploration ----------------------------


def backpressure_variant(
    threshold: float, salt: int, options: RunOptions | None = None
):
    """Explore ``BP_SERVICE`` once with the given utilisation stop.

    ``options.scale`` picks the exploration profile (default: the
    ``REPRO_SCALE`` environment); the other run knobs do not apply to an
    exploration probe.
    """
    profile = options.profile() if options is not None else scale_profile()
    controller = ExplorationController(
        RandomStreams(777),
        window_s=profile.exploration_window_s,
        samples_per_step=profile.exploration_samples_per_step,
        warmup_s=profile.exploration_warmup_s,
        settle_s=profile.exploration_settle_s,
    )
    spec = artifacts.app_spec(ABLATION_APP)
    mix = default_mix_for(ABLATION_APP)
    return controller.explore_service(
        spec,
        BP_SERVICE,
        mix,
        artifacts.app_rps(ABLATION_APP),
        threshold,
        seed_salt=salt,
    )


def run_backpressure_ablation(
    options: RunOptions | None = None, jobs: int | None = None
):
    """(table, enforced, disabled) -- Algorithm 1's stop knocked out."""
    bp = artifacts.backpressure_thresholds(ABLATION_APP).get(BP_SERVICE, 0.6)
    artifacts.app_spec(ABLATION_APP)  # prewarm before forking
    enforced, disabled = run_many(
        [
            RunPlan(
                backpressure_variant,
                {"threshold": bp, "salt": 1, "options": options},
                label="ablation:bp:enforced",
            ),
            RunPlan(
                backpressure_variant,
                {"threshold": 1.0, "salt": 2, "options": options},
                label="ablation:bp:disabled",
            ),
        ],
        jobs=jobs,
    )
    rows = [
        (
            label,
            len(p.options),
            f"{max(o.utilization for o in p.options):.2f}",
            f"{max(o.max_lpr() for o in p.options):.1f}",
            p.terminated_by,
        )
        for label, p in (("enforced", enforced), ("disabled", disabled))
    ]
    table = render_table(
        ["variant", "options", "max_util_recorded", "max_lpr_rps", "stopped_by"],
        rows,
        title=(
            f"Ablation: backpressure-free stop for {BP_SERVICE} "
            f"(threshold={bp:.2f})"
        ),
    )
    return table, enforced, disabled


def backpressure_meta(enforced, disabled) -> RunMeta:
    """Provenance sidecar for the backpressure-stop ablation.

    The exploration controller owns its environments, so this is
    content-only provenance (no engine-level digests).
    """
    return RunMeta(
        experiment="ablation_bp",
        scale=scale_profile().name,
        seeds={"enforced": 1, "disabled": 2},
        summaries={
            label: {
                "options": float(len(p.options)),
                "max_util_recorded": round(
                    max(o.utilization for o in p.options), 9
                ),
            }
            for label, p in (("enforced", enforced), ("disabled", disabled))
        },
    )


# -- percentile-grid resolution of the Theorem 1 discretisation -----------

#: Column subsets of the default exploration grid
#: (50, 75, 85, 90, 95, 99, 99.5, 99.9).
GRID_SUBSETS = {
    "coarse-2": (0, 7),                   # {50, 99.9}
    "mid-4": (0, 4, 5, 7),                # {50, 95, 99, 99.9}
    "full-8": (0, 1, 2, 3, 4, 5, 6, 7),
}


def _build_grid_model(subset: tuple[int, ...]) -> AllocationModel:
    import numpy as np

    from repro.core.optimizer import OptimizationEngine

    exploration = artifacts.exploration_result(ABLATION_APP)
    spec = artifacts.app_spec(ABLATION_APP)
    mix = default_mix_for(ABLATION_APP)
    rps = artifacts.app_rps(ABLATION_APP)
    class_loads = {c: rps * mix.fraction(c) for c in mix.classes()}
    engine = OptimizationEngine(DEFAULT_PERCENTILE_GRID)
    full = engine.build_model(spec, exploration, class_loads)
    grid = [DEFAULT_PERCENTILE_GRID[i] for i in subset]
    services = [
        ServiceOptions(
            name=s.name,
            resources=s.resources,
            latency={j: np.asarray(m)[:, list(subset)] for j, m in s.latency.items()},
        )
        for s in full.services
    ]
    slas = [ClassSla(c.name, c.percentile, c.target_s) for c in full.slas]
    return AllocationModel(services, slas, grid)


def grid_subset_solve(name: str, subset: tuple[int, ...]) -> dict:
    """Solve the MIP on one grid subset; returns objective + solve cost."""
    model = _build_grid_model(subset)
    start = time.perf_counter()
    try:
        solution = solve(model)
        objective = solution.objective
        nodes = solution.nodes_explored
    except InfeasibleModelError:
        objective = float("inf")
        nodes = 0
    wall_ms = (time.perf_counter() - start) * 1000.0
    return {"name": name, "h": len(subset), "objective": objective,
            "nodes": nodes, "wall_ms": wall_ms}


def run_grid_ablation(jobs: int | None = None):
    """(table, objectives) -- Theorem 1's grid coarsened."""
    artifacts.exploration_result(ABLATION_APP)  # prewarm before forking
    cells = run_many(
        [
            RunPlan(
                grid_subset_solve,
                {"name": name, "subset": subset},
                label=f"ablation:grid:{name}",
            )
            for name, subset in GRID_SUBSETS.items()
        ],
        jobs=jobs,
    )
    objectives = {c["name"]: c["objective"] for c in cells}
    rows = [
        (c["name"], c["h"], f"{c['objective']:.1f}", c["nodes"],
         f"{c['wall_ms']:.1f}")
        for c in cells
    ]
    table = render_table(
        ["grid", "h", "objective_cpus", "bnb_nodes", "solve_ms"],
        rows,
        title="Ablation: percentile grid resolution",
    )
    return table, objectives


def grid_meta(objectives: dict[str, float]) -> RunMeta:
    """Provenance sidecar for the grid-resolution ablation.

    The rendered table embeds wall-clock solve times, so the text hash
    cannot be compared across runs (``deterministic=False``); the MIP
    objectives themselves are deterministic and recorded as summaries.
    """
    return RunMeta(
        experiment="ablation_grid",
        scale=scale_profile().name,
        seeds={},
        deterministic=False,
        summaries={
            name: {"objective_cpus": round(obj, 9)}
            for name, obj in sorted(objectives.items())
        },
    )
