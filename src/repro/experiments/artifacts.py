"""Cached experiment artefacts: exploration data and trained baselines.

Backpressure profiling, Algorithm-1 exploration, Sinan data collection /
training and Firm agent training are expensive; every table and figure
that needs them shares one cached copy per (application, scale profile).
Artefacts are pickled under ``.repro_cache/`` in the repository root so
separate benchmark processes reuse them; delete the directory to force
regeneration.
"""

from __future__ import annotations

import contextlib
import fcntl
import os
import pickle
from pathlib import Path
from typing import Callable

from repro.apps import (
    build_media_service_spec,
    build_social_network_spec,
    build_vanilla_social_network_spec,
    build_video_pipeline_spec,
)
from repro.apps.topology import AppSpec
from repro.baselines.firm import FirmAgent, train_firm_agents
from repro.baselines.sinan import SinanDataCollector, SinanDataset, SinanPredictor
from repro.core.backpressure import BackpressureProfiler
from repro.core.exploration import ExplorationController, ExplorationResult
from repro.experiments.runner import DEFAULT_RPS, scale_profile
from repro.sim.random import RandomStreams
from repro.sim.trace import RunDigest
from repro.workload.defaults import default_mix_for
from repro.workload.mixes import RequestMix

__all__ = [
    "app_spec",
    "app_rps",
    "backpressure_thresholds",
    "exploration_result",
    "sinan_predictor",
    "sinan_dataset",
    "firm_agents",
    "cache_dir",
]

_BUILDERS: dict[str, Callable[[], AppSpec]] = {
    "social-network": build_social_network_spec,
    "vanilla-social-network": build_vanilla_social_network_spec,
    "media-service": build_media_service_spec,
    "video-pipeline": build_video_pipeline_spec,
}


def app_spec(app_name: str) -> AppSpec:
    try:
        return _BUILDERS[app_name]()
    except KeyError:
        raise ValueError(f"unknown application {app_name!r}") from None


def app_rps(app_name: str) -> float:
    return DEFAULT_RPS[app_name]


def cache_dir() -> Path:
    path = Path(__file__).resolve().parents[3] / ".repro_cache"
    path.mkdir(exist_ok=True)
    return path


def _load(path: Path):
    """One read attempt; a corrupt entry is a miss, not an error."""
    if not path.exists():
        return None
    try:
        with path.open("rb") as fh:
            return pickle.load(fh)
    except Exception:
        # A truncated/corrupt cache entry (e.g. an interrupted write
        # by an older, non-atomic writer) is a miss, not an error.
        path.unlink(missing_ok=True)
        return None


@contextlib.contextmanager
def _key_lock(path: Path):
    """Exclusive advisory lock serialising builds of one cache key.

    The lock file sits next to the pickle (``<key>.pkl.lock``) and is
    left in place -- unlinking it would race a third process that just
    opened the old inode and now holds a lock nobody else sees.
    """
    lock_path = path.with_name(path.name + ".lock")
    with lock_path.open("a") as fh:
        fcntl.flock(fh, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh, fcntl.LOCK_UN)


def _cached(key: str, build: Callable[[], object]):
    path = cache_dir() / f"{key}-{scale_profile().name}.pkl"
    artefact = _load(path)
    if artefact is not None:
        return artefact
    # Serialise concurrent builders of the same key: without the lock, N
    # processes missing simultaneously each pay the full build (table05's
    # fan-out cost N explorations cold).  Distinct keys stay concurrent.
    with _key_lock(path):
        # Double-checked read: whoever held the lock first has published
        # the artefact by the time we acquire it.
        artefact = _load(path)
        if artefact is not None:
            return artefact
        artefact = build()
        # Write-to-temp + atomic rename: a reader never sees a
        # half-written pickle, even one not going through the lock.
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump(artefact, fh)
        os.replace(tmp, path)
    return artefact


# ----------------------------------------------------------------------
def backpressure_thresholds(app_name: str) -> dict[str, float]:
    """Per-service backpressure-free CPU-utilisation thresholds (§III)."""

    def build() -> dict[str, float]:
        spec = app_spec(app_name)
        mix = default_mix_for(app_name)
        profile = scale_profile()
        profiler = BackpressureProfiler(
            RandomStreams(101),
            window_s=profile.bp_window_s,
            samples_per_limit=profile.bp_samples_per_limit,
        )
        # Only RPC-connected services can propagate backpressure (§III);
        # MQ-only consumers are unconstrained (threshold 1.0).
        rpc_called = spec.rpc_called_services()
        thresholds = {}
        for service in spec.services:
            if service.name in rpc_called:
                result = profiler.profile_spec(service, mix)
                thresholds[service.name] = result.threshold_utilization
            else:
                thresholds[service.name] = 1.0
        return thresholds

    return _cached(f"bp-{app_name}", build)


def exploration_result(
    app_name: str, mix: RequestMix | None = None, tag: str = "default"
) -> ExplorationResult:
    """Algorithm-1 exploration for one app under its default mix."""

    def build() -> ExplorationResult:
        spec = app_spec(app_name)
        profile = scale_profile()
        controller = ExplorationController(
            RandomStreams(202),
            window_s=profile.exploration_window_s,
            samples_per_step=profile.exploration_samples_per_step,
            warmup_s=profile.exploration_warmup_s,
            settle_s=profile.exploration_settle_s,
        )
        # The digest rides inside the cached artefact, so warm-cache
        # consumers (Table V's sidecar) report the fingerprint of the run
        # that actually built the profiles.
        return controller.explore_app(
            spec,
            mix if mix is not None else default_mix_for(app_name),
            app_rps(app_name),
            backpressure_thresholds(app_name),
            trace=RunDigest(),
        )

    return _cached(f"exploration-{app_name}-{tag}", build)


def sinan_dataset(app_name: str) -> SinanDataset:
    def build() -> SinanDataset:
        spec = app_spec(app_name)
        profile = scale_profile()
        collector = SinanDataCollector(
            RandomStreams(303), window_s=30.0, settle_s=10.0
        )
        return collector.collect(
            spec,
            default_mix_for(app_name),
            app_rps(app_name),
            n_samples=profile.sinan_samples,
        )

    return _cached(f"sinan-data-{app_name}", build)


def sinan_predictor(app_name: str) -> SinanPredictor:
    def build() -> SinanPredictor:
        return SinanPredictor.train(sinan_dataset(app_name), epochs=40)

    return _cached(f"sinan-model-{app_name}", build)


def firm_agents(app_name: str) -> dict[str, FirmAgent]:
    def build() -> dict[str, FirmAgent]:
        spec = app_spec(app_name)
        profile = scale_profile()
        agents, _time = train_firm_agents(
            spec,
            default_mix_for(app_name),
            app_rps(app_name),
            RandomStreams(404),
            n_samples=profile.firm_samples,
        )
        return agents

    return _cached(f"firm-agents-{app_name}", build)
