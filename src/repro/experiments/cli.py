"""Command-line entry point: ``python -m repro <experiment>``.

Runs a single paper experiment and prints its rendered tables/series --
convenient for exploring results without pytest.  Expensive shared
artefacts are cached exactly as in the benchmarks (``.repro_cache/``).

Grid-style experiments (``fig11-12``, ``fig13``, ``fig14``, ``table05``)
fan their independent runs out across ``--jobs`` worker processes via
:mod:`repro.experiments.parallel`; output is identical for any job count.
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main"]

EXPERIMENTS = (
    "fig02",
    "fig04",
    "table05",
    "fig09",
    "fig10",
    "fig11-12",
    "fig13",
    "table06",
    "fig14",
    "summary",
)


def _run(name: str, apps: list[str] | None, jobs: int | None) -> str:
    if name == "fig02":
        from repro.experiments.fig02_backpressure import run_all_chains

        return "\n\n".join(hm.render() for hm in run_all_chains().values())
    if name == "fig04":
        from repro.experiments.fig04_thresholds import run_threshold_profiling

        return run_threshold_profiling().render()
    if name == "table05":
        from repro.experiments.table05_exploration import run_table05

        return run_table05(jobs=jobs).render()
    if name == "fig09":
        from repro.experiments.fig09_10_model_accuracy import (
            FIG9_CLASSES,
            run_model_accuracy,
        )

        return run_model_accuracy("social-network", FIG9_CLASSES).render()
    if name == "fig10":
        from repro.experiments.fig09_10_model_accuracy import run_model_accuracy

        return run_model_accuracy(
            "video-pipeline", ("high-priority", "low-priority")
        ).render()
    if name == "fig11-12":
        from repro.experiments.fig11_12_performance import run_performance_grid

        grid = run_performance_grid(
            tuple(apps)
            if apps
            else (
                "social-network",
                "vanilla-social-network",
                "media-service",
                "video-pipeline",
            ),
            jobs=jobs,
        )
        return grid.violation_table() + "\n\n" + grid.cpu_table()
    if name == "fig13":
        from repro.experiments.fig13_diurnal import run_diurnal_trace

        return run_diurnal_trace(jobs=jobs).render()
    if name == "table06":
        from repro.experiments.table06_control_plane import run_table06

        return run_table06().render()
    if name == "fig14":
        from repro.experiments.fig14_service_change import run_service_change

        return run_service_change(jobs=jobs).render()
    if name == "summary":
        from repro.experiments.summary import summarize

        return summarize()
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce one Ursa (HPCA 2024) table or figure.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument(
        "--apps",
        help="comma-separated application subset (fig11-12 only)",
        default=None,
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for grid experiments (default: scheduler-"
            "visible CPU count, or the REPRO_JOBS env var); results are "
            "identical for any value"
        ),
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    apps = args.apps.split(",") if args.apps else None
    print(_run(args.experiment, apps, args.jobs))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
