"""Command-line entry point: ``python -m repro <experiment>``.

Runs a single paper experiment and prints its rendered tables/series --
convenient for exploring results without pytest.  Expensive shared
artefacts are cached exactly as in the benchmarks (``.repro_cache/``).

Grid-style experiments (``fig11-12``, ``fig13``, ``fig14``, ``table05``)
fan their independent runs out across ``--jobs`` worker processes via
:mod:`repro.experiments.parallel`; output is identical for any job count.
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main"]

EXPERIMENTS = (
    "fig02",
    "fig04",
    "table05",
    "fig09",
    "fig10",
    "fig11-12",
    "fig13",
    "table06",
    "fig14",
    "summary",
)


class _ProgressReporter:
    """Per-run completion lines on stderr (``--progress``).

    Fires from :func:`repro.experiments.parallel.run_many`'s
    ``on_complete`` hook in the parent process; completion order may
    differ from plan order under ``--jobs > 1``, which is fine for a
    progress log.  Results themselves stay ordered by plan.
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self._t0 = time.perf_counter()

    def __call__(self, plan, _result) -> None:
        self.done += 1
        elapsed = time.perf_counter() - self._t0
        label = plan.label or getattr(plan.fn, "__name__", "run")
        print(
            f"[{elapsed:7.1f}s] done #{self.done}: {label}",
            file=self.stream,
            flush=True,
        )


def _run(
    name: str,
    apps: list[str] | None,
    jobs: int | None,
    on_complete=None,
) -> str:
    if name == "fig02":
        from repro.experiments.fig02_backpressure import run_all_chains

        return "\n\n".join(hm.render() for hm in run_all_chains().values())
    if name == "fig04":
        from repro.experiments.fig04_thresholds import run_threshold_profiling

        return run_threshold_profiling().render()
    if name == "table05":
        from repro.experiments.table05_exploration import run_table05

        return run_table05(jobs=jobs, on_complete=on_complete).render()
    if name == "fig09":
        from repro.experiments.fig09_10_model_accuracy import (
            FIG9_CLASSES,
            run_model_accuracy,
        )

        return run_model_accuracy("social-network", FIG9_CLASSES).render()
    if name == "fig10":
        from repro.experiments.fig09_10_model_accuracy import run_model_accuracy

        return run_model_accuracy(
            "video-pipeline", ("high-priority", "low-priority")
        ).render()
    if name == "fig11-12":
        from repro.experiments.fig11_12_performance import run_performance_grid

        grid = run_performance_grid(
            tuple(apps)
            if apps
            else (
                "social-network",
                "vanilla-social-network",
                "media-service",
                "video-pipeline",
            ),
            jobs=jobs,
            on_complete=on_complete,
        )
        return grid.violation_table() + "\n\n" + grid.cpu_table()
    if name == "fig13":
        from repro.experiments.fig13_diurnal import run_diurnal_trace

        return run_diurnal_trace(jobs=jobs, on_complete=on_complete).render()
    if name == "table06":
        from repro.experiments.table06_control_plane import run_table06

        return run_table06().render()
    if name == "fig14":
        from repro.experiments.fig14_service_change import run_service_change

        return run_service_change(jobs=jobs, on_complete=on_complete).render()
    if name == "summary":
        from repro.experiments.summary import summarize

        return summarize()
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce one Ursa (HPCA 2024) table or figure.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument(
        "--apps",
        help="comma-separated application subset (fig11-12 only)",
        default=None,
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for grid experiments (default: scheduler-"
            "visible CPU count, or the REPRO_JOBS env var); results are "
            "identical for any value"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "print a line to stderr as each fanned-out run completes "
            "(grid experiments only); never affects results"
        ),
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    apps = args.apps.split(",") if args.apps else None
    on_complete = _ProgressReporter() if args.progress else None
    print(_run(args.experiment, apps, args.jobs, on_complete=on_complete))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
