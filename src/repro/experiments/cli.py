"""Command-line entry point: ``python -m repro <experiment>``.

Runs a single paper experiment and prints its rendered tables/series --
convenient for exploring results without pytest.  Expensive shared
artefacts are cached exactly as in the benchmarks (``.repro_cache/``).

Grid-style experiments (``fig11-12``, ``fig13``, ``fig14``, ``table05``)
fan their independent runs out across ``--jobs`` worker processes via
:mod:`repro.experiments.parallel`; output is identical for any job count.
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main"]

EXPERIMENTS = (
    "fig02",
    "fig04",
    "table05",
    "fig09",
    "fig10",
    "fig11-12",
    "fig13",
    "table06",
    "fig14",
    "fleet",
    "summary",
)


class _ProgressReporter:
    """Per-run completion lines on stderr (``--progress``).

    Fires from :func:`repro.experiments.parallel.run_many`'s
    ``on_complete`` hook in the parent process; completion order may
    differ from plan order under ``--jobs > 1``, which is fine for a
    progress log.  Results themselves stay ordered by plan.
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self._t0 = time.perf_counter()

    def __call__(self, plan, _result) -> None:
        self.done += 1
        elapsed = time.perf_counter() - self._t0
        label = plan.label or getattr(plan.fn, "__name__", "run")
        print(
            f"[{elapsed:7.1f}s] done #{self.done}: {label}",
            file=self.stream,
            flush=True,
        )


#: Experiments whose runs can sample span trees (``--dump-traces``).
_TRACEABLE = frozenset({"fig09", "fig10", "fig11-12"})


def _run(
    name: str,
    apps: list[str] | None,
    jobs: int | None,
    on_complete=None,
    trace_runs: bool = False,
    report_runs: bool = False,
    cells: int = 8,
    smoke: bool = False,
):
    """Run one experiment.

    Returns ``(text, meta, jsonl_by_source, report, html)``.  ``meta``
    is the provenance :class:`~repro.experiments.store.RunMeta`
    persisted alongside the text when ``--save`` is given; ``summary``
    aggregates other results and carries no provenance of its own.
    ``jsonl_by_source`` holds each traced run's serialized span trees
    (non-empty only with ``trace_runs``, for ``--dump-traces``).
    ``report`` is the ``(text, html, meta)`` dashboard bundle when
    ``report_runs`` (fig11-12 only); ``html`` is an HTML rendering of
    the main output saved as a sidecar-recorded artifact (fleet only).
    """
    if name == "fleet":
        from repro.api import RunOptions, SLOOptions, simulate_fleet
        from repro.fleet import default_fleet, fleet_report

        options = RunOptions(digest=True, scale="fleet", slo=SLOOptions())
        if smoke:
            # CI-sized fleet: shorter cells (the probe epoch derives its
            # own durations from these), same determinism guarantees.
            options = options.replace(duration_s=160.0, measure_from_s=40.0)
        result = simulate_fleet(
            default_fleet(cells),
            options=options,
            jobs=jobs,
            on_complete=on_complete,
        )
        text, html, meta = fleet_report(result)
        return text, meta, {}, None, html
    if name == "fig02":
        from repro.experiments.fig02_backpressure import (
            experiment_meta,
            render_report,
            run_all_chains,
        )

        heatmaps = run_all_chains()
        return render_report(heatmaps), experiment_meta(heatmaps), {}, None, None
    if name == "fig04":
        from repro.experiments.fig04_thresholds import (
            experiment_meta,
            run_threshold_profiling,
        )

        curves = run_threshold_profiling()
        return curves.render(), experiment_meta(curves), {}, None, None
    if name == "table05":
        from repro.experiments.table05_exploration import (
            experiment_meta,
            run_table05,
        )

        table = run_table05(jobs=jobs, on_complete=on_complete)
        return table.render(), experiment_meta(table), {}, None, None
    if name in ("fig09", "fig10"):
        from repro.experiments.fig09_10_model_accuracy import (
            FIG9_10_SEED,
            FIG9_CLASSES,
            experiment_meta,
            run_model_accuracy,
        )
        from repro.experiments.runner import RunOptions, TracingOptions

        app_name, classes = (
            ("social-network", FIG9_CLASSES)
            if name == "fig09"
            else ("video-pipeline", ("high-priority", "low-priority"))
        )
        result = run_model_accuracy(
            app_name,
            classes,
            options=RunOptions(
                seed=FIG9_10_SEED,
                digest=True,
                tracing=TracingOptions() if trace_runs else None,
            ),
        )
        sources = (
            {app_name: result.traces.jsonl} if result.traces is not None else {}
        )
        return (
            result.render(),
            experiment_meta(result, _RESULT_NAMES[name]),
            sources,
            None,
            None,
        )
    if name == "fig11-12":
        from repro.experiments.fig11_12_performance import (
            FIG11_12_SEED,
            experiment_meta,
            report_artifacts,
            run_performance_grid,
        )
        from repro.experiments.runner import (
            RunOptions,
            SLOOptions,
            TracingOptions,
        )

        grid = run_performance_grid(
            tuple(apps)
            if apps
            else (
                "social-network",
                "vanilla-social-network",
                "media-service",
                "video-pipeline",
            ),
            options=RunOptions(
                seed=FIG11_12_SEED,
                digest=True,
                tracing=(
                    TracingOptions() if (trace_runs or report_runs) else None
                ),
                slo=SLOOptions() if report_runs else None,
            ),
            jobs=jobs,
            on_complete=on_complete,
        )
        text = grid.violation_table() + "\n\n" + grid.cpu_table()
        sources = {
            f"{app}.{load}.{manager}": result.traces.jsonl
            for (app, load, manager), result in sorted(grid.results.items())
            if result is not None and result.traces is not None
        }
        report = report_artifacts(grid) if report_runs else None
        return text, experiment_meta(grid), sources, report, None
    if name == "fig13":
        from repro.experiments.fig13_diurnal import (
            experiment_meta,
            run_diurnal_trace,
        )

        trace = run_diurnal_trace(jobs=jobs, on_complete=on_complete)
        return trace.render(), experiment_meta(trace), {}, None, None
    if name == "table06":
        from repro.experiments.table06_control_plane import (
            experiment_meta,
            run_table06,
        )

        table = run_table06()
        return table.render(), experiment_meta(table), {}, None, None
    if name == "fig14":
        from repro.experiments.fig14_service_change import (
            experiment_meta,
            run_service_change,
        )

        result = run_service_change(jobs=jobs, on_complete=on_complete)
        return result.render(), experiment_meta(result), {}, None, None
    if name == "summary":
        from repro.experiments.summary import summarize

        return summarize(), None, {}, None, None
    raise ValueError(f"unknown experiment {name!r}")


#: CLI experiment name -> results-store name (shared with benchmarks/,
#: so ``--save`` updates the same sidecars the benchmark suite checks).
_RESULT_NAMES = {
    "fig02": "fig02_backpressure",
    "fig04": "fig04_thresholds",
    "table05": "table05_exploration",
    "fig09": "fig09_model_accuracy",
    "fig10": "fig10_model_accuracy",
    "fig11-12": "fig11_12_performance",
    "fig13": "fig13_diurnal",
    "table06": "table06_control_plane",
    "fig14": "fig14_service_change",
    # "fleet" saves as fleet_smoke instead when --smoke is given; both
    # route to results/fleet/ via the sidecar's scale field.
    "fleet": "fleet",
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce one Ursa (HPCA 2024) table or figure.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument(
        "--apps",
        help="comma-separated application subset (fig11-12 only)",
        default=None,
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for grid experiments (default: scheduler-"
            "visible CPU count, or the REPRO_JOBS env var); results are "
            "identical for any value"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "print a line to stderr as each fanned-out run completes "
            "(grid experiments only); never affects results"
        ),
    )
    parser.add_argument(
        "--dump-traces",
        type=int,
        default=None,
        metavar="N",
        help=(
            "sample span trees during the run and persist the N slowest "
            "sampled requests per request class as Chrome trace_event "
            "files under results/traces/ (fig09, fig10, fig11-12); "
            "tracing is a pure observer and never changes results"
        ),
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help=(
            "run with the SLO monitor and span tracing on (both pure "
            "observers; results are unchanged) and persist the "
            "deterministic run dashboard -- results/fig11_12_report.txt "
            "plus a standalone fig11_12_report.html pinned by the "
            "results store (fig11-12 only)"
        ),
    )
    parser.add_argument(
        "--cells",
        type=int,
        default=None,
        metavar="N",
        help=(
            "number of tenant cells in the fleet (fleet only; default 8, "
            "or 4 with --smoke)"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI-sized fleet run: 4 cells by default and shortened per-"
            "cell durations; --save persists as fleet_smoke instead of "
            "fleet (fleet only)"
        ),
    )
    parser.add_argument(
        "--save",
        action="store_true",
        help=(
            "persist the rendered output and its provenance sidecar to "
            "results/ via the results store (fails if a recorded "
            "deterministic run no longer reproduces; set "
            "REPRO_RESULTS_UPDATE=1 to accept the change)"
        ),
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.save and args.experiment not in _RESULT_NAMES:
        parser.error(f"--save is not supported for {args.experiment!r}")
    if args.report and args.experiment != "fig11-12":
        parser.error("--report is only supported for fig11-12")
    if args.experiment != "fleet" and (args.cells is not None or args.smoke):
        parser.error("--cells/--smoke are only supported for fleet")
    if args.cells is not None and args.cells < 1:
        parser.error(f"--cells must be >= 1, got {args.cells}")
    cells = args.cells if args.cells is not None else (4 if args.smoke else 8)
    if args.dump_traces is not None:
        if args.experiment not in _TRACEABLE:
            parser.error(
                f"--dump-traces is not supported for {args.experiment!r} "
                f"(traceable: {', '.join(sorted(_TRACEABLE))})"
            )
        if args.dump_traces < 1:
            parser.error(f"--dump-traces must be >= 1, got {args.dump_traces}")
    apps = args.apps.split(",") if args.apps else None
    on_complete = _ProgressReporter() if args.progress else None
    if args.experiment in (
        "table05",
        "fig11-12",
        "fig13",
        "fig14",
        "fleet",
        "summary",
    ):
        from repro.experiments.parallel import default_jobs, warm_pool

        # One worker pool per CLI invocation: warmed here, reused by
        # every grid the experiment fans out (see repro.experiments
        # .parallel; workers fork after imports are done).
        if (args.jobs or default_jobs()) > 1:
            warm_pool(args.jobs)
    text, meta, trace_sources, report, html = _run(
        args.experiment,
        apps,
        args.jobs,
        on_complete=on_complete,
        trace_runs=args.dump_traces is not None,
        report_runs=args.report,
        cells=cells,
        smoke=args.smoke,
    )
    print(text)
    if args.save and meta is not None:
        from repro.experiments import store

        result_name = _RESULT_NAMES[args.experiment]
        if args.experiment == "fleet" and args.smoke:
            result_name = "fleet_smoke"
        path = store.save_result(
            result_name,
            text,
            meta,
            artifacts=(
                {f"{result_name}.html": html} if html is not None else None
            ),
        )
        print(f"[saved to {path}]", file=sys.stderr)
    if report is not None:
        from repro.experiments import store

        report_text, report_html, report_meta = report
        print(report_text)
        path = store.save_result(
            "fig11_12_report",
            report_text,
            report_meta,
            artifacts={"fig11_12_report.html": report_html},
        )
        print(
            f"[report saved to {path} + fig11_12_report.html]",
            file=sys.stderr,
        )
    if args.dump_traces is not None and trace_sources:
        from repro.experiments.traces import dump_slowest_traces

        paths = dump_slowest_traces(
            trace_sources,
            args.dump_traces,
            "results/traces",
            _RESULT_NAMES[args.experiment],
        )
        print(
            f"[wrote {len(paths)} trace files under "
            f"results/traces/{_RESULT_NAMES[args.experiment]}/]",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
