"""Command-line entry point: ``python -m repro <experiment>``.

Runs a single paper experiment and prints its rendered tables/series --
convenient for exploring results without pytest.  Expensive shared
artefacts are cached exactly as in the benchmarks (``.repro_cache/``).

Grid-style experiments (``fig11-12``, ``fig13``, ``fig14``, ``table05``)
fan their independent runs out across ``--jobs`` worker processes via
:mod:`repro.experiments.parallel`; output is identical for any job count.
"""

from __future__ import annotations

import argparse
import sys
import time

__all__ = ["main"]

EXPERIMENTS = (
    "fig02",
    "fig04",
    "table05",
    "fig09",
    "fig10",
    "fig11-12",
    "fig13",
    "table06",
    "fig14",
    "summary",
)


class _ProgressReporter:
    """Per-run completion lines on stderr (``--progress``).

    Fires from :func:`repro.experiments.parallel.run_many`'s
    ``on_complete`` hook in the parent process; completion order may
    differ from plan order under ``--jobs > 1``, which is fine for a
    progress log.  Results themselves stay ordered by plan.
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.done = 0
        self._t0 = time.perf_counter()

    def __call__(self, plan, _result) -> None:
        self.done += 1
        elapsed = time.perf_counter() - self._t0
        label = plan.label or getattr(plan.fn, "__name__", "run")
        print(
            f"[{elapsed:7.1f}s] done #{self.done}: {label}",
            file=self.stream,
            flush=True,
        )


def _run(
    name: str,
    apps: list[str] | None,
    jobs: int | None,
    on_complete=None,
):
    """Run one experiment; returns ``(text, meta_or_None)``.

    ``meta`` is the provenance :class:`~repro.experiments.store.RunMeta`
    persisted alongside the text when ``--save`` is given; ``summary``
    aggregates other results and carries no provenance of its own.
    """
    if name == "fig02":
        from repro.experiments.fig02_backpressure import (
            experiment_meta,
            render_report,
            run_all_chains,
        )

        heatmaps = run_all_chains()
        return render_report(heatmaps), experiment_meta(heatmaps)
    if name == "fig04":
        from repro.experiments.fig04_thresholds import (
            experiment_meta,
            run_threshold_profiling,
        )

        curves = run_threshold_profiling()
        return curves.render(), experiment_meta(curves)
    if name == "table05":
        from repro.experiments.table05_exploration import (
            experiment_meta,
            run_table05,
        )

        table = run_table05(jobs=jobs, on_complete=on_complete)
        return table.render(), experiment_meta(table)
    if name in ("fig09", "fig10"):
        from repro.experiments.fig09_10_model_accuracy import (
            FIG9_10_SEED,
            FIG9_CLASSES,
            experiment_meta,
            run_model_accuracy,
        )
        from repro.experiments.runner import RunOptions

        app_name, classes = (
            ("social-network", FIG9_CLASSES)
            if name == "fig09"
            else ("video-pipeline", ("high-priority", "low-priority"))
        )
        result = run_model_accuracy(
            app_name,
            classes,
            options=RunOptions(seed=FIG9_10_SEED, digest=True),
        )
        return result.render(), experiment_meta(result, _RESULT_NAMES[name])
    if name == "fig11-12":
        from repro.experiments.fig11_12_performance import (
            experiment_meta,
            run_performance_grid,
        )

        grid = run_performance_grid(
            tuple(apps)
            if apps
            else (
                "social-network",
                "vanilla-social-network",
                "media-service",
                "video-pipeline",
            ),
            jobs=jobs,
            on_complete=on_complete,
        )
        text = grid.violation_table() + "\n\n" + grid.cpu_table()
        return text, experiment_meta(grid)
    if name == "fig13":
        from repro.experiments.fig13_diurnal import (
            experiment_meta,
            run_diurnal_trace,
        )

        trace = run_diurnal_trace(jobs=jobs, on_complete=on_complete)
        return trace.render(), experiment_meta(trace)
    if name == "table06":
        from repro.experiments.table06_control_plane import (
            experiment_meta,
            run_table06,
        )

        table = run_table06()
        return table.render(), experiment_meta(table)
    if name == "fig14":
        from repro.experiments.fig14_service_change import (
            experiment_meta,
            run_service_change,
        )

        result = run_service_change(jobs=jobs, on_complete=on_complete)
        return result.render(), experiment_meta(result)
    if name == "summary":
        from repro.experiments.summary import summarize

        return summarize(), None
    raise ValueError(f"unknown experiment {name!r}")


#: CLI experiment name -> results-store name (shared with benchmarks/,
#: so ``--save`` updates the same sidecars the benchmark suite checks).
_RESULT_NAMES = {
    "fig02": "fig02_backpressure",
    "fig04": "fig04_thresholds",
    "table05": "table05_exploration",
    "fig09": "fig09_model_accuracy",
    "fig10": "fig10_model_accuracy",
    "fig11-12": "fig11_12_performance",
    "fig13": "fig13_diurnal",
    "table06": "table06_control_plane",
    "fig14": "fig14_service_change",
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce one Ursa (HPCA 2024) table or figure.",
    )
    parser.add_argument("experiment", choices=EXPERIMENTS)
    parser.add_argument(
        "--apps",
        help="comma-separated application subset (fig11-12 only)",
        default=None,
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for grid experiments (default: scheduler-"
            "visible CPU count, or the REPRO_JOBS env var); results are "
            "identical for any value"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "print a line to stderr as each fanned-out run completes "
            "(grid experiments only); never affects results"
        ),
    )
    parser.add_argument(
        "--save",
        action="store_true",
        help=(
            "persist the rendered output and its provenance sidecar to "
            "results/ via the results store (fails if a recorded "
            "deterministic run no longer reproduces; set "
            "REPRO_RESULTS_UPDATE=1 to accept the change)"
        ),
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.save and args.experiment not in _RESULT_NAMES:
        parser.error(f"--save is not supported for {args.experiment!r}")
    apps = args.apps.split(",") if args.apps else None
    on_complete = _ProgressReporter() if args.progress else None
    text, meta = _run(args.experiment, apps, args.jobs, on_complete=on_complete)
    print(text)
    if args.save and meta is not None:
        from repro.experiments import store

        path = store.save_result(_RESULT_NAMES[args.experiment], text, meta)
        print(f"[saved to {path}]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
