"""Fig. 2 -- backpressure propagation through three 5-tier chains.

Each chain (nested RPC, event-driven RPC, MQ) is stress-tested for ten
minutes; between minutes 3 and 6 the leaf tier's CPU is throttled.  The
output is the per-tier p99 response time per minute -- the paper's
heatmap.  Expected shape:

* nested RPC: strong latency inflation at tier 4 (the parent of the
  culprit), diminishing up the chain, negligible above tier 3;
* event-driven RPC: the same pattern, weaker;
* MQ: no upstream inflation at all (only the throttled tier itself).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.chains import CHAIN_CLASS, build_chain_spec, tier_name
from repro.experiments.report import render_heatmap
from repro.experiments.runner import make_app, scale_profile
from repro.experiments.store import RunMeta
from repro.net.messages import CallMode
from repro.sim.random import RandomStreams
from repro.sim.trace import RunDigest
from repro.workload.generator import LoadGenerator
from repro.workload.mixes import RequestMix
from repro.workload.patterns import ConstantLoad

__all__ = [
    "ChainHeatmap",
    "run_chain",
    "run_all_chains",
    "backpressure_factor",
    "render_report",
    "experiment_meta",
]

#: Experiment timeline (seconds): 10 one-minute columns, throttle in 3-6.
MINUTES = 10
THROTTLE_START_MIN = 3
THROTTLE_END_MIN = 6

#: Default seed for the three chain runs.
FIG2_SEED = 5


@dataclass
class ChainHeatmap:
    """Per-tier p99 response times (ms), one row per tier, one col/minute."""

    mode: CallMode
    tiers: int
    values: list[list[float]]  # [tier][minute]
    #: Event-trace checksum of the chain's run (``digest=True``).
    run_digest: str | None = None

    def render(self) -> str:
        return render_heatmap(
            title=f"Fig.2 ({self.mode.value}) p99 response time per tier (ms)",
            row_labels=[tier_name(i) for i in range(1, self.tiers + 1)],
            col_labels=[f"m{m}" for m in range(MINUTES)],
            values=self.values,
        )


def run_chain(
    mode: CallMode,
    tiers: int = 5,
    rps: float = 120.0,
    work_mean_s: float = 0.010,
    replicas: int = 2,
    throttle_factor: float = 0.25,
    seed: int = FIG2_SEED,
    digest: bool = True,
) -> ChainHeatmap:
    """One chain's ten-minute stress test with mid-run leaf throttling."""
    spec = build_chain_spec(mode, tiers=tiers, work_mean_s=work_mean_s)
    run_digest = RunDigest() if digest else None
    app = make_app(spec, seed=seed, initial_replicas=replicas, trace=run_digest)
    app.env.run(until=10)
    # A Locust-style bounded user pool: under overload the backlog queues
    # at the client, so per-tier response times reflect backpressure, not
    # an unbounded arrival queue at tier 1 (matching the paper's setup).
    tier1_threads = (
        spec.service(tier_name(1)).threads_per_cpu
        * spec.service(tier_name(1)).cpus_per_replica
        * replicas
    )
    LoadGenerator(
        app,
        pattern=ConstantLoad(rps),
        mix=RequestMix({CHAIN_CLASS: 1.0}),
        streams=RandomStreams(seed + 1),
        max_outstanding=tier1_threads,
    ).start()
    leaf = app.services[tier_name(tiers)]
    env = app.env
    t0 = env.now
    values = [[0.0] * MINUTES for _ in range(tiers)]
    for minute in range(MINUTES):
        if minute == THROTTLE_START_MIN:
            leaf.set_speed_factor(throttle_factor)
        if minute == THROTTLE_END_MIN:
            leaf.set_speed_factor(1.0)
        w0 = t0 + minute * 60.0
        env.run(until=w0 + 60.0)
        for i in range(1, tiers + 1):
            p99 = app.hub.latency_percentile(
                "service_latency",
                99.0,
                w0,
                w0 + 60.0,
                {"service": tier_name(i), "request": CHAIN_CLASS},
                default=0.0,
            )
            values[i - 1][minute] = p99 * 1000.0
    return ChainHeatmap(
        mode=mode,
        tiers=tiers,
        values=values,
        run_digest=run_digest.hexdigest() if run_digest is not None else None,
    )


def run_all_chains(**kwargs) -> dict[CallMode, ChainHeatmap]:
    """All three Fig. 2 panels."""
    return {mode: run_chain(mode, **kwargs) for mode in CallMode}


def render_report(heatmaps: dict[CallMode, ChainHeatmap]) -> str:
    """Canonical rendered text for ``results/fig02_backpressure.txt``.

    Shared by the CLI and the benchmark so both save byte-identical text
    under the same sidecar identity: the three heatmaps followed by the
    per-tier inflation-factor summary.
    """
    text = "\n\n".join(hm.render() for hm in heatmaps.values())
    summary = ["", "backpressure factors (throttled/baseline p99):"]
    for mode, hm in heatmaps.items():
        factors = {t: backpressure_factor(hm, t) for t in range(1, 6)}
        summary.append(
            f"  {mode.value}: "
            + "  ".join(f"tier{t}={f:.2f}" for t, f in factors.items())
        )
    return text + "\n" + "\n".join(summary)


def backpressure_factor(heatmap: ChainHeatmap, tier: int) -> float:
    """Latency inflation of ``tier`` during throttling vs before.

    The quantitative summary of the heatmap: ratio of the tier's mean p99
    during the throttled minutes to its mean p99 in the pre-throttle
    minutes.  ~1.0 means no backpressure reached the tier.
    """
    row = heatmap.values[tier - 1]
    before = row[:THROTTLE_START_MIN]
    during = row[THROTTLE_START_MIN:THROTTLE_END_MIN]
    base = sum(before) / len(before)
    throttled = sum(during) / len(during)
    if base <= 0:
        return float("inf") if throttled > 0 else 1.0
    return throttled / base


def experiment_meta(
    heatmaps: dict[CallMode, ChainHeatmap], seed: int = FIG2_SEED
) -> RunMeta:
    """Provenance sidecar for the Fig. 2 output (one run per chain)."""
    return RunMeta(
        experiment="fig02",
        scale=scale_profile().name,
        seeds={mode.value: seed for mode in heatmaps},
        digests={
            mode.value: hm.run_digest
            for mode, hm in heatmaps.items()
            if hm.run_digest is not None
        },
        summaries={
            mode.value: {
                f"tier{t}_inflation_x": round(backpressure_factor(hm, t), 6)
                for t in range(1, hm.tiers + 1)
            }
            for mode, hm in heatmaps.items()
        },
    )
