"""Fig. 4 -- backpressure-free threshold profiling curves.

Profiles the two services the paper shows -- the *post* service (querying
post contents) and the *timeline-read* service (querying timeline post
IDs) -- with the Fig. 3 engine, and reports the full curve: proxy p99
mean +- std, tested-service p99, and CPU utilisation per CPU limit, plus
the recorded threshold.  Paper values: 46.2 % (post) and 60.0 %
(timeline-read); the reproduction should land in the same 40-70 % band,
with the proxy latency having risen >5x under significant backpressure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.backpressure import BackpressureProfile, BackpressureProfiler
from repro.experiments.report import render_table
from repro.experiments.runner import scale_profile
from repro.experiments.store import RunMeta
from repro.sim.random import LogNormal, RandomStreams
from repro.sim.trace import RunDigest

__all__ = [
    "ThresholdCurves",
    "run_threshold_profiling",
    "PROFILED_SERVICES",
    "experiment_meta",
]

#: Default profiler seed.
FIG4_SEED = 3

#: The two §III case-study services with their handler work models.
PROFILED_SERVICES = {
    "post": LogNormal(0.0050, 0.5),
    "timeline-read": LogNormal(0.0120, 0.6),
}


@dataclass
class ThresholdCurves:
    profiles: dict[str, BackpressureProfile]
    #: service -> hex event-trace digest of its full profiling ramp
    #: (empty when profiling ran with ``digest=False``).
    digests: dict[str, str] = field(default_factory=dict)

    def render(self) -> str:
        blocks = []
        for name, profile in self.profiles.items():
            rows = [
                (
                    p.cpu_limit,
                    f"{p.proxy_p99_mean * 1000:.2f}",
                    f"{p.proxy_p99_std * 1000:.2f}",
                    f"{p.tested_p99 * 1000:.2f}",
                    f"{p.utilization:.3f}",
                )
                for p in profile.points
            ]
            blocks.append(
                render_table(
                    ["cpu_limit", "proxy_p99_ms", "std_ms", "tested_p99_ms", "util"],
                    rows,
                    title=(
                        f"Fig.4 {name}: threshold="
                        f"{profile.threshold_utilization:.1%} "
                        f"(converged at limit {profile.converged_cpu_limit})"
                    ),
                )
            )
        return "\n\n".join(blocks)


def run_threshold_profiling(
    max_cpu_limit: int = 8, seed: int = FIG4_SEED, digest: bool = True
) -> ThresholdCurves:
    profile = scale_profile()
    profiler = BackpressureProfiler(
        RandomStreams(seed),
        window_s=profile.bp_window_s,
        samples_per_limit=profile.bp_samples_per_limit,
    )
    results: dict[str, BackpressureProfile] = {}
    digests: dict[str, str] = {}
    for name, work in PROFILED_SERVICES.items():
        # One digest per service spans its whole CPU-limit ramp (every
        # per-limit environment feeds the same hook).
        run_digest = RunDigest() if digest else None
        results[name] = profiler.profile(
            name, work, max_cpu_limit=max_cpu_limit, trace=run_digest
        )
        if run_digest is not None:
            digests[name] = run_digest.hexdigest()
    return ThresholdCurves(profiles=results, digests=digests)


def experiment_meta(curves: ThresholdCurves, seed: int = FIG4_SEED) -> RunMeta:
    """Provenance sidecar for the Fig. 4 output.

    The profiler installs the caller's event-trace hook on every
    per-limit measurement environment, so the sidecar pins one
    engine-level digest per profiled service alongside the content hash.
    """
    return RunMeta(
        experiment="fig04",
        scale=scale_profile().name,
        seeds={name: seed for name in curves.profiles},
        digests=dict(curves.digests),
        summaries={
            name: {
                "threshold_utilization": round(p.threshold_utilization, 9),
                "converged_cpu_limit": float(p.converged_cpu_limit),
            }
            for name, p in curves.profiles.items()
        },
    )
