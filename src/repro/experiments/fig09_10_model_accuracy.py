"""Figs. 9 & 10 -- estimated vs measured latency.

Runs an Ursa-managed deployment, and every evaluation window compares the
measured SLA-percentile latency of each request class against the model's
estimate: the MIP's sum-of-percentiles bound multiplied by the expected
overestimation ratio (§IV's mitigation, tracked online with an EWMA).  The
estimate for window *k* uses only observations from windows before *k*,
so the comparison is out-of-sample.

Paper shapes: estimates track measurements closely, with mean
estimated/measured ratios of 0.97-1.05 (social network, Fig. 9) and
0.96 / 1.00 (video pipeline priorities, Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.manager import UrsaManager
from repro.core.overestimation import OverestimationTracker
from repro.experiments import artifacts
from repro.experiments.report import render_attribution, render_series
from repro.experiments.runner import (
    RunOptions,
    TraceArtifacts,
    TracingOptions,
    make_app,
    scale_profile,
)
from repro.experiments.store import RunMeta
from repro.sim.random import RandomStreams
from repro.sim.trace import RunDigest
from repro.telemetry.tracing import traces_to_jsonl
from repro.workload.defaults import default_mix_for
from repro.workload.generator import LoadGenerator
from repro.workload.patterns import ConstantLoad

__all__ = [
    "AccuracySeries",
    "ModelAccuracyResult",
    "run_model_accuracy",
    "experiment_meta",
]

#: Fig. 9's four representative social-network request types.
FIG9_CLASSES = (
    "upload-post",
    "update-timeline",
    "object-detect",
    "sentiment-analysis",
)


@dataclass
class AccuracySeries:
    request_class: str
    percentile: float
    #: (window start time, measured, estimated) triples.
    points: list[tuple[float, float, float]] = field(default_factory=list)

    @property
    def mean_ratio(self) -> float:
        """Mean estimated/measured ratio (the paper's summary statistic)."""
        ratios = [e / m for _, m, e in self.points if m > 0]
        if not ratios:
            return float("nan")
        return sum(ratios) / len(ratios)

    def render(self) -> str:
        measured = render_series(
            f"measured p{self.percentile:g} [{self.request_class}]",
            [(t, m) for t, m, _ in self.points],
            "t_s",
            "latency_s",
        )
        estimated = render_series(
            f"estimated p{self.percentile:g} [{self.request_class}]",
            [(t, e) for t, _, e in self.points],
            "t_s",
            "latency_s",
        )
        return f"{measured}\n{estimated}\nmean est/meas ratio: {self.mean_ratio:.3f}"


@dataclass
class ModelAccuracyResult:
    app_name: str
    series: dict[str, AccuracySeries]
    #: Per-class critical-path attribution (set when tracing was on).
    critical_path: str | None = None
    traced_requests: int = 0
    #: Serialized span trees (set when tracing was on) -- the raw input
    #: to the ``--dump-traces`` flag's Chrome-trace export.
    traces: TraceArtifacts | None = field(repr=False, default=None)
    #: Event-trace checksum (set when ``options.digest``).  Persisted in
    #: the ``results/`` sidecar by :func:`experiment_meta`, not rendered
    #: -- provenance lives next to the text, not inside it.
    run_digest: str | None = None

    def render(self) -> str:
        parts = ["\n\n".join(s.render() for s in self.series.values())]
        if self.critical_path is not None:
            parts.append(
                f"critical path ({self.traced_requests} traced requests):\n"
                f"{self.critical_path}"
            )
        return "\n\n".join(parts)


#: Historical default seed for Fig. 9/10 runs (predates RunOptions).
FIG9_10_SEED = 17


def run_model_accuracy(
    app_name: str,
    classes: tuple[str, ...] | None = None,
    window_s: float = 60.0,
    options: RunOptions | None = None,
) -> ModelAccuracyResult:
    """Deploy under Ursa and collect measured-vs-estimated series.

    Per-run knobs travel in ``options``.  With ``options.tracing`` the
    run also samples span trees and reports where each class's latency
    accrues -- the request-level cross-check of the model's per-service
    latency targets.  ``options.digest`` additionally checksums the full
    event trace (reproducibility fingerprint).
    """
    # This experiment's historical default seed differs from RunOptions'
    # 0; keep rendered outputs stable for callers that pass no options.
    options = options if options is not None else RunOptions(seed=FIG9_10_SEED)
    profile = options.profile()
    duration = options.resolved_duration_s()
    spec = artifacts.app_spec(app_name)
    mix = default_mix_for(app_name)
    rps = artifacts.app_rps(app_name)
    exploration = artifacts.exploration_result(app_name)
    run_digest = RunDigest() if options.digest else None
    tracer = (
        options.tracing.build_tracer() if options.tracing is not None else None
    )
    app = make_app(spec, seed=options.seed, trace=run_digest, tracer=tracer)
    if tracer is not None:
        tracer.hub = app.hub
    app.env.run(until=10)
    manager = UrsaManager(app, exploration)
    class_loads = {c: rps * mix.fraction(c) for c in mix.classes()}
    manager.initialize(class_loads)
    manager.start()
    LoadGenerator(
        app,
        pattern=ConstantLoad(rps),
        mix=mix,
        streams=RandomStreams(options.seed + 1),
        stop_at_s=duration,
    ).start()

    wanted = classes if classes is not None else tuple(
        rc.name for rc in spec.request_classes
    )
    slas = {rc.name: rc.sla for rc in spec.request_classes}
    tracker = OverestimationTracker()
    series = {
        name: AccuracySeries(name, slas[name].percentile) for name in wanted
    }
    env = app.env
    start = profile.measure_from_s
    env.run(until=start)
    t = start
    while t + window_s <= duration:
        env.run(until=t + window_s)
        assert manager.outcome is not None
        for name in wanted:
            dist = app.hub.latency_distribution(
                "request_latency", t, t + window_s, {"request": name}
            )
            bound = manager.outcome.predicted_bounds.get(name)
            if not dist or bound is None or dist.count < 10:
                continue
            measured = dist.percentile(slas[name].percentile)
            estimate = tracker.estimate(name, bound)  # pre-observation
            series[name].points.append((t, measured, estimate))
            tracker.observe(name, measured, bound)
        t += window_s
    critical_path = None
    traced = 0
    trace_artifacts = None
    if tracer is not None:
        traced = len(tracer.finished)
        critical_path = render_attribution(
            tracer.summary(window_s=window_s), title=None
        )
        trace_artifacts = TraceArtifacts(
            traced_requests=traced,
            jsonl=traces_to_jsonl(tracer.finished),
            summary=tracer.summary().render(),
        )
    return ModelAccuracyResult(
        app_name=app_name,
        series=series,
        critical_path=critical_path,
        traced_requests=traced,
        traces=trace_artifacts,
        run_digest=run_digest.hexdigest() if run_digest is not None else None,
    )


def experiment_meta(
    result: ModelAccuracyResult,
    experiment: str,
    seed: int = FIG9_10_SEED,
) -> RunMeta:
    """Provenance sidecar for a Fig. 9/10 output (one Ursa deployment)."""
    digests = {}
    if result.run_digest is not None:
        digests[result.app_name] = result.run_digest
    return RunMeta(
        experiment=experiment,
        scale=scale_profile().name,
        seeds={result.app_name: seed},
        digests=digests,
        summaries={
            name: {
                "windows": float(len(series.points)),
                "mean_est_over_meas": round(series.mean_ratio, 9),
            }
            for name, series in result.series.items()
            if series.points
        },
    )
