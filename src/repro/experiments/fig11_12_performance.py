"""Figs. 11 & 12 -- SLA violation rates and CPU allocation (§VII-E).

For each application and each load kind (constant, dynamic, skewed), run
all five systems -- Ursa, Sinan, Firm, Auto-a, Auto-b -- on identical
workloads and report the windowed SLA violation rate (Fig. 11) and the
mean CPU allocation (Fig. 12).

Expected shapes from the paper:

* Ursa: 0.1-8.5 % violations under constant/dynamic load, 0.5-2 % under
  skewed load; lowest or near-lowest CPU among SLA-preserving systems.
* Sinan/Firm: 9.1-29.2 % violations (worse under skewed: 14.2-51.9 %).
* Auto-a: cheapest CPUs but >40 % violations.
* Auto-b: violations close to Ursa but 43.9-148 % more CPUs
  (constant/dynamic).
* Under skewed load Ursa may spend some extra CPU (its conservative
  recalculation) while keeping violations low.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.experiments import artifacts
from repro.experiments.managers import (
    attach_autoscaler,
    attach_firm,
    attach_sinan,
    attach_ursa,
)
from repro.experiments.parallel import RunPlan, partition_seeds, run_many
from repro.experiments.report import (
    build_dashboard,
    render_dashboard_html,
    render_dashboard_text,
    render_table,
)
from repro.experiments.runner import (
    DeploymentResult,
    RunOptions,
    run_deployment,
    scale_profile,
)
from repro.experiments.store import RunMeta
from repro.workload.defaults import default_mix_for, skewed_mixes
from repro.workload.mixes import RequestMix
from repro.workload.patterns import ConstantLoad, DiurnalLoad

__all__ = [
    "PerformanceGrid",
    "run_performance_grid",
    "LOAD_KINDS",
    "experiment_meta",
    "grid_audit",
    "report_artifacts",
]

LOAD_KINDS = ("constant", "dynamic", "skewed")


def _pattern_for(load_kind: str, rps: float, duration_s: float):
    if load_kind == "constant":
        return ConstantLoad(rps)
    if load_kind == "dynamic":
        # Diurnal ramp peaking at 1.6x base mid-run (the paper's diurnal
        # pattern; bursts are exercised by run_burst below).
        return DiurnalLoad(low=rps * 0.7, high=rps * 1.6, period_s=duration_s)
    if load_kind == "skewed":
        return ConstantLoad(rps)
    raise ValueError(f"unknown load kind {load_kind!r}")


def _mix_for(app_name: str, load_kind: str) -> RequestMix:
    if load_kind == "skewed":
        return skewed_mixes(app_name)[0]
    return default_mix_for(app_name)


@dataclass
class PerformanceGrid:
    """(app, load, manager) -> DeploymentResult."""

    results: dict[tuple[str, str, str], DeploymentResult]
    #: (app, load) -> the workload seed shared by that cell's managers
    #: (recorded so the results sidecar can pin the seed partition).
    cell_seeds: dict[tuple[str, str], int] = field(default_factory=dict)

    def violation_table(self) -> str:
        return self._table("windowed_violation_rate", "Fig.11 SLA violation rate")

    def cpu_table(self) -> str:
        return self._table("mean_cpu_allocation", "Fig.12 mean CPU allocation")

    def _table(self, attr: str, title: str) -> str:
        keys = sorted(self.results)
        apps = sorted({k[0] for k in keys})
        loads = sorted({k[1] for k in keys})
        managers = sorted({k[2] for k in keys})
        rows = []
        for app in apps:
            for load in loads:
                row = [app, load]
                for manager in managers:
                    result = self.results.get((app, load, manager))
                    value = getattr(result, attr) if result else float("nan")
                    row.append(f"{value:.3f}")
                rows.append(row)
        return render_table(["app", "load", *managers], rows, title=title)


#: Historical default seed for Fig. 11/12 cells (predates RunOptions).
FIG11_12_SEED = 23


def run_cell(
    app_name: str,
    load_kind: str,
    manager: str,
    options: RunOptions | None = None,
) -> DeploymentResult:
    """One (app, load, manager) deployment run."""
    options = options if options is not None else RunOptions(seed=FIG11_12_SEED)
    spec = artifacts.app_spec(app_name)
    rps = artifacts.app_rps(app_name)
    duration = options.resolved_duration_s()
    mix = _mix_for(app_name, load_kind)
    pattern = _pattern_for(load_kind, rps, duration)
    exploration_mix = default_mix_for(app_name)
    if manager == "ursa":
        exploration = artifacts.exploration_result(app_name)
        # Ursa computes thresholds once, at experiment start, from the
        # *current* (possibly skewed) class loads -- §VII-E.
        class_loads = {c: rps * mix.fraction(c) for c in mix.classes()}
        attach = attach_ursa(exploration, class_loads)
    elif manager == "sinan":
        attach = attach_sinan(artifacts.sinan_predictor(app_name))
    elif manager == "firm":
        attach = attach_firm(artifacts.firm_agents(app_name))
    elif manager in ("auto-a", "auto-b"):
        attach = attach_autoscaler(manager, exploration_mix, rps)
    else:
        raise ValueError(f"unknown manager {manager!r}")
    return run_deployment(
        spec,
        mix,
        pattern,
        attach,
        manager_name=manager,
        load_name=load_kind,
        options=options,
    )


def _prewarm_artifacts(apps: tuple[str, ...], managers: tuple[str, ...]) -> None:
    """Build shared cached artefacts in the parent before forking workers.

    Exploration results / trained baselines land in ``.repro_cache`` once
    here, so N workers read the cache instead of racing to rebuild the
    same artefact N times.
    """
    for app_name in apps:
        artifacts.app_spec(app_name)
        if "ursa" in managers:
            artifacts.exploration_result(app_name)
        if "sinan" in managers:
            artifacts.sinan_predictor(app_name)
        if "firm" in managers:
            artifacts.firm_agents(app_name)


def run_performance_grid(
    apps: tuple[str, ...],
    loads: tuple[str, ...] = LOAD_KINDS,
    managers: tuple[str, ...] = ("ursa", "sinan", "firm", "auto-a", "auto-b"),
    options: RunOptions | None = None,
    jobs: int | None = None,
    on_complete=None,
) -> PerformanceGrid:
    """The full (app x load x manager) grid, fanned out across ``jobs``.

    All per-run knobs ride in ``options`` (default: digested runs under
    the historical master seed).  ``options.seed`` is a *master* seed:
    each (app, load) workload cell gets its own seed from
    :func:`partition_seeds`, shared by all managers of that cell so the
    five systems face identical request sequences.  The partition depends
    only on the master seed and the grid shape, so the merged results are
    identical for any ``jobs`` value.  ``options.tracing`` samples span
    trees in every cell (a pure observer; the simulated timeline is
    unchanged) and returns them on each cell's ``result.traces`` -- the
    input to the CLI's ``--dump-traces``; ``options.slo`` streams the SLO
    monitor the same way.
    """
    options = (
        options
        if options is not None
        else RunOptions(seed=FIG11_12_SEED, digest=True)
    )
    workloads = [(a, lo) for a in apps for lo in loads]
    seeds = dict(
        zip(
            workloads,
            partition_seeds(options.seed, len(workloads), namespace="fig11-12"),
        )
    )
    keys = [(a, lo, m) for (a, lo) in workloads for m in managers]
    plans = [
        RunPlan(
            run_cell,
            {
                "app_name": a,
                "load_kind": lo,
                "manager": m,
                "options": options.replace(seed=seeds[(a, lo)]),
            },
            label=f"fig11-12:{a}:{lo}:{m}",
        )
        for (a, lo, m) in keys
    ]
    # prewarm= runs in the parent before any worker forks, so exploration
    # results / trained baselines are built once and inherited (or read
    # back through the on-disk cache when the pool is already warm).
    results = dict(
        zip(
            keys,
            run_many(
                plans,
                jobs=jobs,
                on_complete=on_complete,
                prewarm=lambda: _prewarm_artifacts(apps, managers),
            ),
        )
    )
    return PerformanceGrid(results=results, cell_seeds=seeds)


def grid_audit(grid: PerformanceGrid) -> list:
    """Budget-audit verdicts for every traced Ursa cell of a grid.

    Recomputes the MIP's per-(class, service) budgets in the parent from
    the cached exploration artefacts (deterministic and cheap -- the same
    ``optimize`` call :func:`run_cell` made inside the worker) and
    compares them against the observed critical-path attribution of that
    cell's sampled spans.  Verdict classes are prefixed ``app/load/`` so
    one grid yields one flat, uniquely-keyed list.
    """
    from repro.core.optimizer import OptimizationEngine
    from repro.telemetry.audit import audit_budgets
    from repro.telemetry.tracing import CriticalPathSummary, traces_from_jsonl

    verdicts = []
    for (app_name, load_kind, manager), result in sorted(grid.results.items()):
        if manager != "ursa" or result.traces is None:
            continue
        rps = artifacts.app_rps(app_name)
        mix = _mix_for(app_name, load_kind)
        class_loads = {c: rps * mix.fraction(c) for c in mix.classes()}
        outcome = OptimizationEngine().optimize(
            artifacts.app_spec(app_name),
            artifacts.exploration_result(app_name),
            class_loads,
        )
        summary = CriticalPathSummary()
        for trace in traces_from_jsonl(result.traces.jsonl):
            summary.add(trace)
        for verdict in audit_budgets(summary, outcome.service_budgets):
            verdicts.append(
                dataclasses.replace(
                    verdict,
                    request_class=(
                        f"{app_name}/{load_kind}/{verdict.request_class}"
                    ),
                )
            )
    return verdicts


def report_artifacts(grid: PerformanceGrid) -> tuple[str, str, RunMeta]:
    """Dashboard text, standalone HTML, and provenance for a grid.

    Expects a grid run with ``tracing=`` and ``slo=`` enabled (the CLI's
    ``--report`` path); cells without those artefacts simply contribute
    fewer sections.  The rendered text and HTML are pure functions of the
    grid, so the store pins both (the HTML travels as a sidecar-recorded
    artifact file).
    """
    from repro.telemetry.audit import verdicts_payload
    from repro.telemetry.slo import alerts_digest

    apps = sorted({app for app, _lo, _m in grid.results})
    sla_targets: dict[str, float] = {}
    for app_name in apps:
        for rc in artifacts.app_spec(app_name).request_classes:
            sla_targets[rc.name] = rc.sla.target_s
    results = {
        f"{app}/{load}/{manager}": result
        for (app, load, manager), result in grid.results.items()
    }
    audit = grid_audit(grid)
    dash = build_dashboard(
        results,
        sla_targets=sla_targets,
        audit=audit,
        title="fig11-12 run dashboard",
    )
    text = render_dashboard_text(dash)
    html = render_dashboard_html(dash)
    base = experiment_meta(grid)
    meta = RunMeta(
        experiment="fig11-12-report",
        scale=base.scale,
        seeds=dict(base.seeds),
        digests=dict(base.digests),
        summaries=dict(base.summaries),
        alerts={
            label: alerts_digest(result.slo.alerts_jsonl)
            for label, result in sorted(results.items())
            if result.slo is not None
        },
        audits=verdicts_payload(audit),
    )
    return text, html, meta


def experiment_meta(grid: PerformanceGrid) -> RunMeta:
    """Provenance sidecar for the Fig. 11/12 grid (one run per cell)."""
    summaries = {}
    digests = {}
    for (app, load, manager), result in sorted(grid.results.items()):
        label = f"{app}/{load}/{manager}"
        summaries[label] = {
            "violation_rate": round(result.windowed_violation_rate, 9),
            "mean_cpus": round(result.mean_cpu_allocation, 9),
            "completed_requests": float(result.completed_requests),
        }
        if result.run_digest is not None:
            digests[label] = result.run_digest
    return RunMeta(
        experiment="fig11-12",
        scale=scale_profile().name,
        seeds={
            f"{app}/{load}": s for (app, load), s in grid.cell_seeds.items()
        },
        digests=digests,
        summaries=summaries,
    )
