"""Fig. 13 -- Ursa's CPU allocation tracking a diurnal load.

Runs the social network under Ursa with a diurnal pattern and records,
for representative microservices, the per-window RPS at the service and
the CPUs allocated to it.  The paper's shape: allocations scale out as the
load ramps up and scale back in as it subsides, promptly, per service.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.manager import UrsaManager
from repro.experiments import artifacts
from repro.experiments.parallel import RunPlan, run_many
from repro.experiments.report import render_series
from repro.experiments.runner import RunOptions, make_app, scale_profile
from repro.experiments.store import RunMeta
from repro.sim.random import RandomStreams
from repro.sim.trace import RunDigest
from repro.workload.defaults import default_mix_for
from repro.workload.generator import LoadGenerator
from repro.workload.patterns import DiurnalLoad

__all__ = [
    "DiurnalTrace",
    "run_diurnal_trace",
    "FIG13_SERVICES",
    "experiment_meta",
]

#: Default seed for the single diurnal deployment.
FIG13_SEED = 29

#: Four representative social-network microservices (paper Fig. 13 shows
#: individual, representative services).
FIG13_SERVICES = (
    "frontend",
    "timeline-service",
    "post-storage",
    "object-detect-ml",
)


@dataclass
class ServiceTrace:
    service: str
    #: (window start, service RPS) and (window start, allocated CPUs).
    load: list[tuple[float, float]]
    cpus: list[tuple[float, float]]

    def render(self) -> str:
        return "\n".join(
            [
                render_series(f"{self.service} load", self.load, "t_s", "rps"),
                render_series(f"{self.service} cpus", self.cpus, "t_s", "cpus"),
            ]
        )

    def correlation(self) -> float:
        """Pearson correlation between load and allocation over time."""
        import numpy as np

        if len(self.load) < 3:
            return float("nan")
        x = np.asarray([v for _, v in self.load])
        y = np.asarray([v for _, v in self.cpus])
        if x.std() == 0 or y.std() == 0:
            return 0.0
        return float(np.corrcoef(x, y)[0, 1])


@dataclass
class DiurnalTrace:
    traces: dict[str, ServiceTrace]
    #: Event-trace checksum of the deployment (``digest=True``).
    run_digest: str | None = None

    def render(self) -> str:
        return "\n\n".join(t.render() for t in self.traces.values())


def run_diurnal_trace(
    app_name: str = "social-network",
    services: tuple[str, ...] = FIG13_SERVICES,
    window_s: float = 60.0,
    options: RunOptions | None = None,
    jobs: int | None = None,
    on_complete=None,
) -> DiurnalTrace:
    """Fig. 13 trace; a single deployment dispatched via ``run_many``.

    Per-run knobs travel in ``options``; the default keeps the
    historical seed and event-trace digest.  There is only one run, so
    ``jobs`` cannot speed it up -- routing it through the parallel layer
    keeps the CLI uniform (every experiment accepts ``--jobs``) and
    exercises the picklability of the trace.
    """
    options = (
        options if options is not None
        else RunOptions(seed=FIG13_SEED, digest=True)
    )
    plan = RunPlan(
        _diurnal_cell,
        {
            "app_name": app_name,
            "services": services,
            "window_s": window_s,
            "options": options,
        },
        label=f"fig13:{app_name}",
    )
    return run_many([plan], jobs=jobs, on_complete=on_complete)[0]


def _diurnal_cell(
    app_name: str,
    services: tuple[str, ...],
    window_s: float,
    options: RunOptions,
) -> DiurnalTrace:
    seed = options.seed
    # The diurnal run is deliberately longer than a plain deployment so
    # a full load period fits; an explicit duration_s still wins.
    duration = (
        options.duration_s
        if options.duration_s is not None
        else options.profile().deployment_s * 1.5
    )
    spec = artifacts.app_spec(app_name)
    mix = default_mix_for(app_name)
    rps = artifacts.app_rps(app_name)
    exploration = artifacts.exploration_result(app_name)
    run_digest = RunDigest() if options.digest else None
    app = make_app(spec, seed=seed, trace=run_digest)
    app.env.run(until=10)
    manager = UrsaManager(app, exploration)
    manager.initialize({c: rps * 0.7 * mix.fraction(c) for c in mix.classes()})
    manager.start()
    LoadGenerator(
        app,
        pattern=DiurnalLoad(low=rps * 0.7, high=rps * 1.8, period_s=duration),
        mix=mix,
        streams=RandomStreams(seed + 1),
        stop_at_s=duration,
    ).start()
    app.env.run(until=duration)

    traces = {}
    for service in services:
        if service not in app.services:
            continue
        load_series = []
        cpu_series = []
        t = 0.0
        while t + window_s <= duration:
            total_rps = 0.0
            for rc in spec.request_classes:
                total_rps += app.hub.counter_rate(
                    "requests_total",
                    t,
                    t + window_s,
                    {"service": service, "request": rc.name},
                )
            load_series.append((t, total_rps))
            cpu_series.append(
                (
                    t,
                    app.hub.gauge_mean(
                        "cpu_allocated",
                        t,
                        t + window_s,
                        {"service": service},
                        default=0.0,
                    ),
                )
            )
            t += window_s
        traces[service] = ServiceTrace(service, load_series, cpu_series)
    return DiurnalTrace(
        traces=traces,
        run_digest=run_digest.hexdigest() if run_digest is not None else None,
    )


def experiment_meta(
    trace: DiurnalTrace,
    app_name: str = "social-network",
    seed: int = FIG13_SEED,
) -> RunMeta:
    """Provenance sidecar for the Fig. 13 output (one diurnal run)."""
    digests = {}
    if trace.run_digest is not None:
        digests[app_name] = trace.run_digest
    return RunMeta(
        experiment="fig13",
        scale=scale_profile().name,
        seeds={app_name: seed},
        digests=digests,
        summaries={
            name: {"load_cpu_correlation": round(t.correlation(), 9)}
            for name, t in trace.traces.items()
            if len(t.cpus) >= 3
        },
    )
