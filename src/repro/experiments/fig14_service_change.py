"""Fig. 14 / §VII-G -- adapting to a business-logic change.

The object-detection service swaps its model (DETR -> MobileNet: ~5x
lighter).  Ursa handles the change with a *partial* re-exploration -- only
the modified service is profiled -- followed by a threshold recalculation.
Reported:

* the partial exploration's sample count, duration and the SLA-violation
  rate incurred while it ran (the paper: 75 samples, 1.25 h, 5.3 %);
* the end-to-end object-detect latency CDF and its violation rate before
  and after the update (the paper: 0.62 % -> 0.50 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.social_network import swap_object_detect_model
from repro.core.exploration import ExplorationController, ExplorationResult
from repro.core.manager import UrsaManager
from repro.experiments import artifacts
from repro.experiments.parallel import RunPlan, run_many
from repro.experiments.report import render_series
from repro.experiments.runner import RunOptions, make_app, scale_profile
from repro.experiments.store import RunMeta
from repro.sim.random import RandomStreams
from repro.sim.trace import RunDigest
from repro.workload.defaults import default_mix_for
from repro.workload.generator import LoadGenerator
from repro.workload.patterns import ConstantLoad

__all__ = ["ServiceChangeResult", "run_service_change", "experiment_meta"]

CHANGED_SERVICE = "object-detect-ml"
TARGET_CLASS = "object-detect"

#: Default seed for the Fig. 14 deployments.
FIG14_SEED = 37


@dataclass
class DeploymentSummary:
    label: str
    violation_rate: float
    cdf: list[tuple[float, float]]  # (latency_s, cumulative fraction)
    #: Event-trace checksum of the deployment run.
    run_digest: str | None = None

    def render(self) -> str:
        series = render_series(
            f"{self.label} object-detect latency CDF", self.cdf, "latency_s", "F"
        )
        return f"{series}\nper-request violation rate: {self.violation_rate:.4f}"


@dataclass
class ServiceChangeResult:
    partial_samples: int
    partial_time_s: float
    partial_violation_rate: float
    original: DeploymentSummary
    updated: DeploymentSummary

    def render(self) -> str:
        header = (
            f"partial re-exploration of {CHANGED_SERVICE}: "
            f"{self.partial_samples} samples in "
            f"{self.partial_time_s / 3600:.2f} h, "
            f"violation rate during exploration "
            f"{self.partial_violation_rate:.3f}"
        )
        return "\n\n".join([header, self.original.render(), self.updated.render()])


def _deploy_and_measure(
    spec, exploration: ExplorationResult, label: str, options: RunOptions
) -> DeploymentSummary:
    seed = options.seed
    duration = options.resolved_duration_s()
    mix = default_mix_for("social-network")
    rps = artifacts.app_rps("social-network")
    run_digest = RunDigest() if options.digest else None
    app = make_app(spec, seed=seed, trace=run_digest)
    app.env.run(until=10)
    manager = UrsaManager(app, exploration)
    manager.initialize({c: rps * mix.fraction(c) for c in mix.classes()})
    manager.start()
    LoadGenerator(
        app,
        pattern=ConstantLoad(rps),
        mix=mix,
        streams=RandomStreams(seed + 1),
        stop_at_s=duration,
    ).start()
    app.env.run(until=duration)
    dist = app.hub.latency_distribution(
        "request_latency",
        options.resolved_measure_from_s(),
        duration,
        {"request": TARGET_CLASS},
    )
    sla = spec.request_class(TARGET_CLASS).sla
    samples = dist.samples()
    cdf = [
        (samples[int(len(samples) * q) - 1], q)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)
        if len(samples) >= 1
    ]
    return DeploymentSummary(
        label=label,
        violation_rate=dist.fraction_above(sla.target_s) if dist else 0.0,
        cdf=cdf,
        run_digest=run_digest.hexdigest() if run_digest is not None else None,
    )


def _explore_changed_service(spec, seed: int):
    """Partial re-exploration of the changed service (§VII-G).

    Returns ``(profile, f_sla)`` -- the controller's SLA-violation
    threshold is needed by the caller to report the violation rate
    incurred while the exploration ran.
    """
    profile = scale_profile()
    controller = ExplorationController(
        RandomStreams(seed + 11),
        window_s=profile.exploration_window_s,
        samples_per_step=profile.exploration_samples_per_step,
        warmup_s=profile.exploration_warmup_s,
        settle_s=profile.exploration_settle_s,
    )
    mix = default_mix_for("social-network")
    rps = artifacts.app_rps("social-network")
    thresholds = artifacts.backpressure_thresholds("social-network")
    partial = controller.explore_service(
        spec,
        CHANGED_SERVICE,
        mix,
        rps,
        thresholds.get(CHANGED_SERVICE, 1.0),
        seed_salt=seed,
    )
    return partial, controller.f_sla


def run_service_change(
    options: RunOptions | None = None,
    jobs: int | None = None,
    on_complete=None,
) -> ServiceChangeResult:
    options = (
        options if options is not None
        else RunOptions(seed=FIG14_SEED, digest=True)
    )
    seed = options.seed
    original_spec = artifacts.app_spec("social-network")
    updated_spec = swap_object_detect_model(original_spec)

    # Full exploration (cached) drives the original deployment; build
    # shared artefacts in the parent before forking workers.
    full_exploration = artifacts.exploration_result("social-network")
    artifacts.backpressure_thresholds("social-network")

    # The original-deployment measurement and the partial re-exploration
    # are independent (the paper runs the exploration *on* the live
    # deployment; here both are simulated from the same initial state),
    # so they fan out as two plans.  Seeds are explicit per plan, so the
    # result is identical for any ``jobs``.
    original, (partial, f_sla) = run_many(
        [
            RunPlan(
                _deploy_and_measure,
                {
                    "spec": original_spec,
                    "exploration": full_exploration,
                    "label": "original (DETR)",
                    "options": options,
                },
                label="fig14:original",
            ),
            RunPlan(
                _explore_changed_service,
                {"spec": updated_spec, "seed": seed},
                label="fig14:partial-exploration",
            ),
        ],
        jobs=jobs,
        on_complete=on_complete,
    )
    merged = ExplorationResult(
        app_name=updated_spec.name,
        profiles={
            **full_exploration.profiles,
            CHANGED_SERVICE: partial,
        },
    )
    updated = _deploy_and_measure(
        updated_spec, merged, "updated (MobileNet)",
        options.replace(seed=seed + 1),
    )
    # Violation frequency observed during the partial exploration: the
    # terminating step's violations are part of the run; approximate with
    # the termination cause (a terminating "sla" step means the last
    # samples violated at >= F_sla).
    partial_violation = f_sla if partial.terminated_by == "sla" else 0.0
    return ServiceChangeResult(
        partial_samples=partial.samples_collected,
        partial_time_s=partial.profiling_time_s,
        partial_violation_rate=partial_violation,
        original=original,
        updated=updated,
    )


def experiment_meta(
    result: ServiceChangeResult, seed: int = FIG14_SEED
) -> RunMeta:
    """Provenance sidecar for the Fig. 14 output.

    The two deployments (before/after the model swap) carry event-trace
    digests; the partial re-exploration runs its environments inside the
    controller and is covered by the sidecar's text hash only.
    """
    digests = {}
    for key, summary in (("original", result.original), ("updated", result.updated)):
        if summary.run_digest is not None:
            digests[key] = summary.run_digest
    return RunMeta(
        experiment="fig14",
        scale=scale_profile().name,
        seeds={"original": seed, "updated": seed + 1},
        digests=digests,
        summaries={
            "original": {"violation_rate": round(result.original.violation_rate, 9)},
            "updated": {"violation_rate": round(result.updated.violation_rate, 9)},
            "partial_exploration": {
                "samples": float(result.partial_samples),
                "time_s": round(result.partial_time_s, 6),
                "violation_rate": round(result.partial_violation_rate, 9),
            },
        },
    )
