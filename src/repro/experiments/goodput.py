"""Throughput-per-dollar and goodput-per-dollar analysis (§VII-E
Discussion).

All systems are evaluated under identical workloads, so relative
throughput-per-dollar improvements equal the inverse of relative resource
consumption: if Ursa allocates a fraction ``f`` of a baseline's CPUs, it
achieves ``1/f`` of its throughput per dollar.  Goodput-per-dollar
additionally discounts requests that violate their SLA.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.experiments.runner import DeploymentResult

__all__ = ["CostEfficiency", "compare_cost_efficiency"]


@dataclass(frozen=True)
class CostEfficiency:
    """Relative cost-efficiency of a system against a baseline."""

    system: str
    baseline: str
    #: baseline CPUs / system CPUs: >1 means the system is cheaper.
    throughput_per_dollar_x: float
    #: same, additionally scaled by the goodput ratio.
    goodput_per_dollar_x: float


def _goodput_fraction(result: DeploymentResult) -> float:
    """Fraction of completed requests meeting their SLA.

    Uses per-class per-request violation rates weighted equally per class
    (the per-class request counts are workload-determined and identical
    across the systems being compared).
    """
    rates = list(result.per_class_violation_rate.values())
    if not rates:
        return 1.0
    return 1.0 - sum(rates) / len(rates)


def compare_cost_efficiency(
    system: DeploymentResult, baseline: DeploymentResult
) -> CostEfficiency:
    """Cost-efficiency of ``system`` relative to ``baseline``.

    Both results must come from the same application and load (identical
    workloads are what make the inverse-resource argument valid).
    """
    if system.app_name != baseline.app_name:
        raise ConfigurationError(
            f"cannot compare {system.app_name!r} against {baseline.app_name!r}"
        )
    if system.load_name != baseline.load_name:
        raise ConfigurationError(
            f"cannot compare load {system.load_name!r} against "
            f"{baseline.load_name!r}"
        )
    if system.mean_cpu_allocation <= 0 or baseline.mean_cpu_allocation <= 0:
        raise ConfigurationError("both runs need positive CPU allocations")
    throughput_x = baseline.mean_cpu_allocation / system.mean_cpu_allocation
    goodput_x = throughput_x * (
        _goodput_fraction(system) / max(1e-9, _goodput_fraction(baseline))
    )
    return CostEfficiency(
        system=system.manager,
        baseline=baseline.manager,
        throughput_per_dollar_x=throughput_x,
        goodput_per_dollar_x=goodput_x,
    )
