"""Manager factories: attach any of the five §VII systems to an app.

Each factory returns a callable suitable for
:func:`repro.experiments.runner.run_deployment`'s ``attach_manager``:
given a freshly built :class:`Application`, it constructs the manager,
applies its initial allocation, and starts its control loop.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.apps.topology import Application
from repro.baselines.autoscaler import StepAutoscaler, auto_a, auto_b
from repro.baselines.firm import FirmAgent, FirmManager
from repro.baselines.sinan import SinanManager, SinanPredictor
from repro.core.exploration import ExplorationResult, provisioning_for
from repro.core.manager import UrsaManager
from repro.workload.mixes import RequestMix

__all__ = [
    "attach_ursa",
    "attach_sinan",
    "attach_firm",
    "attach_autoscaler",
    "MANAGER_NAMES",
]

MANAGER_NAMES = ("ursa", "sinan", "firm", "auto-a", "auto-b")


def attach_ursa(
    exploration: ExplorationResult,
    class_loads: Mapping[str, float],
) -> Callable[[Application], UrsaManager]:
    """Ursa initialised for the expected per-class loads."""

    def attach(app: Application) -> UrsaManager:
        manager = UrsaManager(app, exploration)
        manager.initialize(class_loads)
        manager.start()
        return manager

    return attach


def attach_sinan(predictor: SinanPredictor) -> Callable[[Application], SinanManager]:
    def attach(app: Application) -> SinanManager:
        manager = SinanManager(app, predictor)
        manager.initialize(2)
        manager.start()
        return manager

    return attach


def attach_firm(
    agents: Mapping[str, FirmAgent],
) -> Callable[[Application], FirmManager]:
    def attach(app: Application) -> FirmManager:
        manager = FirmManager(app, dict(agents))
        manager.initialize(2)
        manager.start()
        return manager

    return attach


def attach_autoscaler(
    variant: str,
    mix: RequestMix | None = None,
    rps: float | None = None,
) -> Callable[[Application], StepAutoscaler]:
    """Auto-a / Auto-b, optionally warm-started at a sensible allocation."""
    config = {"auto-a": auto_a, "auto-b": auto_b}[variant]()

    def attach(app: Application) -> StepAutoscaler:
        if mix is not None and rps is not None:
            # Start from a modest allocation; the loop adapts from there.
            start = provisioning_for(
                app.spec, mix, rps, target_utilization=0.5, headroom_replicas=0
            )
            for name, replicas in start.items():
                app.scale(name, replicas)
        scaler = StepAutoscaler(app, config)
        scaler.start()
        return scaler

    return attach
