"""Process-pool fan-out for independent experiment runs.

Every grid-style §VII reproduction is a set of *independent* deployment
runs (one per app × load × manager cell): each run owns its own
:class:`~repro.sim.engine.Environment`, cluster, and random streams, so
runs can execute in separate worker processes without sharing state.
This module provides the fan-out primitive:

* :class:`RunPlan` -- a picklable description of one run: a module-level
  callable plus keyword arguments.  Closures cannot cross process
  boundaries, so plans must reference importable functions (e.g.
  :func:`repro.experiments.fig11_12_performance.run_cell`).
* :func:`run_many` -- execute plans on a :class:`ProcessPoolExecutor`
  and return their results *in plan order*, so tables rendered from the
  merged results are byte-identical to a sequential run.
* :func:`partition_seeds` -- derive one independent seed per plan from a
  master seed via :class:`~repro.sim.random.RandomStreams`, independent
  of the job count, so ``--jobs 4`` and ``--jobs 1`` produce identical
  output for the same master seed.

Determinism contract: parallelism only changes *where* a run executes,
never *what* it computes.  Each plan's seed is fixed up front by
:func:`partition_seeds` (or by the caller), results are merged in plan
order, and worker processes import the same code the parent would run.

``jobs=1`` (or a single plan) short-circuits to plain in-process
execution -- no pool, no pickling -- which keeps single-core containers
and debuggers (breakpoints do not survive fork) on the simple path.

With ``REPRO_SANITIZE=1`` every plan -- pooled or sequential -- runs
under the :mod:`repro.analysis.sanitizer` guard, which raises if the
plan mutated any watched module-level global (the runtime counterpart
of the PAR002 lint rule).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.sanitizer import run_guarded
from repro.sim.random import RandomStreams

__all__ = ["RunPlan", "run_many", "partition_seeds", "default_jobs"]

#: Environment variable overriding the default worker count (useful for
#: CI runners whose ``os.cpu_count()`` exceeds their actual quota).
JOBS_ENV_VAR = "REPRO_JOBS"


@dataclass(frozen=True)
class RunPlan:
    """One unit of work for :func:`run_many`.

    ``fn`` must be picklable by reference (defined at module top level);
    ``kwargs`` must contain only picklable values.  ``label`` is for
    progress reporting only and never affects results.
    """

    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""

    def __call__(self) -> Any:
        return self.fn(**self.kwargs)


def default_jobs() -> int:
    """Worker count used when the caller does not pass ``jobs``.

    ``REPRO_JOBS`` wins if set; otherwise the scheduler-visible CPU
    count (``sched_getaffinity`` respects container quotas better than
    ``os.cpu_count()``), floored at 1.
    """
    override = os.environ.get(JOBS_ENV_VAR)
    if override is not None:
        jobs = int(override)
        if jobs < 1:
            raise ValueError(f"{JOBS_ENV_VAR} must be >= 1, got {jobs}")
        return jobs
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux platforms
        return max(1, os.cpu_count() or 1)


def partition_seeds(master_seed: int, n: int, namespace: str = "run") -> list[int]:
    """``n`` independent per-run seeds derived from ``master_seed``.

    Drawn from a dedicated :class:`RandomStreams` stream keyed by
    ``namespace``, so the partition depends only on ``(master_seed, n,
    namespace)`` -- never on the job count or execution order.  Plans
    that share a workload (e.g. the five managers of one app × load
    cell) should share one partitioned seed so every manager faces an
    identical request sequence.
    """
    if n < 0:
        raise ValueError(f"cannot partition seeds for n={n} runs")
    rng = RandomStreams(master_seed).stream(f"parallel:{namespace}")
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=n)]


def _execute(plan: RunPlan) -> Any:
    return run_guarded(plan.fn, plan.kwargs, label=plan.label)


def run_many(
    plans: Sequence[RunPlan],
    jobs: int | None = None,
    on_complete: Callable[[RunPlan, Any], None] | None = None,
) -> list[Any]:
    """Execute ``plans`` and return their results in plan order.

    ``jobs=None`` uses :func:`default_jobs`; ``jobs=1`` runs sequentially
    in-process.  Worker processes are capped at ``len(plans)`` so short
    grids do not pay pool-spinup cost for idle workers.  Results come
    back in the order plans were given regardless of completion order,
    which is what makes parallel output byte-identical to sequential.

    ``on_complete(plan, result)`` is invoked in the *parent* process as
    each result lands (progress reporting, incremental persistence).  In
    pooled mode it fires in completion order -- which may differ from
    plan order -- so callbacks must not assume ordering; the returned
    list is the ordering contract.  A callback exception propagates,
    cancelling any runs that have not started yet.
    """
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    plans = list(plans)
    if jobs is None:
        jobs = default_jobs()
    if jobs == 1 or len(plans) <= 1:
        results = []
        for plan in plans:
            result = _execute(plan)
            if on_complete is not None:
                on_complete(plan, result)
            results.append(result)
        return results
    with ProcessPoolExecutor(max_workers=min(jobs, len(plans))) as pool:
        futures = [pool.submit(_execute, plan) for plan in plans]
        if on_complete is not None:
            pending = {future: plan for future, plan in zip(futures, plans)}
            try:
                for future in as_completed(pending):
                    on_complete(pending[future], future.result())
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        # result() in submission order == plan order; completion order
        # is irrelevant to the merged output.
        return [future.result() for future in futures]
