"""Process-pool fan-out for independent experiment runs.

Every grid-style §VII reproduction is a set of *independent* deployment
runs (one per app × load × manager cell): each run owns its own
:class:`~repro.sim.engine.Environment`, cluster, and random streams, so
runs can execute in separate worker processes without sharing state.
This module provides the fan-out primitive:

* :class:`RunPlan` -- a picklable description of one run: a module-level
  callable plus keyword arguments.  Closures cannot cross process
  boundaries, so plans must reference importable functions (e.g.
  :func:`repro.experiments.fig11_12_performance.run_cell`).
* :func:`run_many` -- execute plans on a shared worker pool and return
  their results *in plan order*, so tables rendered from the merged
  results are byte-identical to a sequential run.
* :func:`partition_seeds` -- derive one independent seed per plan from a
  master seed via :class:`~repro.sim.random.RandomStreams`, independent
  of the job count, so ``--jobs 4`` and ``--jobs 1`` produce identical
  output for the same master seed.
* :func:`warm_pool` / :func:`shutdown_pool` -- manage the process-wide
  worker pool explicitly (the CLI warms it once per invocation).

The pool is *persistent*: the first pooled :func:`run_many` creates it
and every later grid in the same process reuses the same workers, so
pool spin-up and worker imports are paid once per CLI invocation, not
once per grid.  Workers are forked (where the platform supports it)
*after* any ``prewarm`` callable runs in the parent, so expensive shared
state -- app topologies, cached exploration artefacts -- is inherited
copy-on-write instead of being re-imported and re-unpickled per plan.
Plans are shipped to workers in chunks (several plans per IPC message)
to cut round-trips on large grids; results still come back per plan.

Determinism contract: parallelism only changes *where* a run executes,
never *what* it computes.  Each plan's seed is fixed up front by
:func:`partition_seeds` (or by the caller), results are merged in plan
order, and worker processes import the same code the parent would run.

``jobs=1`` (or a single plan) short-circuits to plain in-process
execution -- no pool, no pickling -- which keeps single-core containers
and debuggers (breakpoints do not survive fork) on the simple path.

With ``REPRO_SANITIZE=1`` every plan -- pooled or sequential -- runs
under the :mod:`repro.analysis.sanitizer` guard, which raises if the
plan mutated any watched module-level global (the runtime counterpart
of the PAR002 lint rule).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.analysis.sanitizer import run_guarded
from repro.sim.random import RandomStreams

__all__ = [
    "RunPlan",
    "run_many",
    "named_seeds",
    "partition_seeds",
    "default_jobs",
    "warm_pool",
    "shutdown_pool",
    "pool_stats",
]

#: Environment variable overriding the default worker count (useful for
#: CI runners whose ``os.cpu_count()`` exceeds their actual quota).
JOBS_ENV_VAR = "REPRO_JOBS"


@dataclass(frozen=True)
class RunPlan:
    """One unit of work for :func:`run_many`.

    ``fn`` must be picklable by reference (defined at module top level);
    ``kwargs`` must contain only picklable values.  ``label`` is for
    progress reporting only and never affects results.
    """

    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""

    def __call__(self) -> Any:
        return self.fn(**self.kwargs)


def default_jobs() -> int:
    """Worker count used when the caller does not pass ``jobs``.

    ``REPRO_JOBS`` wins if set; otherwise the scheduler-visible CPU
    count (``sched_getaffinity`` respects container quotas better than
    ``os.cpu_count()``), floored at 1.
    """
    override = os.environ.get(JOBS_ENV_VAR)
    if override is not None:
        jobs = int(override)
        if jobs < 1:
            raise ValueError(f"{JOBS_ENV_VAR} must be >= 1, got {jobs}")
        return jobs
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux platforms
        return max(1, os.cpu_count() or 1)


def partition_seeds(master_seed: int, n: int, namespace: str = "run") -> list[int]:
    """``n`` independent per-run seeds derived from ``master_seed``.

    Drawn from a dedicated :class:`RandomStreams` stream keyed by
    ``namespace``, so the partition depends only on ``(master_seed, n,
    namespace)`` -- never on the job count or execution order.  Plans
    that share a workload (e.g. the five managers of one app × load
    cell) should share one partitioned seed so every manager faces an
    identical request sequence.
    """
    if n < 0:
        raise ValueError(f"cannot partition seeds for n={n} runs")
    rng = RandomStreams(master_seed).stream(f"parallel:{namespace}")
    return [int(s) for s in rng.integers(0, 2**31 - 1, size=n)]


def named_seeds(
    master_seed: int, names: Sequence[str], namespace: str = "run"
) -> dict[str, int]:
    """One independent seed per *name*, derived from ``master_seed``.

    Unlike :func:`partition_seeds` (positional: the i-th plan gets the
    i-th draw), each seed here comes from a dedicated stream keyed by the
    name itself, so the mapping is invariant to the order names are
    given in -- and to adding or removing other names.  Fleet cells
    (:mod:`repro.fleet`) use this so reordering the cell list, or
    growing the fleet, never reseeds existing cells.
    """
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate names in seed derivation: {sorted(names)}")
    streams = RandomStreams(master_seed)
    return {
        name: int(
            streams.stream(f"parallel:{namespace}:{name}").integers(
                0, 2**31 - 1
            )
        )
        for name in names
    }


def _execute(plan: RunPlan) -> Any:
    return run_guarded(plan.fn, plan.kwargs, label=plan.label)


def _execute_chunk(chunk: Sequence[RunPlan]) -> list[Any]:
    """Worker entry: run several plans in one IPC round trip.

    Plans within a chunk run sequentially in the worker; each still gets
    its own sanitizer guard.  The first plan exception propagates (the
    chunk's remaining plans are skipped -- the caller is about to raise
    and discard the grid anyway).
    """
    return [_execute(plan) for plan in chunk]


#: The process-wide worker pool, created by the first pooled
#: :func:`run_many` (or explicitly by :func:`warm_pool`) and reused by
#: every later grid in this process.
_pool: ProcessPoolExecutor | None = None
_pool_workers = 0
_pool_grids = 0
_atexit_registered = False

#: Chunk-count multiplier per worker: enough chunks for load balancing
#: across workers, few enough to amortize the per-message IPC cost.
_CHUNKS_PER_WORKER = 4


def warm_pool(
    jobs: int | None = None, prewarm: Callable[[], Any] | None = None
) -> None:
    """Create (or grow) the shared worker pool.

    ``prewarm`` runs in the *parent* first, so anything it builds -- app
    topologies, cached artefacts -- exists before workers fork and is
    inherited copy-on-write.  An existing pool big enough for ``jobs``
    is kept as-is (its workers read prewarmed artefacts through the
    on-disk artifact cache instead); a smaller one is drained and
    replaced.  Workers use the ``fork`` start method where available so
    inheritance is memory-sharing, not pickling.
    """
    global _pool, _pool_workers, _atexit_registered
    if jobs is None:
        jobs = default_jobs()
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if prewarm is not None:
        prewarm()
    if _pool is not None and getattr(_pool, "_broken", False):
        # A crashed worker poisons a ProcessPoolExecutor permanently;
        # replace it so one bad grid cannot break every later grid.
        _pool.shutdown(wait=False)
        _pool = None
    if _pool is not None and _pool_workers >= jobs:
        return
    if _pool is not None:
        _pool.shutdown(wait=True)
        _pool = None
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context("fork" if "fork" in methods else None)
    _pool = ProcessPoolExecutor(max_workers=jobs, mp_context=context)
    _pool_workers = jobs
    if not _atexit_registered:
        atexit.register(shutdown_pool)
        _atexit_registered = True


def shutdown_pool() -> None:
    """Drain and discard the shared pool (no-op when none exists).

    Registered via :mod:`atexit` on first creation; tests call it
    directly to return to a cold-pool state.
    """
    global _pool, _pool_workers, _pool_grids
    if _pool is not None:
        _pool.shutdown(wait=True)
        _pool = None
        _pool_workers = 0
        _pool_grids = 0


def pool_stats() -> dict[str, Any]:
    """Introspection for tests and benchmarks: is the pool warm, and how
    many pooled grids has it served since creation?"""
    return {
        "alive": _pool is not None,
        "workers": _pool_workers,
        "grids_served": _pool_grids,
    }


def run_many(
    plans: Sequence[RunPlan],
    jobs: int | None = None,
    on_complete: Callable[[RunPlan, Any], None] | None = None,
    prewarm: Callable[[], Any] | None = None,
    chunk_size: int | None = None,
) -> list[Any]:
    """Execute ``plans`` and return their results in plan order.

    ``jobs=None`` uses :func:`default_jobs`; ``jobs=1`` runs sequentially
    in-process.  Pooled runs reuse the process-wide pool created by the
    first pooled call (see :func:`warm_pool`); at most ``jobs`` chunks
    are in flight at once even when the shared pool is larger, so a
    ``jobs=2`` grid never runs 4-wide just because an earlier grid asked
    for 4 workers.  Results come back in the order plans were given
    regardless of completion order, which is what makes parallel output
    byte-identical to sequential.

    ``prewarm`` (optional) is called in the parent before any plan runs
    -- before workers fork, when this call creates the pool -- so shared
    artefacts are built once instead of once per worker.  ``chunk_size``
    overrides how many plans ride in one worker message (default: grid
    size split ~``_CHUNKS_PER_WORKER`` ways per worker).

    ``on_complete(plan, result)`` is invoked in the *parent* process as
    each result lands (progress reporting, incremental persistence).  In
    pooled mode it fires in completion order -- which may differ from
    plan order -- so callbacks must not assume ordering; the returned
    list is the ordering contract.  A callback or plan exception
    propagates, cancelling any chunks that have not started yet.
    """
    if jobs is not None and jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    plans = list(plans)
    if jobs is None:
        jobs = default_jobs()
    if jobs == 1 or len(plans) <= 1:
        if prewarm is not None:
            prewarm()
        results = []
        for plan in plans:
            result = _execute(plan)
            if on_complete is not None:
                on_complete(plan, result)
            results.append(result)
        return results

    global _pool_grids
    warm_pool(jobs, prewarm=prewarm)
    _pool_grids += 1
    if chunk_size is None:
        chunk_size = max(1, len(plans) // (jobs * _CHUNKS_PER_WORKER))
    chunks = [plans[i : i + chunk_size] for i in range(0, len(plans), chunk_size)]

    # Sliding-window submission: at most ``jobs`` chunks in flight.
    chunk_results: list[list[Any] | None] = [None] * len(chunks)
    in_flight: dict[Any, int] = {}
    next_chunk = 0
    try:
        while next_chunk < len(chunks) or in_flight:
            while next_chunk < len(chunks) and len(in_flight) < jobs:
                future = _pool.submit(_execute_chunk, chunks[next_chunk])
                in_flight[future] = next_chunk
                next_chunk += 1
            done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in done:
                index = in_flight.pop(future)
                results_for_chunk = future.result()
                chunk_results[index] = results_for_chunk
                if on_complete is not None:
                    for plan, result in zip(chunks[index], results_for_chunk):
                        on_complete(plan, result)
    except BaseException:
        for future in in_flight:
            future.cancel()
        raise
    # Flattened in submission order == plan order; completion order is
    # irrelevant to the merged output.
    return [result for chunk in chunk_results for result in chunk]
