"""Plain-text rendering of experiment tables and figure series.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and diff-friendly
(EXPERIMENTS.md embeds their output).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.tracing import CriticalPathSummary

__all__ = [
    "render_table",
    "render_series",
    "render_heatmap",
    "render_attribution",
]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule."""
    materialised = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    name: str,
    points: Iterable[tuple[float, float]],
    x_label: str = "x",
    y_label: str = "y",
    fmt: str = "{:.4g}",
) -> str:
    """One figure series as aligned (x, y) pairs."""
    lines = [f"{name}  [{x_label} -> {y_label}]"]
    for x, y in points:
        lines.append(f"  {fmt.format(x):>12s}  {fmt.format(y)}")
    return "\n".join(lines)


def render_heatmap(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Sequence[Sequence[float]],
    fmt: str = "{:7.1f}",
) -> str:
    """A row-per-line heatmap (Fig. 2's tier x minute layout)."""
    if len(values) != len(row_labels):
        raise ValueError("row count mismatch")
    width = max(len(fmt.format(0.0)), *(len(c) for c in col_labels)) + 1
    lines = [title]
    label_width = max(len(r) for r in row_labels) + 1
    header = " " * label_width + "".join(c.rjust(width) for c in col_labels)
    lines.append(header)
    for label, row in zip(row_labels, values):
        if len(row) != len(col_labels):
            raise ValueError("column count mismatch")
        cells = "".join(fmt.format(v).rjust(width) for v in row)
        lines.append(label.ljust(label_width) + cells)
    return "\n".join(lines)


def render_attribution(
    summary: "CriticalPathSummary",
    top: int = 4,
    title: str | None = "critical-path attribution",
) -> str:
    """Critical-path fractions as a diff-friendly table.

    One row per (request class, service, phase) location, largest share
    of that class's total latency first, ``top`` rows per class --
    the tabular twin of ``CriticalPathSummary.render``.
    """
    rows = []
    for cls in summary.classes():
        agg = summary.pooled(cls)
        if not agg.requests:
            continue
        mean_ms = agg.total_latency / agg.requests * 1e3
        for service, phase, fraction in agg.fractions()[:top]:
            rows.append(
                (cls, agg.requests, f"{mean_ms:.1f}", service, phase,
                 f"{fraction:.1%}")
            )
    if not rows:
        return "(no traces collected)"
    return render_table(
        ("class", "traced", "mean_ms", "service", "phase", "share"),
        rows,
        title=title,
    )
