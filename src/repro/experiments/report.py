"""Plain-text rendering of experiment tables and figure series.

Benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and diff-friendly
(EXPERIMENTS.md embeds their output).

The second half of the module is the deterministic run dashboard:
:func:`build_dashboard` folds any set of :class:`DeploymentResult`\\ s
(a Fig. 11/12 grid, or shards of one workload from ``run_many``) into a
:class:`RunDashboard` -- per-run violation/CPU rows, per-class latency
pooled across runs via :meth:`FixedHistogram.merge`, the merged alert
timeline, error-budget burn, critical-path attribution, budget-audit
verdicts, and top allocated services -- rendered as terminal text
(:func:`render_dashboard_text`) or a standalone HTML file
(:func:`render_dashboard_html`).  Both renderings are pure functions of
the results: no wall-clock timestamps, byte-identical for same-seed
reruns, so the HTML can be pinned by the results store like any other
artifact.  ``python -m repro.experiments.report --smoke`` exercises the
whole path on a tiny two-shard run for CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.telemetry.slo import Alert, alerts_from_jsonl

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.runner import DeploymentResult
    from repro.telemetry.audit import AuditVerdict
    from repro.telemetry.tracing import CriticalPathSummary

__all__ = [
    "RunDashboard",
    "build_dashboard",
    "render_dashboard_html",
    "render_dashboard_text",
    "render_table",
    "render_series",
    "render_heatmap",
    "render_attribution",
]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width table with a header rule."""
    materialised = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append("-" * len(header))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    name: str,
    points: Iterable[tuple[float, float]],
    x_label: str = "x",
    y_label: str = "y",
    fmt: str = "{:.4g}",
) -> str:
    """One figure series as aligned (x, y) pairs."""
    lines = [f"{name}  [{x_label} -> {y_label}]"]
    for x, y in points:
        lines.append(f"  {fmt.format(x):>12s}  {fmt.format(y)}")
    return "\n".join(lines)


def render_heatmap(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    values: Sequence[Sequence[float]],
    fmt: str = "{:7.1f}",
) -> str:
    """A row-per-line heatmap (Fig. 2's tier x minute layout)."""
    if len(values) != len(row_labels):
        raise ValueError("row count mismatch")
    width = max(len(fmt.format(0.0)), *(len(c) for c in col_labels)) + 1
    lines = [title]
    label_width = max(len(r) for r in row_labels) + 1
    header = " " * label_width + "".join(c.rjust(width) for c in col_labels)
    lines.append(header)
    for label, row in zip(row_labels, values):
        if len(row) != len(col_labels):
            raise ValueError("column count mismatch")
        cells = "".join(fmt.format(v).rjust(width) for v in row)
        lines.append(label.ljust(label_width) + cells)
    return "\n".join(lines)


def render_attribution(
    summary: "CriticalPathSummary",
    top: int = 4,
    title: str | None = "critical-path attribution",
) -> str:
    """Critical-path fractions as a diff-friendly table.

    One row per (request class, service, phase) location, largest share
    of that class's total latency first, ``top`` rows per class --
    the tabular twin of ``CriticalPathSummary.render``.
    """
    rows = []
    for cls in summary.classes():
        agg = summary.pooled(cls)
        if not agg.requests:
            continue
        mean_ms = agg.total_latency / agg.requests * 1e3
        for service, phase, fraction in agg.fractions()[:top]:
            rows.append(
                (cls, agg.requests, f"{mean_ms:.1f}", service, phase,
                 f"{fraction:.1%}")
            )
    if not rows:
        return "(no traces collected)"
    return render_table(
        ("class", "traced", "mean_ms", "service", "phase", "share"),
        rows,
        title=title,
    )


# ----------------------------------------------------------------------
# The deterministic run dashboard
# ----------------------------------------------------------------------
#: Alert-timeline rows rendered before the dashboard truncates (the full
#: timeline always travels in sidecars; this bounds the report size).
_MAX_ALERT_ROWS = 40


@dataclass(frozen=True)
class RunDashboard:
    """Aggregated view over a set of deployment runs (plain data).

    Built by :func:`build_dashboard`; every field is deterministic given
    the results, so both renderings are byte-stable across reruns.
    """

    title: str
    #: Per-run rows: (label, violation rate, mean CPUs, completed,
    #: alert transitions or None when the run had no monitor).
    run_rows: list[tuple[str, float, float, int, int | None]]
    #: Per-class latency pooled across runs via FixedHistogram.merge:
    #: (class, count, mean_ms, p50_ms, p99_ms, violation fraction or
    #: None when no SLA target was supplied).
    class_rows: list[tuple[str, int, float, float, float, float | None]]
    #: Merged alert timeline: (source label, Alert), time-ordered.
    alerts: list[tuple[str, Alert]]
    #: Error-budget burn rows: (label, class, budget consumed,
    #: fast burn, slow burn).
    burn_rows: list[tuple[str, str, float, float, float]]
    #: Critical-path attribution table (pre-rendered text; empty when
    #: no run carried traces).
    attribution: str
    #: Budget-audit verdicts (empty when no audit ran).
    audit: list["AuditVerdict"] = field(default_factory=list)
    #: Top services by mean allocated CPUs summed across runs:
    #: (service, mean CPUs).
    utilization_rows: list[tuple[str, float]] = field(default_factory=list)
    #: Caller-supplied sections rendered before the run rows, as
    #: (title, headers, rows) -- already-formatted strings.  The fleet
    #: dashboard uses this for its allocator/budget tables; any other
    #: aggregation can ride along the same way.
    extra_tables: list[tuple[str, tuple[str, ...], list[tuple[str, ...]]]] = (
        field(default_factory=list)
    )


def _merged_class_histograms(results: Mapping[str, "DeploymentResult"]):
    merged: dict = {}
    for _label, result in sorted(results.items()):
        if result.metrics is None:
            continue
        for cls, hist in sorted(result.metrics.latency_by_class.items()):
            if not hist.count:
                continue
            merged[cls] = hist if cls not in merged else merged[cls].merge(hist)
    return merged


def build_dashboard(
    results: Mapping[str, "DeploymentResult"],
    sla_targets: Mapping[str, float] | None = None,
    audit: "list[AuditVerdict] | None" = None,
    title: str = "run dashboard",
    extra_tables: (
        "list[tuple[str, tuple[str, ...], list[tuple[str, ...]]]] | None"
    ) = None,
) -> RunDashboard:
    """Fold deployment results into one :class:`RunDashboard`.

    ``results`` maps a display label (e.g. ``app/load/manager`` or
    ``shard-3``) to its :class:`DeploymentResult`; labels are the
    timeline's source names.  ``sla_targets`` (class -> seconds) enables
    the pooled violation-fraction column; ``audit`` attaches
    budget-audit verdicts; ``extra_tables`` prepends caller sections
    (see :class:`RunDashboard.extra_tables`).
    """
    run_rows = []
    alerts: list[tuple[str, Alert]] = []
    burn_rows = []
    for label, result in sorted(results.items()):
        slo = result.slo
        run_rows.append(
            (
                label,
                result.windowed_violation_rate,
                result.mean_cpu_allocation,
                result.completed_requests,
                slo.alert_transitions if slo is not None else None,
            )
        )
        if slo is not None:
            for alert in alerts_from_jsonl(slo.alerts_jsonl):
                alerts.append((label, alert))
            for cls, row in sorted(slo.budget_report.items()):
                burn_rows.append(
                    (
                        label,
                        cls,
                        row["budget_consumed"],
                        row["fast_burn"],
                        row["slow_burn"],
                    )
                )
    alerts.sort(key=lambda item: (item[1].time, item[0], item[1].name))

    class_rows = []
    for cls, hist in sorted(_merged_class_histograms(results).items()):
        target = (sla_targets or {}).get(cls)
        class_rows.append(
            (
                cls,
                hist.count,
                hist.mean * 1e3,
                hist.percentile(50.0) * 1e3,
                hist.percentile(99.0) * 1e3,
                hist.fraction_above(target) if target is not None else None,
            )
        )

    from repro.telemetry.tracing import CriticalPathSummary, traces_from_jsonl

    summary = CriticalPathSummary()
    traced = 0
    for _label, result in sorted(results.items()):
        if result.traces is None:
            continue
        for trace in traces_from_jsonl(result.traces.jsonl):
            summary.add(trace)
            traced += 1
    attribution = render_attribution(summary) if traced else ""

    allocation: dict[str, float] = {}
    for _label, result in sorted(results.items()):
        if result.metrics is None:
            continue
        for service, cpus in result.metrics.cpu_by_service.items():
            allocation[service] = allocation.get(service, 0.0) + cpus
    utilization_rows = sorted(
        allocation.items(), key=lambda item: (-item[1], item[0])
    )[:10]

    return RunDashboard(
        title=title,
        run_rows=run_rows,
        class_rows=class_rows,
        alerts=alerts,
        burn_rows=burn_rows,
        attribution=attribution,
        audit=list(audit or []),
        utilization_rows=utilization_rows,
        extra_tables=list(extra_tables or []),
    )


def render_dashboard_text(dash: RunDashboard) -> str:
    """Terminal rendering of a dashboard (diff-friendly, deterministic)."""
    from repro.telemetry.audit import render_audit

    parts = [dash.title, "=" * len(dash.title), ""]
    for table_title, headers, rows in dash.extra_tables:
        parts.append(render_table(headers, rows, title=table_title))
        parts.append("")
    parts.append(
        render_table(
            ("run", "violation_rate", "mean_cpus", "completed", "alerts"),
            [
                (label, f"{viol:.4f}", f"{cpus:.1f}", completed,
                 "-" if transitions is None else transitions)
                for label, viol, cpus, completed, transitions in dash.run_rows
            ],
            title="runs",
        )
    )
    if dash.class_rows:
        parts.append("")
        parts.append(
            render_table(
                ("class", "requests", "mean_ms", "p50_ms", "p99_ms",
                 "violations"),
                [
                    (cls, count, f"{mean:.1f}", f"{p50:.1f}", f"{p99:.1f}",
                     "-" if frac is None else f"{frac:.2%}")
                    for cls, count, mean, p50, p99, frac in dash.class_rows
                ],
                title="latency by class (merged across runs)",
            )
        )
    if dash.burn_rows:
        parts.append("")
        parts.append(
            render_table(
                ("run", "class", "budget_consumed", "fast_burn", "slow_burn"),
                [
                    (label, cls, f"{consumed:.3f}", f"{fast:.2f}",
                     f"{slow:.2f}")
                    for label, cls, consumed, fast, slow in dash.burn_rows
                ],
                title="error-budget burn",
            )
        )
    parts.append("")
    if dash.alerts:
        shown = dash.alerts[:_MAX_ALERT_ROWS]
        rows = [
            (f"{alert.time:.1f}", label, alert.name, alert.request_class,
             alert.state, f"{alert.fast_burn:.2f}", f"{alert.slow_burn:.2f}")
            for label, alert in shown
        ]
        parts.append(
            render_table(
                ("t_sim", "run", "alert", "class", "state", "fast", "slow"),
                rows,
                title=f"alert timeline ({len(dash.alerts)} transitions)",
            )
        )
        if len(dash.alerts) > len(shown):
            parts.append(f"... {len(dash.alerts) - len(shown)} more")
    else:
        parts.append("alert timeline: no transitions")
    if dash.attribution:
        parts.append("")
        parts.append(dash.attribution)
    if dash.audit:
        parts.append("")
        parts.append(render_audit(dash.audit).rstrip("\n"))
    if dash.utilization_rows:
        parts.append("")
        parts.append(
            render_table(
                ("service", "mean_cpus"),
                [(svc, f"{cpus:.1f}") for svc, cpus in dash.utilization_rows],
                title="top allocated services (summed across runs)",
            )
        )
    return "\n".join(parts) + "\n"


def _html_escape(text: object) -> str:
    return (
        str(text)
        .replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
    )


class _Raw(str):
    """A cell whose value is already HTML (skipped by escaping)."""


def _cell(value: object) -> str:
    return value if isinstance(value, _Raw) else _html_escape(value)


def _html_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], caption: str
) -> str:
    cells = "".join(f"<th>{_html_escape(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_cell(c)}</td>" for c in row) + "</tr>"
        for row in rows
    )
    return (
        f"<table><caption>{_html_escape(caption)}</caption>"
        f"<thead><tr>{cells}</tr></thead><tbody>{body}</tbody></table>"
    )


def _bar(fraction: float, color: str = "#c33") -> _Raw:
    width = max(0.0, min(1.0, fraction)) * 100.0
    return _Raw(
        '<span class="bar"><span style="width:'
        f'{width:.1f}%;background:{color}"></span></span>'
    )


_HTML_STYLE = """
body { font-family: ui-monospace, monospace; margin: 2em; color: #222; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.8em 0; }
caption { text-align: left; font-weight: bold; padding-bottom: 0.3em; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.6em; text-align: left; }
th { background: #eee; }
.bar { display: inline-block; width: 120px; height: 0.8em;
       background: #eee; vertical-align: middle; }
.bar span { display: block; height: 100%; }
.fire { color: #b00; font-weight: bold; } .resolve { color: #080; }
.mismatch { color: #b00; font-weight: bold; } .ok { color: #080; }
pre { background: #f6f6f6; padding: 0.8em; overflow-x: auto; }
"""


def render_dashboard_html(dash: RunDashboard) -> str:
    """Standalone-HTML rendering of a dashboard.

    Pure function of the dashboard data -- no wall-clock timestamps, no
    external assets -- so the file is byte-identical across same-seed
    reruns and the results store can pin its hash.
    """
    sections = [f"<h1>{_html_escape(dash.title)}</h1>"]
    for table_title, headers, rows in dash.extra_tables:
        sections.append(_html_table(headers, rows, table_title))
    sections.append(
        _html_table(
            ("run", "violation rate", "", "mean CPUs", "completed", "alerts"),
            [
                (label, f"{viol:.4f}", _bar(viol * 10.0), f"{cpus:.1f}",
                 completed, "-" if transitions is None else transitions)
                for label, viol, cpus, completed, transitions in dash.run_rows
            ],
            "runs",
        )
    )
    if dash.class_rows:
        sections.append(
            _html_table(
                ("class", "requests", "mean ms", "p50 ms", "p99 ms",
                 "violations", ""),
                [
                    (cls, count, f"{mean:.1f}", f"{p50:.1f}", f"{p99:.1f}",
                     "-" if frac is None else f"{frac:.2%}",
                     "" if frac is None else _bar(frac * 10.0))
                    for cls, count, mean, p50, p99, frac in dash.class_rows
                ],
                "latency by class (merged across runs)",
            )
        )
    if dash.burn_rows:
        sections.append(
            _html_table(
                ("run", "class", "budget consumed", "", "fast burn",
                 "slow burn"),
                [
                    (label, cls, f"{consumed:.3f}",
                     _bar(consumed, color="#d80"), f"{fast:.2f}",
                     f"{slow:.2f}")
                    for label, cls, consumed, fast, slow in dash.burn_rows
                ],
                "error-budget burn",
            )
        )
    if dash.alerts:
        shown = dash.alerts[:_MAX_ALERT_ROWS]
        rows = [
            (f"{alert.time:.1f}", label, alert.name, alert.request_class,
             _Raw('<span class="'
                  f'{_html_escape(alert.state)}">'
                  f'{_html_escape(alert.state)}</span>'),
             f"{alert.fast_burn:.2f}", f"{alert.slow_burn:.2f}")
            for label, alert in shown
        ]
        sections.append(
            _html_table(
                ("t_sim", "run", "alert", "class", "state", "fast", "slow"),
                rows,
                f"alert timeline ({len(dash.alerts)} transitions)",
            )
        )
    else:
        sections.append("<p>alert timeline: no transitions</p>")
    if dash.attribution:
        sections.append(
            "<h2>critical-path attribution</h2>"
            f"<pre>{_html_escape(dash.attribution)}</pre>"
        )
    if dash.audit:
        rows = []
        for v in dash.audit:
            css = "mismatch" if v.mismatch else "ok"
            verdict = "MISMATCH" if v.mismatch else "ok"
            rows.append(
                (_Raw(f'<span class="{css}">{verdict}</span>'),
                 v.request_class, v.traced_requests, v.detail)
            )
        sections.append(
            _html_table(
                ("verdict", "class", "traced", "detail"),
                rows,
                "budget audit (observed critical path vs MIP budgets)",
            )
        )
    if dash.utilization_rows:
        top = dash.utilization_rows[0][1] if dash.utilization_rows else 1.0
        sections.append(
            _html_table(
                ("service", "mean CPUs", ""),
                [
                    (svc, f"{cpus:.1f}", _bar(cpus / top if top else 0.0,
                                              color="#36c"))
                    for svc, cpus in dash.utilization_rows
                ],
                "top allocated services (summed across runs)",
            )
        )
    body = "\n".join(sections)
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>{_html_escape(dash.title)}</title>"
        f"<style>{_HTML_STYLE}</style></head>\n"
        f"<body>\n{body}\n</body></html>\n"
    )


def _smoke(out_dir: str) -> int:
    """CI harness: tiny two-shard monitored run -> text + HTML dashboard.

    Runs the same short deployment on two seeds (shards), merges them
    through :func:`build_dashboard` (exercising the histogram merge and
    alert-timeline paths), writes ``dashboard.txt``/``dashboard.html``,
    and self-checks determinism by rendering everything twice.
    """
    import os

    from repro.experiments.artifacts import app_spec
    from repro.experiments.runner import RunOptions, SLOOptions, run_deployment
    from repro.workload.defaults import default_mix_for
    from repro.workload.patterns import ConstantLoad

    def attach_noop(app) -> None:
        """Fixed replicas; the smoke run needs no manager."""

    spec = app_spec("social-network")
    sla_targets = {rc.name: rc.sla.target_s for rc in spec.request_classes}

    def shard(seed: int):
        return run_deployment(
            spec,
            default_mix_for("social-network"),
            ConstantLoad(25.0),
            attach_noop,
            manager_name="noop",
            load_name="constant",
            options=RunOptions(
                seed=seed,
                duration_s=50.0,
                measure_from_s=15.0,
                slo=SLOOptions(fast_window_s=10.0, slow_window_s=30.0,
                               bucket_s=2.0),
                digest=True,
            ),
        )

    results = {f"shard-{seed}": shard(seed) for seed in (11, 12)}

    def render() -> tuple[str, str]:
        dash = build_dashboard(
            results, sla_targets=sla_targets, title="smoke dashboard"
        )
        return render_dashboard_text(dash), render_dashboard_html(dash)

    text, html = render()
    text2, html2 = render()
    if text != text2 or html != html2:
        print("FAIL: dashboard rendering is not deterministic")
        return 1
    os.makedirs(out_dir, exist_ok=True)
    text_path = os.path.join(out_dir, "dashboard.txt")
    html_path = os.path.join(out_dir, "dashboard.html")
    with open(text_path, "w", encoding="utf-8") as fh:
        fh.write(text)
    with open(html_path, "w", encoding="utf-8") as fh:
        fh.write(html)
    completed = sum(r.completed_requests for r in results.values())
    monitored = all(r.slo is not None for r in results.values())
    print(text)
    print(
        f"smoke dashboard: {len(results)} shards, {completed} requests, "
        f"monitored={monitored} -> {text_path}, {html_path}"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.experiments.report`` -- the dashboard harness."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.report",
        description="Deterministic run-dashboard harness.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the tiny two-shard CI smoke dashboard",
    )
    parser.add_argument(
        "--out",
        default="results/smoke_dashboard",
        help="output directory for dashboard.txt / dashboard.html",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return _smoke(args.out)
    parser.error("nothing to do: pass --smoke (see python -m repro --report)")
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
