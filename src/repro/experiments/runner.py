"""Shared experiment harness: deployments under managed load.

Every §VII experiment boils down to: instantiate an application on a
fresh cluster, attach one of the five resource managers, drive a load
pattern, and read violation/allocation metrics.  This module provides that
loop plus the scale profile (quick vs full) used by the benchmarks.

Scale profiles: the ``REPRO_SCALE`` environment variable selects ``quick``
(default -- minutes of simulated time per run, suitable for CI) or
``full`` (closer to the paper's durations).  All benchmarks honour it.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.apps.topology import Application, AppSpec
from repro.cluster.cluster import Cluster
from repro.cluster.node import Node
from repro.sim.engine import Environment
from repro.sim.random import RandomStreams
from repro.sim.trace import RunDigest
from repro.stats.histogram import FixedHistogram
from repro.telemetry.slo import SLOMonitor, slo_specs_for
from repro.telemetry.tracing import Tracer, traces_to_jsonl
from repro.workload.generator import LoadGenerator
from repro.workload.mixes import RequestMix

__all__ = [
    "ScaleProfile",
    "scale_profile",
    "ClusterOptions",
    "DeploymentMetrics",
    "DeploymentResult",
    "RunOptions",
    "SLOArtifacts",
    "SLOOptions",
    "TraceArtifacts",
    "TracingOptions",
    "run_deployment",
]


@dataclass(frozen=True)
class ScaleProfile:
    """Knobs trading fidelity for wall-clock time."""

    name: str
    #: Deployment run length and measurement start (simulated seconds).
    deployment_s: float
    measure_from_s: float
    #: Exploration (Algorithm 1) parameters.
    exploration_window_s: float
    exploration_samples_per_step: int
    exploration_warmup_s: float
    exploration_settle_s: float
    #: ML baseline training budgets (actually simulated).
    sinan_samples: int
    firm_samples: int
    #: Backpressure profiling.
    bp_window_s: float
    bp_samples_per_limit: int


_PROFILES = {
    "quick": ScaleProfile(
        name="quick",
        deployment_s=540.0,
        measure_from_s=120.0,
        exploration_window_s=20.0,
        exploration_samples_per_step=5,
        exploration_warmup_s=40.0,
        exploration_settle_s=10.0,
        sinan_samples=100,
        firm_samples=80,
        bp_window_s=6.0,
        bp_samples_per_limit=6,
    ),
    "full": ScaleProfile(
        name="full",
        deployment_s=2000.0,
        measure_from_s=300.0,
        exploration_window_s=60.0,
        exploration_samples_per_step=10,
        exploration_warmup_s=60.0,
        exploration_settle_s=30.0,
        sinan_samples=1000,
        firm_samples=500,
        bp_window_s=10.0,
        bp_samples_per_limit=8,
    ),
    # Per-cell durations for fleet runs (repro.fleet): many small tenant
    # cells instead of one big deployment, so each cell runs shorter than
    # a quick run.  Exploration/training knobs match quick exactly, so a
    # fleet cell can reuse artefacts cached at quick scale.
    "fleet": ScaleProfile(
        name="fleet",
        deployment_s=360.0,
        measure_from_s=90.0,
        exploration_window_s=20.0,
        exploration_samples_per_step=5,
        exploration_warmup_s=40.0,
        exploration_settle_s=10.0,
        sinan_samples=100,
        firm_samples=80,
        bp_window_s=6.0,
        bp_samples_per_limit=6,
    ),
}


def scale_profile() -> ScaleProfile:
    """The active scale profile (``REPRO_SCALE`` env var)."""
    name = os.environ.get("REPRO_SCALE", "quick")
    try:
        return _PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown REPRO_SCALE {name!r}; choose from {sorted(_PROFILES)}"
        ) from None


#: Default base RPS per application, sized so that key services need
#: several replicas (scaling decisions matter) while runs stay tractable.
DEFAULT_RPS = {
    "social-network": 150.0,
    "vanilla-social-network": 150.0,
    "media-service": 50.0,
    "video-pipeline": 2.5,
}


@dataclass(frozen=True)
class DeploymentMetrics:
    """Serializable telemetry bundle extracted from a finished run.

    ``run_deployment`` used to hand back the live :class:`Application`
    (whose annotation lied about its ``None`` default, and whose
    Environment/generator graph cannot be pickled).  Instead, everything
    downstream consumers may want to inspect is extracted over the
    measurement window before the simulation state is dropped, so results
    can cross process boundaries in :mod:`repro.experiments.parallel`.
    """

    #: Measurement window (simulated seconds) the summaries cover.
    measure_from_s: float
    duration_s: float
    #: Request class -> end-to-end latency summary (the paper's ``t(x)``
    #: histograms) over the measurement window.  Summarised to fixed-size
    #: :class:`~repro.stats.histogram.FixedHistogram`\ s before crossing
    #: the ``run_many`` process boundary: a full-scale run's raw sample
    #: lists pickle to megabytes per class, the histograms to kilobytes,
    #: with P99/violation-rate error bounded by
    #: ``FixedHistogram.relative_error_bound`` (~0.45 %); exact
    #: count/mean/min/max are preserved (see docs/performance.md).
    latency_by_class: dict[str, FixedHistogram]
    #: Service -> mean CPUs allocated over the measurement window.
    cpu_by_service: dict[str, float]
    #: Service -> replica count at the end of the run.
    final_replicas: dict[str, int]


@dataclass(frozen=True)
class TracingOptions:
    """How (and how much) to trace a deployment run.

    Plain data so experiment plans carrying it stay picklable; the live
    :class:`~repro.telemetry.tracing.Tracer` is built inside the worker
    via :meth:`build_tracer`.
    """

    #: Sample every n-th request of each class (int) or per-class mapping.
    sample_every_n: int | Mapping[str, int] = 100
    #: Restrict tracing to these request classes (``None`` = all).
    classes: tuple[str, ...] | None = None
    #: Stop collecting after this many traces (memory bound).
    max_traces: int | None = None
    #: Verify per request that the critical path sums to the e2e latency.
    validate: bool = True

    def build_tracer(self, hub=None) -> Tracer:
        return Tracer(
            sample_every_n=self.sample_every_n,
            classes=self.classes,
            max_traces=self.max_traces,
            hub=hub,
            validate=self.validate,
        )


@dataclass(frozen=True)
class SLOOptions:
    """How to monitor a run's SLOs (plain data, picklable).

    The live :class:`~repro.telemetry.slo.SLOMonitor` is built inside the
    worker via :meth:`build_monitor`; specs come from the application
    spec's per-class SLAs (a p99 SLA yields a 1 % error budget) unless
    ``objective`` overrides the target fraction for every class.
    """

    #: Rolling-window lengths and bucketing (simulated seconds).
    fast_window_s: float = 60.0
    slow_window_s: float = 300.0
    bucket_s: float = 5.0
    #: Multi-window burn thresholds (fire when both windows >= fire;
    #: resolve when both <= resolve).
    burn_threshold: float = 4.0
    resolve_threshold: float = 2.0
    #: Override the per-class objective (``None`` = SLA percentile / 100).
    objective: float | None = None

    def build_monitor(self, spec: AppSpec, clock, hub=None) -> SLOMonitor:
        return SLOMonitor(
            slo_specs_for(spec, objective=self.objective),
            clock=clock,
            fast_window_s=self.fast_window_s,
            slow_window_s=self.slow_window_s,
            bucket_s=self.bucket_s,
            burn_threshold=self.burn_threshold,
            resolve_threshold=self.resolve_threshold,
            hub=hub,
        )


@dataclass(frozen=True)
class ClusterOptions:
    """Shape of the cluster a run deploys onto (plain data, picklable).

    The default matches the historical harness testbed: 8 homogeneous
    96-CPU nodes.  Fleet cells (:mod:`repro.fleet`) shrink this to a
    per-tenant node budget and turn on ``cap_on_full`` so a tight budget
    degrades to queueing (SLA violations) instead of raising
    :class:`~repro.errors.SchedulingError` out of the manager.
    """

    nodes: int = 8
    node_cpus: int = 96
    node_memory_gb: float = 256.0
    #: Cap scale-ups at cluster capacity instead of raising when full.
    cap_on_full: bool = False

    def build_nodes(self) -> list[Node]:
        return [
            Node(f"run-{i}", self.node_cpus, self.node_memory_gb)
            for i in range(self.nodes)
        ]

    @property
    def total_cpus(self) -> int:
        return self.nodes * self.node_cpus


@dataclass(frozen=True)
class SLOArtifacts:
    """Serialized SLO-monitor output of one run (picklable, deterministic)."""

    #: Total alert fire/resolve transitions over the run.
    alert_transitions: int
    #: Canonical JSON-lines dump of the alert timeline
    #: (:func:`~repro.telemetry.slo.alerts_to_jsonl` -- byte-identical
    #: across same-seed reruns).
    alerts_jsonl: str = field(repr=False)
    #: Per-class budget accounting at end of run.
    budget_report: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Per-``service/class`` MIP-budget breach fractions (only when the
    #: manager fed the monitor optimizer budgets).
    service_budget_report: dict[str, dict[str, float]] = field(
        default_factory=dict
    )


@dataclass(frozen=True)
class RunOptions:
    """Consolidated per-run options for every experiment entry point.

    Replaces the ``seed=``/``duration_s=``/``measure_from_s=``/
    ``tracing=``/``digest=`` keyword sprawl that had grown on
    :func:`run_deployment` and
    :func:`~repro.experiments.fig09_10_model_accuracy.run_model_accuracy`.
    Frozen plain data, so :class:`~repro.experiments.parallel.RunPlan`\\ s
    carry it across the process boundary unchanged and the results store
    (:mod:`repro.experiments.store`) can fold it into a run's identity.
    """

    #: Master seed for the run's random streams.
    seed: int = 0
    #: Run length / measurement start (simulated seconds); ``None`` means
    #: take them from the active scale profile.
    duration_s: float | None = None
    measure_from_s: float | None = None
    #: Span-tree sampling (``None`` = off).
    tracing: TracingOptions | None = None
    #: Streaming SLO monitoring (``None`` = off, costs nothing).
    slo: "SLOOptions | None" = None
    #: Checksum the full event trace into ``result.run_digest``.
    digest: bool = False
    #: Scale profile name override (``None`` = honour ``REPRO_SCALE``).
    scale: str | None = None
    #: Cluster shape override (``None`` = the default 8x96 testbed).
    cluster: ClusterOptions | None = None

    def profile(self) -> ScaleProfile:
        """The scale profile this run uses (explicit override or env)."""
        if self.scale is None:
            return scale_profile()
        try:
            return _PROFILES[self.scale]
        except KeyError:
            raise ValueError(
                f"unknown scale {self.scale!r}; choose from {sorted(_PROFILES)}"
            ) from None

    def resolved_duration_s(self) -> float:
        return (
            self.duration_s
            if self.duration_s is not None
            else self.profile().deployment_s
        )

    def resolved_measure_from_s(self) -> float:
        return (
            self.measure_from_s
            if self.measure_from_s is not None
            else self.profile().measure_from_s
        )

    def replace(self, **changes: Any) -> "RunOptions":
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class TraceArtifacts:
    """Serialized tracing output of one run (picklable, deterministic)."""

    #: Finished traces collected by the sampler.
    traced_requests: int
    #: Deterministic JSON-lines dump of the span trees.
    jsonl: str = field(repr=False)
    #: Per-class critical-path attribution one-liners.
    summary: str


@dataclass
class DeploymentResult:
    """Outcome of one managed deployment run.

    Plain data end to end -- picklable so results can be returned from
    worker processes by :func:`repro.experiments.parallel.run_many`.
    """

    app_name: str
    manager: str
    load_name: str
    windowed_violation_rate: float
    mean_cpu_allocation: float
    per_class_violation_rate: dict[str, float]
    completed_requests: int
    wall_seconds: float
    #: Scale-ups refused by a capacity-capped cluster
    #: (:class:`ClusterOptions` ``cap_on_full``); > 0 means the run was
    #: capacity-bound, the signal fleet allocators key on.
    capped_scale_ups: int = 0
    metrics: DeploymentMetrics | None = field(repr=False, default=None)
    #: BLAKE2b checksum of the run's full event trace (``digest=True``).
    run_digest: str | None = None
    #: Span trees + critical-path summary (``tracing=`` option).
    traces: TraceArtifacts | None = field(repr=False, default=None)
    #: Alert timeline + budget accounting (``slo=`` option).
    slo: SLOArtifacts | None = field(repr=False, default=None)


def make_app(
    spec: AppSpec,
    seed: int,
    initial_replicas: Mapping[str, int] | int = 2,
    trace: Callable | None = None,
    tracer: Tracer | None = None,
    cluster_options: ClusterOptions | None = None,
) -> Application:
    """An application on a fresh cluster (default: the 8-node testbed).

    ``trace`` is the engine-level event hook (e.g. a
    :class:`~repro.sim.trace.RunDigest`); ``tracer`` the request-level
    span sampler.  ``cluster_options`` reshapes the cluster (node count,
    node size, capacity capping) -- the knob fleet cells use to enforce
    a per-tenant node budget.
    """
    cluster_options = (
        cluster_options if cluster_options is not None else ClusterOptions()
    )
    env = Environment(trace=trace)
    cluster = Cluster(
        env,
        nodes=cluster_options.build_nodes(),
        cap_on_full=cluster_options.cap_on_full,
    )
    return Application(
        spec,
        env=env,
        cluster=cluster,
        streams=RandomStreams(seed),
        initial_replicas=initial_replicas,
        tracer=tracer,
    )


def run_deployment(
    spec: AppSpec,
    mix: RequestMix,
    pattern,
    attach_manager: Callable[[Application], object],
    manager_name: str,
    load_name: str,
    options: RunOptions | None = None,
) -> DeploymentResult:
    """One managed deployment run under ``pattern`` with ``mix``.

    Per-run knobs travel in ``options`` (a :class:`RunOptions`).
    ``options.tracing`` samples span trees and returns them (serialized)
    in ``result.traces``; ``options.digest`` checksums the full event
    trace into ``result.run_digest``.  Both are pure observers -- the
    simulated timeline is identical with or without them.
    """
    options = options if options is not None else RunOptions()
    duration = options.resolved_duration_s()
    measure_from = options.resolved_measure_from_s()
    run_digest = RunDigest() if options.digest else None
    tracer = (
        options.tracing.build_tracer() if options.tracing is not None else None
    )
    app = make_app(
        spec,
        options.seed,
        trace=run_digest,
        tracer=tracer,
        cluster_options=options.cluster,
    )
    if tracer is not None:
        tracer.hub = app.hub
    slo_monitor = None
    if options.slo is not None:
        env = app.env
        slo_monitor = options.slo.build_monitor(
            spec, clock=lambda: env.now, hub=app.hub
        )
        slo_monitor.attach(app)
    app.env.run(until=10)
    managed = attach_manager(app)
    if slo_monitor is not None:
        # Managers exposing an optimisation outcome (UrsaManager) feed
        # the monitor the MIP's per-service budgets so per-hop breaches
        # stream too; baselines without budgets just skip this.
        budgets = getattr(
            getattr(managed, "outcome", None), "service_budgets", None
        )
        if budgets:
            slo_monitor.set_service_budgets(budgets)
            slo_monitor.attach_services(app)
    generator = LoadGenerator(
        app,
        pattern=pattern,
        mix=mix,
        streams=RandomStreams(options.seed + 7),
        stop_at_s=duration - 30.0,
    )
    generator.start()
    wall_start = time.perf_counter()
    app.env.run(until=duration)
    wall = time.perf_counter() - wall_start
    latency_by_class = {
        rc.name: FixedHistogram.from_samples(
            app.hub.latency_distribution(
                "request_latency", measure_from, duration, {"request": rc.name}
            ).samples()
        )
        for rc in spec.request_classes
    }
    metrics = DeploymentMetrics(
        measure_from_s=measure_from,
        duration_s=duration,
        latency_by_class=latency_by_class,
        cpu_by_service={
            name: app.hub.gauge_mean(
                "cpu_allocated", measure_from, duration,
                {"service": name}, default=0.0,
            )
            for name in app.services
        },
        final_replicas={name: app.replicas(name) for name in app.services},
    )
    traces = None
    if tracer is not None:
        traces = TraceArtifacts(
            traced_requests=len(tracer.finished),
            jsonl=traces_to_jsonl(tracer.finished),
            summary=tracer.summary().render(),
        )
    slo_artifacts = None
    if slo_monitor is not None:
        slo_artifacts = SLOArtifacts(
            alert_transitions=len(slo_monitor.alerts),
            alerts_jsonl=slo_monitor.alerts_jsonl(),
            budget_report=slo_monitor.budget_report(),
            service_budget_report=slo_monitor.service_budget_report(),
        )
    return DeploymentResult(
        app_name=spec.name,
        manager=manager_name,
        load_name=load_name,
        windowed_violation_rate=app.windowed_violation_rate(measure_from, duration),
        mean_cpu_allocation=app.mean_cpu_allocation(measure_from, duration),
        per_class_violation_rate=app.per_class_violation_rate(
            measure_from, duration
        ),
        completed_requests=sum(d.count for d in latency_by_class.values()),
        wall_seconds=wall,
        capped_scale_ups=app.cluster.capped_scale_ups(),
        metrics=metrics,
        run_digest=run_digest.hexdigest() if run_digest is not None else None,
        traces=traces,
        slo=slo_artifacts,
    )
