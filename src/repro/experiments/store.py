"""Deterministic results store: sidecar provenance for ``results/``.

Every regenerated ``results/<name>.txt`` gains a ``results/<name>.meta.json``
sidecar recording *how* the text was produced: the experiment's identity
(scale profile, seed partition, package version), the event-trace digests
of the runs behind it, and per-class metric summaries.  Two guarantees
follow:

* **Save-time mismatch detection.**  :func:`save_result` compares the new
  run against the recorded sidecar: if the identity (experiment, scale,
  seeds, version) matches but the digests -- or, for deterministic
  renders, the text itself -- differ, the previously recorded run no
  longer reproduces and the save raises :class:`ResultsMismatchError`
  instead of silently overwriting.  Set ``REPRO_RESULTS_UPDATE=1`` to
  accept the new run deliberately.
* **Offline integrity checking.**  ``python -m repro.experiments.store``
  (``make results-check``) re-validates every committed sidecar without
  re-running anything: the sidecar's self-checksum (``meta_digest``)
  catches corrupted or hand-edited provenance, and ``result_sha256``
  catches a ``.txt`` that drifted from the recorded run.

Sidecars are canonical JSON (sorted keys, fixed separators) with no
timestamps, so regenerating an experiment with the same seed produces a
byte-identical sidecar -- the file itself is the reproducibility witness.
See docs/results_provenance.md for the format.

**Scale layout.**  Outputs are qualified by the scale profile that
produced them: the CI-checked ``quick`` scale stays at the ``results/``
root (back-compat with every committed sidecar), while any other scale
gets its own subdirectory -- ``results/full/fig02_backpressure.txt`` from
a ``REPRO_SCALE=full`` run coexists with the quick output of the same
experiment instead of clobbering it.  :func:`save_result` routes by
``meta.scale``; :func:`check_results` validates whichever scale
directories are present (``results/traces/`` -- the ``--dump-traces``
output dir -- is never treated as a scale).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro._version import __version__

__all__ = [
    "ResultsMismatchError",
    "RunMeta",
    "deployment_summaries",
    "load_sidecar",
    "merged_digest",
    "present_scales",
    "results_dir",
    "scale_dir",
    "save_result",
    "check_results",
    "sidecar_path",
    "main",
]

#: Bump when the sidecar layout changes incompatibly.
SCHEMA_VERSION = 1

#: The scale whose outputs live at the ``results/`` root.  Everything
#: committed before scales were directory-qualified was a quick run, so
#: keeping quick at the root preserves every existing sidecar path.
_ROOT_SCALE = "quick"

#: ``results/`` subdirectory holding ``--dump-traces`` output; it is a
#: sibling of the scale directories but never a scale itself.
_TRACES_DIR = "traces"

#: Summary percentiles recorded per request class.
_SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)


class ResultsMismatchError(RuntimeError):
    """A previously recorded run no longer reproduces.

    Raised by :func:`save_result` when the new run has the same identity
    (experiment, scale, seeds, package version) as the committed sidecar
    but a different event-trace digest or rendered text.  This is the
    loud failure the store exists for: either the change is intentional
    (re-save with ``REPRO_RESULTS_UPDATE=1``) or nondeterminism crept in.
    """


@dataclass(frozen=True)
class RunMeta:
    """Provenance of one rendered experiment output.

    Built by each experiment module's ``experiment_meta`` helper and
    persisted as the ``results/<name>.meta.json`` sidecar.
    """

    #: Experiment identifier (``fig02``, ``table05``, ...).
    experiment: str
    #: Scale profile the runs used (``quick``/``full``).
    scale: str
    #: Label -> seed for every seeded run behind the output.
    seeds: Mapping[str, int] = field(default_factory=dict)
    #: Label -> event-trace digest (runs that own their Environment).
    #: Controller-internal experiments have no engine hook and record
    #: content hashes only -- see docs/results_provenance.md.
    digests: Mapping[str, str] = field(default_factory=dict)
    #: Per-class (or per-cell) metric summaries, e.g. p99 / violations.
    summaries: Mapping[str, Mapping[str, float]] = field(default_factory=dict)
    #: Whether the rendered text is reproducible byte-for-byte.  False
    #: for outputs embedding wall-clock measurements (table06); their
    #: text hash is recorded but not enforced.
    deterministic: bool = True
    #: Free-form extras (grid shape, window sizes, ...).
    extra: Mapping[str, Any] = field(default_factory=dict)
    #: Label -> alert-stream digest (:func:`repro.telemetry.slo.alerts_digest`
    #: of the run's canonical alert JSONL) for SLO-monitored runs.  Pinned
    #: on save like event-trace digests.
    alerts: Mapping[str, str] = field(default_factory=dict)
    #: Request class -> budget-audit verdict
    #: (:meth:`repro.telemetry.audit.AuditVerdict.to_dict`).
    audits: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)

    def payload(self) -> dict[str, Any]:
        """JSON-ready dict (deep-copied, deterministically ordered).

        ``alerts`` / ``audits`` appear only when non-empty, so sidecars
        of experiments without SLO monitoring are byte-identical to the
        ones committed before the fields existed.
        """
        payload: dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "experiment": self.experiment,
            "scale": self.scale,
            "package_version": __version__,
            "deterministic": self.deterministic,
            "seeds": {k: int(v) for k, v in sorted(self.seeds.items())},
            "digests": {k: str(v) for k, v in sorted(self.digests.items())},
            "summaries": {
                label: {k: v for k, v in sorted(stats.items())}
                for label, stats in sorted(self.summaries.items())
            },
            "extra": json.loads(_canonical_json(dict(self.extra))),
        }
        if self.alerts:
            payload["alerts"] = {
                k: str(v) for k, v in sorted(self.alerts.items())
            }
        if self.audits:
            payload["audits"] = json.loads(
                _canonical_json(
                    {k: dict(v) for k, v in sorted(self.audits.items())}
                )
            )
        return payload


def _canonical_json(payload: Mapping[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _meta_digest(payload: Mapping[str, Any]) -> str:
    """Self-checksum over everything except the ``meta_digest`` field."""
    body = {k: v for k, v in payload.items() if k != "meta_digest"}
    return hashlib.blake2b(
        _canonical_json(body).encode("utf-8"), digest_size=16
    ).hexdigest()


def _text_sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def merged_digest(digests: Mapping[str, str]) -> str:
    """One fingerprint over a set of labelled event-trace digests.

    BLAKE2b over the sorted ``label=digest`` pairs, so the value depends
    only on the set -- never on insertion or completion order.  Fleet
    runs (:mod:`repro.fleet`) pin this as the whole-fleet digest: two
    fleets match iff every cell's run digest matches.
    """
    body = "\n".join(
        f"{label}={digest}" for label, digest in sorted(digests.items())
    )
    return hashlib.blake2b(body.encode("utf-8"), digest_size=16).hexdigest()


def results_dir() -> Path:
    """``results/`` in the repo root (``REPRO_RESULTS_DIR`` overrides)."""
    override = os.environ.get("REPRO_RESULTS_DIR")
    if override:
        path = Path(override)
    else:
        path = Path(__file__).resolve().parents[3] / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def scale_dir(scale: str = _ROOT_SCALE) -> Path:
    """Directory holding outputs produced at ``scale``.

    ``quick`` (and ``""``, for legacy callers) resolves to the
    ``results/`` root; any other scale resolves to ``results/<scale>/``,
    created on demand.  Scale names must be plain path components.
    """
    base = results_dir()
    if scale in ("", _ROOT_SCALE):
        return base
    if (
        "/" in scale
        or os.sep in scale
        or scale in (".", "..", _TRACES_DIR)
    ):
        raise ValueError(f"invalid scale name: {scale!r}")
    path = base / scale
    path.mkdir(parents=True, exist_ok=True)
    return path


def _split_scaled(name: str) -> tuple[str, str]:
    """``"full/fig02"`` -> ``("full", "fig02")``; bare names are quick."""
    scale, sep, base = name.partition("/")
    if sep and base:
        return scale, base
    return _ROOT_SCALE, name


def _rel(scale: str, name: str) -> str:
    """Scale-qualified display name (quick stays bare, like its path)."""
    return name if scale in ("", _ROOT_SCALE) else f"{scale}/{name}"


def sidecar_path(name: str, scale: str = _ROOT_SCALE) -> Path:
    return scale_dir(scale) / f"{name}.meta.json"


def load_sidecar(name: str, scale: str = _ROOT_SCALE) -> dict[str, Any] | None:
    """The parsed sidecar for ``name``, or ``None`` if absent/unreadable."""
    path = sidecar_path(name, scale)
    if not path.exists():
        return None
    try:
        loaded = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return loaded if isinstance(loaded, dict) else None


def _same_identity(old: Mapping[str, Any], new: Mapping[str, Any]) -> bool:
    """Same (experiment, scale, seeds, package version) configuration?"""
    return all(
        old.get(key) == new.get(key)
        for key in ("experiment", "scale", "seeds", "package_version")
    )


def _update_allowed() -> bool:
    return os.environ.get("REPRO_RESULTS_UPDATE", "") == "1"


def save_result(
    name: str,
    text: str,
    meta: RunMeta,
    artifacts: Mapping[str, str] | None = None,
) -> Path:
    """Persist a rendered result plus its provenance sidecar.

    Writes ``<name>.txt`` (with a trailing newline) and
    ``<name>.meta.json`` into the directory for ``meta.scale`` -- the
    ``results/`` root for quick runs, ``results/<scale>/`` otherwise --
    so outputs from different scale profiles never clobber each other.
    If a sidecar from a previous regeneration at the same scale exists
    with the same identity but different digests (or different text, for
    deterministic outputs), raises :class:`ResultsMismatchError` --
    unless ``REPRO_RESULTS_UPDATE=1``.

    ``artifacts`` maps extra file names (e.g. ``fig11_12_report.html``)
    to their full text content; each is written alongside the ``.txt``
    and its sha256 is recorded in the sidecar's ``artifacts`` map, so
    ``check_results`` re-validates them offline like the text itself.
    Artifact names must be plain file names (no path separators).
    """
    rendered = text if text.endswith("\n") else text + "\n"
    payload = meta.payload()
    payload["result_sha256"] = _text_sha256(rendered)
    if artifacts:
        for filename in artifacts:
            if "/" in filename or os.sep in filename or filename.startswith("."):
                raise ValueError(f"invalid artifact name: {filename!r}")
        payload["artifacts"] = {
            filename: _text_sha256(content)
            for filename, content in sorted(artifacts.items())
        }
    payload["meta_digest"] = _meta_digest(payload)

    old = load_sidecar(name, meta.scale)
    if old is not None and _same_identity(old, payload) and not _update_allowed():
        problems = []
        if old.get("digests") != payload["digests"]:
            problems.append(
                f"event-trace digests changed:\n"
                f"  recorded: {old.get('digests')}\n"
                f"  new run:  {payload['digests']}"
            )
        if "alerts" in old and old.get("alerts") != payload.get("alerts"):
            problems.append(
                f"alert-stream digests changed:\n"
                f"  recorded: {old.get('alerts')}\n"
                f"  new run:  {payload.get('alerts')}"
            )
        if meta.deterministic and old.get("deterministic", True) and (
            old.get("result_sha256") != payload["result_sha256"]
        ):
            problems.append(
                f"rendered text changed "
                f"(sha256 {old.get('result_sha256')} -> "
                f"{payload['result_sha256']})"
            )
        if problems:
            raise ResultsMismatchError(
                f"{name}: same experiment/scale/seeds/version as the "
                f"recorded run, but it no longer reproduces.\n"
                + "\n".join(problems)
                + "\nIf the change is intentional, re-run with "
                "REPRO_RESULTS_UPDATE=1 to accept the new run."
            )

    directory = scale_dir(meta.scale)
    txt_path = directory / f"{name}.txt"
    txt_path.write_text(rendered, encoding="utf-8")
    for filename, content in sorted((artifacts or {}).items()):
        (directory / filename).write_text(content, encoding="utf-8")
    side = sidecar_path(name, meta.scale)
    tmp = side.with_name(f"{side.name}.tmp{os.getpid()}")
    tmp.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    os.replace(tmp, side)
    return side


def deployment_summaries(result: Any) -> dict[str, dict[str, float]]:
    """Per-class metric summaries of a ``DeploymentResult``.

    Folds the latency histograms and violation rates the store persists
    into plain floats (rounded so the JSON stays platform-stable).
    """
    summaries: dict[str, dict[str, float]] = {}
    metrics = getattr(result, "metrics", None)
    latency = metrics.latency_by_class if metrics is not None else {}
    for name, hist in sorted(latency.items()):
        stats: dict[str, float] = {"count": float(hist.count)}
        if hist.count:
            stats["mean_s"] = round(hist.mean, 9)
            for q in _SUMMARY_PERCENTILES:
                stats[f"p{q:g}_s"] = round(hist.percentile(q), 9)
        violation = result.per_class_violation_rate.get(name)
        if violation is not None:
            stats["violation_rate"] = round(violation, 9)
        summaries[name] = stats
    return summaries


# ----------------------------------------------------------------------
# Offline checking (``python -m repro.experiments.store``)


def present_scales() -> list[str]:
    """Scales with a results directory on disk, quick (the root) first.

    Any subdirectory of ``results/`` except ``traces/`` is treated as a
    scale directory -- ``check_results`` validates whichever are present
    so a tree holding only quick outputs, or quick plus the weekly
    ``full`` run, both check cleanly without configuration.
    """
    base = results_dir()
    scales = [_ROOT_SCALE]
    for entry in sorted(base.iterdir()):
        if entry.is_dir() and entry.name != _TRACES_DIR:
            scales.append(entry.name)
    return scales


def _check_scale(scale: str, names: list[str] | None, strict: bool) -> list[str]:
    """Problems for one scale directory (see :func:`check_results`)."""
    directory = scale_dir(scale)
    scan_stale = names is None
    if names is None:
        names = sorted(p.stem for p in directory.glob("*.txt"))
    problems: list[str] = []
    for name in names:
        label = _rel(scale, name)
        txt_path = directory / f"{name}.txt"
        if not txt_path.exists():
            problems.append(f"{label}: results/{label}.txt does not exist")
            continue
        sidecar = load_sidecar(name, scale)
        if sidecar is None:
            if sidecar_path(name, scale).exists():
                problems.append(f"{label}: sidecar is not valid JSON")
            elif strict:
                problems.append(f"{label}: missing sidecar (strict mode)")
            continue
        recorded = sidecar.get("meta_digest")
        if recorded != _meta_digest(sidecar):
            problems.append(
                f"{label}: sidecar self-checksum mismatch "
                f"(recorded {recorded}, computed {_meta_digest(sidecar)}) "
                "-- provenance was corrupted or hand-edited"
            )
            continue
        recorded_scale = sidecar.get("scale")
        if isinstance(recorded_scale, str) and recorded_scale != scale:
            problems.append(
                f"{label}: sidecar records scale "
                f"{recorded_scale!r} but sits in the {scale!r} "
                "directory -- a misplaced or miscopied output"
            )
            continue
        if sidecar.get("deterministic", True):
            actual = _text_sha256(txt_path.read_text(encoding="utf-8"))
            if actual != sidecar.get("result_sha256"):
                problems.append(
                    f"{label}: results/{label}.txt does not match the "
                    f"recorded run (sha256 {actual} vs recorded "
                    f"{sidecar.get('result_sha256')}) -- regenerate or "
                    "update the sidecar"
                )
        recorded_artifacts = sidecar.get("artifacts")
        if isinstance(recorded_artifacts, dict):
            for filename, recorded_sha in sorted(recorded_artifacts.items()):
                artifact_path = directory / filename
                if not artifact_path.exists():
                    problems.append(
                        f"{label}: recorded artifact {filename} is missing"
                    )
                    continue
                actual = _text_sha256(
                    artifact_path.read_text(encoding="utf-8")
                )
                if actual != recorded_sha:
                    problems.append(
                        f"{label}: artifact {filename} does not match the "
                        f"recorded run (sha256 {actual} vs recorded "
                        f"{recorded_sha})"
                    )
    if scan_stale:
        for side in sorted(directory.glob("*.meta.json")):
            stem = side.name[: -len(".meta.json")]
            if not (directory / f"{stem}.txt").exists():
                label = _rel(scale, stem)
                problems.append(
                    f"{label}: stale sidecar with no results/{label}.txt"
                )
    return problems


def check_results(
    names: list[str] | None = None, strict: bool = False
) -> list[str]:
    """Validate committed results against their sidecars, offline.

    With no ``names``, every scale directory present is checked (quick
    at the root plus any ``results/<scale>/`` subdirectories, skipping
    ``traces/``).  Names may be scale-qualified (``full/fig02``); bare
    names refer to quick outputs at the root.

    Returns a list of human-readable problems (empty = all good):

    * sidecar fails to parse, or its ``meta_digest`` self-checksum does
      not match (corrupted / hand-edited provenance);
    * sidecar records a different scale than the directory it sits in
      (a misplaced output);
    * ``result_sha256`` does not match the committed ``.txt`` (the text
      drifted from the recorded run) -- enforced only for sidecars
      marked ``deterministic``;
    * a recorded artifact (e.g. an HTML report) is missing or does not
      match its recorded sha256;
    * a sidecar with no matching ``.txt`` (stale provenance);
    * with ``strict=True``, a ``.txt`` with no sidecar.
    """
    if names is not None:
        by_scale: dict[str, list[str]] = {}
        for raw in names:
            scale, base = _split_scaled(raw)
            by_scale.setdefault(scale, []).append(base)
        problems: list[str] = []
        for scale in sorted(by_scale):
            problems.extend(_check_scale(scale, by_scale[scale], strict))
        return problems
    problems = []
    for scale in present_scales():
        problems.extend(_check_scale(scale, None, strict))
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.store",
        description=(
            "Validate results/*.txt against their .meta.json provenance "
            "sidecars without re-running experiments."
        ),
    )
    parser.add_argument(
        "names",
        nargs="*",
        help=(
            "result names to check, optionally scale-qualified like "
            "full/fig02 (default: every scale directory present)"
        ),
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on .txt files that have no sidecar yet",
    )
    args = parser.parse_args(argv)
    problems = check_results(args.names or None, strict=args.strict)
    for problem in problems:
        print(f"FAIL {problem}", file=sys.stderr)
    if args.names:
        checked = list(args.names)
        scales = sorted({_split_scaled(raw)[0] for raw in args.names})
    else:
        scales = present_scales()
        checked = [
            _rel(scale, p.stem)
            for scale in scales
            for p in sorted(scale_dir(scale).glob("*.txt"))
        ]
    print(
        f"results-check: {len(checked)} result(s) across "
        f"{len(scales)} scale(s) [{', '.join(scales)}], "
        f"{len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
