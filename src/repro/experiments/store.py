"""Deterministic results store: sidecar provenance for ``results/``.

Every regenerated ``results/<name>.txt`` gains a ``results/<name>.meta.json``
sidecar recording *how* the text was produced: the experiment's identity
(scale profile, seed partition, package version), the event-trace digests
of the runs behind it, and per-class metric summaries.  Two guarantees
follow:

* **Save-time mismatch detection.**  :func:`save_result` compares the new
  run against the recorded sidecar: if the identity (experiment, scale,
  seeds, version) matches but the digests -- or, for deterministic
  renders, the text itself -- differ, the previously recorded run no
  longer reproduces and the save raises :class:`ResultsMismatchError`
  instead of silently overwriting.  Set ``REPRO_RESULTS_UPDATE=1`` to
  accept the new run deliberately.
* **Offline integrity checking.**  ``python -m repro.experiments.store``
  (``make results-check``) re-validates every committed sidecar without
  re-running anything: the sidecar's self-checksum (``meta_digest``)
  catches corrupted or hand-edited provenance, and ``result_sha256``
  catches a ``.txt`` that drifted from the recorded run.

Sidecars are canonical JSON (sorted keys, fixed separators) with no
timestamps, so regenerating an experiment with the same seed produces a
byte-identical sidecar -- the file itself is the reproducibility witness.
See docs/results_provenance.md for the format.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro._version import __version__

__all__ = [
    "ResultsMismatchError",
    "RunMeta",
    "deployment_summaries",
    "load_sidecar",
    "results_dir",
    "save_result",
    "check_results",
    "sidecar_path",
    "main",
]

#: Bump when the sidecar layout changes incompatibly.
SCHEMA_VERSION = 1

#: Summary percentiles recorded per request class.
_SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)


class ResultsMismatchError(RuntimeError):
    """A previously recorded run no longer reproduces.

    Raised by :func:`save_result` when the new run has the same identity
    (experiment, scale, seeds, package version) as the committed sidecar
    but a different event-trace digest or rendered text.  This is the
    loud failure the store exists for: either the change is intentional
    (re-save with ``REPRO_RESULTS_UPDATE=1``) or nondeterminism crept in.
    """


@dataclass(frozen=True)
class RunMeta:
    """Provenance of one rendered experiment output.

    Built by each experiment module's ``experiment_meta`` helper and
    persisted as the ``results/<name>.meta.json`` sidecar.
    """

    #: Experiment identifier (``fig02``, ``table05``, ...).
    experiment: str
    #: Scale profile the runs used (``quick``/``full``).
    scale: str
    #: Label -> seed for every seeded run behind the output.
    seeds: Mapping[str, int] = field(default_factory=dict)
    #: Label -> event-trace digest (runs that own their Environment).
    #: Controller-internal experiments have no engine hook and record
    #: content hashes only -- see docs/results_provenance.md.
    digests: Mapping[str, str] = field(default_factory=dict)
    #: Per-class (or per-cell) metric summaries, e.g. p99 / violations.
    summaries: Mapping[str, Mapping[str, float]] = field(default_factory=dict)
    #: Whether the rendered text is reproducible byte-for-byte.  False
    #: for outputs embedding wall-clock measurements (table06); their
    #: text hash is recorded but not enforced.
    deterministic: bool = True
    #: Free-form extras (grid shape, window sizes, ...).
    extra: Mapping[str, Any] = field(default_factory=dict)

    def payload(self) -> dict[str, Any]:
        """JSON-ready dict (deep-copied, deterministically ordered)."""
        return {
            "schema": SCHEMA_VERSION,
            "experiment": self.experiment,
            "scale": self.scale,
            "package_version": __version__,
            "deterministic": self.deterministic,
            "seeds": {k: int(v) for k, v in sorted(self.seeds.items())},
            "digests": {k: str(v) for k, v in sorted(self.digests.items())},
            "summaries": {
                label: {k: v for k, v in sorted(stats.items())}
                for label, stats in sorted(self.summaries.items())
            },
            "extra": json.loads(_canonical_json(dict(self.extra))),
        }


def _canonical_json(payload: Mapping[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _meta_digest(payload: Mapping[str, Any]) -> str:
    """Self-checksum over everything except the ``meta_digest`` field."""
    body = {k: v for k, v in payload.items() if k != "meta_digest"}
    return hashlib.blake2b(
        _canonical_json(body).encode("utf-8"), digest_size=16
    ).hexdigest()


def _text_sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def results_dir() -> Path:
    """``results/`` in the repo root (``REPRO_RESULTS_DIR`` overrides)."""
    override = os.environ.get("REPRO_RESULTS_DIR")
    if override:
        path = Path(override)
    else:
        path = Path(__file__).resolve().parents[3] / "results"
    path.mkdir(parents=True, exist_ok=True)
    return path


def sidecar_path(name: str) -> Path:
    return results_dir() / f"{name}.meta.json"


def load_sidecar(name: str) -> dict[str, Any] | None:
    """The parsed sidecar for ``name``, or ``None`` if absent/unreadable."""
    path = sidecar_path(name)
    if not path.exists():
        return None
    try:
        loaded = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return loaded if isinstance(loaded, dict) else None


def _same_identity(old: Mapping[str, Any], new: Mapping[str, Any]) -> bool:
    """Same (experiment, scale, seeds, package version) configuration?"""
    return all(
        old.get(key) == new.get(key)
        for key in ("experiment", "scale", "seeds", "package_version")
    )


def _update_allowed() -> bool:
    return os.environ.get("REPRO_RESULTS_UPDATE", "") == "1"


def save_result(name: str, text: str, meta: RunMeta) -> Path:
    """Persist a rendered result plus its provenance sidecar.

    Writes ``results/<name>.txt`` (with a trailing newline) and
    ``results/<name>.meta.json``.  If a sidecar from a previous
    regeneration exists with the same identity but different digests (or
    different text, for deterministic outputs), raises
    :class:`ResultsMismatchError` -- unless ``REPRO_RESULTS_UPDATE=1``.
    """
    rendered = text if text.endswith("\n") else text + "\n"
    payload = meta.payload()
    payload["result_sha256"] = _text_sha256(rendered)
    payload["meta_digest"] = _meta_digest(payload)

    old = load_sidecar(name)
    if old is not None and _same_identity(old, payload) and not _update_allowed():
        problems = []
        if old.get("digests") != payload["digests"]:
            problems.append(
                f"event-trace digests changed:\n"
                f"  recorded: {old.get('digests')}\n"
                f"  new run:  {payload['digests']}"
            )
        if meta.deterministic and old.get("deterministic", True) and (
            old.get("result_sha256") != payload["result_sha256"]
        ):
            problems.append(
                f"rendered text changed "
                f"(sha256 {old.get('result_sha256')} -> "
                f"{payload['result_sha256']})"
            )
        if problems:
            raise ResultsMismatchError(
                f"{name}: same experiment/scale/seeds/version as the "
                f"recorded run, but it no longer reproduces.\n"
                + "\n".join(problems)
                + "\nIf the change is intentional, re-run with "
                "REPRO_RESULTS_UPDATE=1 to accept the new run."
            )

    directory = results_dir()
    txt_path = directory / f"{name}.txt"
    txt_path.write_text(rendered, encoding="utf-8")
    side = sidecar_path(name)
    tmp = side.with_name(f"{side.name}.tmp{os.getpid()}")
    tmp.write_text(
        json.dumps(payload, sort_keys=True, indent=2) + "\n", encoding="utf-8"
    )
    os.replace(tmp, side)
    return side


def deployment_summaries(result: Any) -> dict[str, dict[str, float]]:
    """Per-class metric summaries of a ``DeploymentResult``.

    Folds the latency histograms and violation rates the store persists
    into plain floats (rounded so the JSON stays platform-stable).
    """
    summaries: dict[str, dict[str, float]] = {}
    metrics = getattr(result, "metrics", None)
    latency = metrics.latency_by_class if metrics is not None else {}
    for name, hist in sorted(latency.items()):
        stats: dict[str, float] = {"count": float(hist.count)}
        if hist.count:
            stats["mean_s"] = round(hist.mean, 9)
            for q in _SUMMARY_PERCENTILES:
                stats[f"p{q:g}_s"] = round(hist.percentile(q), 9)
        violation = result.per_class_violation_rate.get(name)
        if violation is not None:
            stats["violation_rate"] = round(violation, 9)
        summaries[name] = stats
    return summaries


# ----------------------------------------------------------------------
# Offline checking (``python -m repro.experiments.store``)


def check_results(
    names: list[str] | None = None, strict: bool = False
) -> list[str]:
    """Validate committed results against their sidecars, offline.

    Returns a list of human-readable problems (empty = all good):

    * sidecar fails to parse, or its ``meta_digest`` self-checksum does
      not match (corrupted / hand-edited provenance);
    * ``result_sha256`` does not match the committed ``.txt`` (the text
      drifted from the recorded run) -- enforced only for sidecars
      marked ``deterministic``;
    * a sidecar with no matching ``.txt`` (stale provenance);
    * with ``strict=True``, a ``.txt`` with no sidecar.
    """
    directory = results_dir()
    if names is None:
        names = sorted(p.stem for p in directory.glob("*.txt"))
    problems: list[str] = []
    for name in names:
        txt_path = directory / f"{name}.txt"
        if not txt_path.exists():
            problems.append(f"{name}: results/{name}.txt does not exist")
            continue
        sidecar = load_sidecar(name)
        if sidecar is None:
            if sidecar_path(name).exists():
                problems.append(f"{name}: sidecar is not valid JSON")
            elif strict:
                problems.append(f"{name}: missing sidecar (strict mode)")
            continue
        recorded = sidecar.get("meta_digest")
        if recorded != _meta_digest(sidecar):
            problems.append(
                f"{name}: sidecar self-checksum mismatch "
                f"(recorded {recorded}, computed {_meta_digest(sidecar)}) "
                "-- provenance was corrupted or hand-edited"
            )
            continue
        if sidecar.get("deterministic", True):
            actual = _text_sha256(txt_path.read_text(encoding="utf-8"))
            if actual != sidecar.get("result_sha256"):
                problems.append(
                    f"{name}: results/{name}.txt does not match the "
                    f"recorded run (sha256 {actual} vs recorded "
                    f"{sidecar.get('result_sha256')}) -- regenerate or "
                    "update the sidecar"
                )
    for side in sorted(directory.glob("*.meta.json")):
        stem = side.name[: -len(".meta.json")]
        if not (directory / f"{stem}.txt").exists():
            problems.append(
                f"{stem}: stale sidecar with no results/{stem}.txt"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.store",
        description=(
            "Validate results/*.txt against their .meta.json provenance "
            "sidecars without re-running experiments."
        ),
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="result names to check (default: every results/*.txt)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on .txt files that have no sidecar yet",
    )
    args = parser.parse_args(argv)
    problems = check_results(args.names or None, strict=args.strict)
    for problem in problems:
        print(f"FAIL {problem}", file=sys.stderr)
    checked = args.names or sorted(
        p.stem for p in results_dir().glob("*.txt")
    )
    print(
        f"results-check: {len(checked)} result(s), "
        f"{len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
