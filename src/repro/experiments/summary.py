"""Aggregate the rendered ``results/`` files into one digest.

``python -m repro summary`` prints every regenerated table/figure in
paper order with a one-line provenance header -- handy after a full
benchmark run.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["results_dir", "summarize"]

#: Paper ordering of the result files.
ORDER = (
    ("fig02_backpressure", "Fig. 2 — backpressure propagation"),
    ("fig04_thresholds", "Fig. 4 — backpressure-free thresholds"),
    ("table05_exploration", "Table V — exploration overhead"),
    ("fig09_model_accuracy", "Fig. 9 — model accuracy (social network)"),
    ("fig10_model_accuracy", "Fig. 10 — model accuracy (video pipeline)"),
    ("fig11_12_performance", "Figs. 11/12 — violations & CPU"),
    ("fig13_diurnal", "Fig. 13 — diurnal trace"),
    ("table06_control_plane", "Table VI — control-plane latency"),
    ("fig14_service_change", "Fig. 14 — service change"),
    ("ablation_grid", "Ablation — percentile grid"),
    ("ablation_backpressure", "Ablation — backpressure stop"),
    ("ablation_ttest", "Ablation — t-test scaling"),
)


def results_dir() -> Path:
    return Path(__file__).resolve().parents[3] / "results"


def summarize(directory: Path | None = None) -> str:
    """One digest string over all present result files."""
    base = directory if directory is not None else results_dir()
    blocks = []
    missing = []
    for stem, title in ORDER:
        path = base / f"{stem}.txt"
        if path.exists():
            rule = "=" * len(title)
            blocks.append(f"{title}\n{rule}\n{path.read_text().rstrip()}")
        else:
            missing.append(stem)
    if missing:
        blocks.append(
            "missing (run `pytest benchmarks/ --benchmark-only`): "
            + ", ".join(missing)
        )
    if not blocks:
        return "no results yet — run `pytest benchmarks/ --benchmark-only`"
    return "\n\n".join(blocks)
