"""Table V -- exploration overhead: Ursa vs Sinan/Firm.

Ursa's numbers are *measured*: Algorithm 1 runs per service, samples are
summed over services, and the reported exploration time is the longest
single-service profiling time (services profile independently / in
parallel).  Sinan and Firm are accounted at the paper-prescribed training
budget -- 10,000 samples at the shared once-per-minute sampling frequency
(166.7 h) -- since that is what those systems *require* per their own
papers; the actually-simulated training for the performance experiments
uses a smaller budget (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import artifacts
from repro.experiments.parallel import RunPlan, run_many
from repro.experiments.report import render_table
from repro.experiments.runner import scale_profile
from repro.experiments.store import RunMeta

__all__ = [
    "ExplorationOverheadRow",
    "run_table05",
    "ML_PRESCRIBED_SAMPLES",
    "experiment_meta",
]

#: §VII-C: 10k samples for Sinan and Firm, sampled once per minute.
ML_PRESCRIBED_SAMPLES = 10_000
ML_SAMPLE_PERIOD_S = 60.0

#: Applications in the table (paper rows: Social, Media, Video).
TABLE5_APPS = ("social-network", "media-service", "video-pipeline")


@dataclass
class ExplorationOverheadRow:
    app: str
    ursa_samples: int
    ursa_time_h: float
    ml_samples: int
    ml_time_h: float
    #: Engine event-trace digest of the Algorithm-1 run that built the
    #: app's profiles (empty for artefacts cached before tracing existed).
    trace_digest: str = ""

    @property
    def sample_reduction(self) -> float:
        return self.ml_samples / max(1, self.ursa_samples)

    @property
    def time_reduction(self) -> float:
        return self.ml_time_h / max(1e-9, self.ursa_time_h)


@dataclass
class Table05:
    rows: list[ExplorationOverheadRow]

    def render(self) -> str:
        return render_table(
            [
                "App",
                "Ursa samples",
                "Ursa time (h)",
                "Sinan/Firm samples",
                "Sinan/Firm time (h)",
                "sample x",
                "time x",
            ],
            [
                (
                    r.app,
                    r.ursa_samples,
                    f"{r.ursa_time_h:.2f}",
                    r.ml_samples,
                    f"{r.ml_time_h:.1f}",
                    f"{r.sample_reduction:.1f}",
                    f"{r.time_reduction:.1f}",
                )
                for r in self.rows
            ],
            title="Table V: exploration overhead",
        )


def _explore_app(app_name: str) -> ExplorationOverheadRow:
    """One table row; runs (or loads the cached) Algorithm 1 for one app."""
    exploration = artifacts.exploration_result(app_name)
    return ExplorationOverheadRow(
        app=app_name,
        ursa_samples=exploration.total_samples,
        ursa_time_h=exploration.exploration_time_s / 3600.0,
        ml_samples=ML_PRESCRIBED_SAMPLES,
        ml_time_h=ML_PRESCRIBED_SAMPLES * ML_SAMPLE_PERIOD_S / 3600.0,
        # getattr: pickled artefacts from before the digest field existed
        # deserialise without it.
        trace_digest=getattr(exploration, "trace_digest", None) or "",
    )


def run_table05(
    apps: tuple[str, ...] = TABLE5_APPS,
    jobs: int | None = None,
    on_complete=None,
) -> Table05:
    """Per-app explorations fan out: each worker profiles one app.

    Exploration is deterministic given the app spec, so cold-cache
    parallel runs produce the same rows a sequential run would; warm
    caches make the fan-out trivial either way.
    """
    plans = [
        RunPlan(_explore_app, {"app_name": a}, label=f"table05:{a}") for a in apps
    ]
    return Table05(rows=run_many(plans, jobs=jobs, on_complete=on_complete))


def experiment_meta(table: Table05) -> RunMeta:
    """Provenance sidecar for Table V.

    The exploration controller installs an event-trace hook on every
    per-service environment and the resulting digest rides inside the
    cached artefact, so even warm-cache runs pin the engine-level
    fingerprint of the Algorithm-1 run that built each app's profiles.
    """
    return RunMeta(
        experiment="table05",
        scale=scale_profile().name,
        seeds={},
        digests={r.app: r.trace_digest for r in table.rows if r.trace_digest},
        summaries={
            r.app: {
                "ursa_samples": float(r.ursa_samples),
                "ursa_time_h": round(r.ursa_time_h, 6),
            }
            for r in table.rows
        },
    )
