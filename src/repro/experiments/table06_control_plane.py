"""Table VI -- control-plane latency (milliseconds).

Measures the wall-clock cost of each system's decision paths on this
machine:

* **Deploy** (the per-interval decision): Ursa's threshold check per
  service; Sinan's candidate batch through the MLP + GBDT; Firm's
  per-service actor forward passes; the autoscaler's utilisation
  comparison.
* **Update** (adapting to changed logic/mix): Ursa re-solves the MIP;
  Firm runs an online RL update iteration (the paper notes thousands of
  iterations are needed for full adaptation); Sinan requires a full
  retraining, reported out-of-band (the paper lists N/A); the autoscaler
  has nothing to update.

Absolute numbers depend on the host; the shape to reproduce is
``autoscaler < Ursa << Firm << Sinan`` for deployment and
``Ursa << Firm-per-iteration`` for updates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.baselines.autoscaler import StepAutoscaler, auto_a
from repro.baselines.firm import FirmManager
from repro.baselines.sinan import SinanManager
from repro.core.manager import UrsaManager
from repro.experiments import artifacts
from repro.experiments.report import render_table
from repro.experiments.runner import make_app, scale_profile
from repro.experiments.store import RunMeta
from repro.sim.random import RandomStreams
from repro.workload.defaults import default_mix_for
from repro.workload.generator import LoadGenerator
from repro.workload.patterns import ConstantLoad

__all__ = ["ControlPlaneLatency", "run_table06", "experiment_meta"]

#: Default seed for the warmed deployments the timings run on.
TABLE6_SEED = 31


@dataclass
class ControlPlaneLatency:
    """All measurements in milliseconds."""

    deploy_ms: dict[str, float]
    update_ms: dict[str, float | None]

    def render(self) -> str:
        systems = ["ursa", "sinan", "firm", "autoscaling"]
        rows = [
            ["Deploy"] + [f"{self.deploy_ms[s]:.3f}" for s in systems],
            ["Update"]
            + [
                "N/A" if self.update_ms[s] is None else f"{self.update_ms[s]:.1f}"
                for s in systems
            ],
        ]
        return render_table(
            ["", *systems], rows, title="Table VI: control plane latency (ms)"
        )


def run_table06(
    app_name: str = "social-network", seed: int = TABLE6_SEED, warm_s: float = 150.0
) -> ControlPlaneLatency:
    """Measure decision latencies on a warmed-up deployment."""
    spec = artifacts.app_spec(app_name)
    mix = default_mix_for(app_name)
    rps = artifacts.app_rps(app_name)
    exploration = artifacts.exploration_result(app_name)
    predictor = artifacts.sinan_predictor(app_name)
    agents = artifacts.firm_agents(app_name)

    def warmed_app():
        app = make_app(spec, seed=seed)
        app.env.run(until=10)
        LoadGenerator(
            app,
            pattern=ConstantLoad(rps),
            mix=mix,
            streams=RandomStreams(seed + 1),
            stop_at_s=warm_s,
        ).start()
        return app

    class_loads = {c: rps * mix.fraction(c) for c in mix.classes()}
    deploy_ms: dict[str, float] = {}
    update_ms: dict[str, float | None] = {}

    # ---- Ursa ---------------------------------------------------------
    app = warmed_app()
    ursa = UrsaManager(app, exploration)
    ursa.initialize(class_loads)
    app.env.run(until=warm_s)
    deploy_ms["ursa"] = ursa.time_deploy_decision(repeats=50) * 1000.0
    update_ms["ursa"] = ursa.time_update_decision(class_loads) * 1000.0

    # ---- Sinan --------------------------------------------------------
    app = warmed_app()
    sinan = SinanManager(app, predictor)
    sinan.initialize(2)
    app.env.run(until=warm_s)
    deploy_ms["sinan"] = sinan.time_decision(repeats=10) * 1000.0
    update_ms["sinan"] = None  # full retraining; not an online operation

    # ---- Firm ---------------------------------------------------------
    app = warmed_app()
    firm = FirmManager(app, agents)
    firm.initialize(2)
    app.env.run(until=warm_s)
    # Fill the replay buffers so the update is representative.
    for agent in agents.values():
        if len(agent.buffer) < 64:
            import numpy as np

            for _ in range(64):
                state = np.random.default_rng(0).uniform(0, 1, 4)
                agent.remember(state, 0.0, -1.0, state)
    deploy_ms["firm"] = firm.time_decision(repeats=20) * 1000.0
    update_ms["firm"] = firm.time_update(iterations=1) * 1000.0

    # ---- Autoscaling ----------------------------------------------------
    app = warmed_app()
    scaler = StepAutoscaler(app, auto_a())
    app.env.run(until=warm_s)
    start = time.perf_counter()
    repeats = 100
    for _ in range(repeats):
        for service in app.services:
            scaler.decide(service)
    deploy_ms["autoscaling"] = (time.perf_counter() - start) / repeats * 1000.0
    update_ms["autoscaling"] = deploy_ms["autoscaling"]

    return ControlPlaneLatency(deploy_ms=deploy_ms, update_ms=update_ms)


def experiment_meta(
    result: ControlPlaneLatency,
    app_name: str = "social-network",
    seed: int = TABLE6_SEED,
) -> RunMeta:
    """Provenance sidecar for Table VI.

    The table reports host wall-clock timings, so ``deterministic`` is
    False: regeneration is expected to change the numbers and the store
    must not flag the drift.  What *is* pinned is the identity (scale,
    seed, package version) under which the timings were taken.
    """
    return RunMeta(
        experiment="table06",
        scale=scale_profile().name,
        seeds={app_name: seed},
        deterministic=False,
        summaries={
            system: {"deploy_ms": round(ms, 6)}
            for system, ms in sorted(result.deploy_ms.items())
        },
    )
