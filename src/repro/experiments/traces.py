"""Persisting sampled span trees as Chrome-trace files.

The ``--dump-traces N`` CLI flag routes here: each experiment result
that carries serialized traces (``TraceArtifacts.jsonl``) contributes a
*source* (e.g. a Fig. 11/12 grid cell), and for every request class the
N slowest sampled requests are written out as individual Chrome
``trace_event`` files under ``results/traces/<experiment>/``, one file
per request, loadable in ``chrome://tracing`` / Perfetto.

Selection and file naming are deterministic: traces are ranked by
(latency descending, request id ascending), and the request id -- unique
within a run -- is part of the file name, so re-running the same seeds
overwrites the same files byte-for-byte.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Mapping

from repro.telemetry.tracing import Trace, traces_from_jsonl, write_chrome_trace

__all__ = ["dump_slowest_traces"]


def _slug(text: str) -> str:
    """File-name-safe form of a source/class label."""
    return re.sub(r"[^A-Za-z0-9._-]+", "-", text).strip("-")


def _slowest_per_class(traces: list[Trace], n: int) -> list[Trace]:
    by_class: dict[str, list[Trace]] = {}
    for trace in traces:
        if trace.completion is None:
            continue
        by_class.setdefault(trace.request_class, []).append(trace)
    picked: list[Trace] = []
    for _name, group in sorted(by_class.items()):
        group.sort(key=lambda t: (-t.latency, t.request_id))
        picked.extend(group[:n])
    return picked


def dump_slowest_traces(
    jsonl_by_source: Mapping[str, str],
    n: int,
    out_dir: str | Path,
    experiment: str,
) -> list[Path]:
    """Write the N slowest traces per request class of each source.

    ``jsonl_by_source`` maps a source label (grid cell, app name, ...)
    to the :func:`~repro.telemetry.tracing.traces_to_jsonl` dump of that
    run.  Returns the written paths, sorted.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    base = Path(out_dir) / _slug(experiment)
    written: list[Path] = []
    for source, jsonl in sorted(jsonl_by_source.items()):
        for trace in _slowest_per_class(traces_from_jsonl(jsonl), n):
            name = (
                f"{_slug(source)}.{_slug(trace.request_class)}"
                f".r{trace.request_id:06d}.trace.json"
            )
            path = base / name
            write_chrome_trace([trace], path)
            written.append(path)
    return sorted(written)
