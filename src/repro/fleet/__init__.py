"""Fleet-scale sharded simulation: many tenant cells, one node budget.

See :mod:`repro.fleet.spec` for the data model, :mod:`repro.fleet
.allocator` for the budget-splitting policies, and :mod:`repro.fleet
.runner` for execution.  The supported entry point is
:func:`repro.api.simulate_fleet`.
"""

from repro.fleet.allocator import (
    ALLOCATORS,
    CellSignal,
    greedy_rebalance,
    static_equal,
)
from repro.fleet.runner import (
    FleetOutcome,
    FleetPlan,
    FleetResult,
    experiment_meta,
    fleet_report,
    plan_fleet,
    run_fleet,
)
from repro.fleet.spec import (
    FLEET_APPS,
    FLEET_LOADS,
    FLEET_SEED,
    CellSpec,
    FleetSpec,
    default_fleet,
)

__all__ = [
    "ALLOCATORS",
    "CellSignal",
    "CellSpec",
    "FLEET_APPS",
    "FLEET_LOADS",
    "FLEET_SEED",
    "FleetOutcome",
    "FleetPlan",
    "FleetResult",
    "FleetSpec",
    "default_fleet",
    "experiment_meta",
    "fleet_report",
    "greedy_rebalance",
    "plan_fleet",
    "run_fleet",
    "static_equal",
]
