"""Fleet-level node allocators: split a global budget across cells.

Allocators are *pure functions* from ``(FleetSpec, probe signals)`` to
``{cell name: node budget}`` -- no RNG, no wall clock, no simulation
state -- so the same probe epoch always yields the same budgets and the
main epoch's run digests are reproducible byte for byte.

Two policies, matching the paper's evaluation style (a managed policy
against a static baseline at *equal total cost*):

* ``static`` -- every cell gets ``total_nodes / n_cells`` (remainders to
  the first cells in name order).  This is the no-information baseline.
* ``greedy`` -- headroom stealing.  Starting from the static split, move
  one node at a time from the least SLO-pressured donor cell (above the
  per-cell floor) to the most pressured receiver, until pressures even
  out.  Pressure estimates are rescaled by ``static budget / current
  budget`` after every move, so a receiver's estimated pressure falls as
  it gains nodes and a donor's rises as it sheds them -- the loop
  terminates without ever re-simulating.

The pressure signal itself comes from the PR-9 SLO monitor: the probe
epoch runs every cell at the static split with :class:`~repro.telemetry
.slo.SLOMonitor` attached, and :func:`repro.telemetry.slo
.budget_pressure` collapses each cell's error-budget report to one
scalar (budget consumed, nudged by slow burn).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.fleet.spec import FleetSpec

__all__ = [
    "ALLOCATORS",
    "CellSignal",
    "greedy_rebalance",
    "static_equal",
]

#: Stop stealing once the donor/receiver pressure-estimate gap closes
#: below this; keeps the greedy loop from churning nodes between cells
#: that are already balanced.
_PRESSURE_GAP = 0.25

#: A donor's projected mean utilization after shedding a node must stay
#: under this, leaving slack for load peaks above the probe's mean.
_DONOR_UTIL_CEILING = 0.8


@dataclass(frozen=True)
class CellSignal:
    """Per-cell SLO signals measured during the probe epoch."""

    #: :func:`repro.telemetry.slo.budget_pressure` of the cell's probe
    #: run -- >= 1.0 means the cell burned its whole error budget.
    pressure: float
    #: Probe-epoch SLA violation rate (fraction of completed requests).
    violation_rate: float
    #: Mean allocated CPUs / budgeted CPUs during the probe.
    utilization: float
    #: Scale-ups the capped cluster refused during the probe; > 0 means
    #: the cell was *capacity*-bound (more nodes would actually help),
    #: as opposed to burning budget from manager lag alone.
    capped_scale_ups: int = 0


def static_equal(spec: FleetSpec) -> dict[str, int]:
    """Equal split of ``total_nodes`` (remainders by cell-name order)."""
    names = [cell.name for cell in spec.sorted_cells()]
    base, remainder = divmod(spec.total_nodes, len(names))
    if base < spec.min_nodes_per_cell:
        raise ConfigurationError(
            f"static split gives {base} nodes/cell, below the "
            f"min_nodes_per_cell={spec.min_nodes_per_cell} floor"
        )
    return {
        name: base + (1 if i < remainder else 0) for i, name in enumerate(names)
    }


def greedy_rebalance(
    spec: FleetSpec, signals: Mapping[str, CellSignal]
) -> dict[str, int]:
    """Headroom stealing from the static split, guided by probe signals.

    A cell *receives* nodes only while it is both out of error budget
    (rescaled pressure estimate > 1) **and** was capacity-bound in the
    probe (the capped cluster refused scale-ups) -- extra nodes cannot
    fix violations caused by manager lag alone.  A cell *donates* only
    while the shed node leaves it uncapped, projected inside its error
    budget, and projected under :data:`_DONOR_UTIL_CEILING` mean
    utilization.  Both projections rescale the probe measurement by
    ``static budget / new budget`` -- the cheapest purely-local model of
    how a cell responds to a budget change -- so the loop terminates
    without re-simulating.
    """
    budgets = static_equal(spec)
    missing = sorted(set(budgets) - set(signals))
    if missing:
        raise ConfigurationError(f"no probe signal for cells: {missing}")
    static = dict(budgets)

    def estimate(name: str) -> float:
        return signals[name].pressure * static[name] / budgets[name]

    def can_donate(name: str) -> bool:
        if budgets[name] <= spec.min_nodes_per_cell:
            return False
        if signals[name].capped_scale_ups > 0:
            return False  # already capacity-bound at the static split
        shed_ratio = static[name] / (budgets[name] - 1)
        return (
            signals[name].pressure * shed_ratio < 1.0
            and signals[name].utilization * shed_ratio < _DONOR_UTIL_CEILING
        )

    # Each move strictly raises the donor's estimates and lowers the
    # receiver's, so total_nodes iterations is a safe upper bound.
    for _ in range(spec.total_nodes):
        receivers = [
            name for name in budgets
            if signals[name].capped_scale_ups > 0 and estimate(name) > 1.0
        ]
        if not receivers:
            break
        receiver = max(receivers, key=lambda name: (estimate(name), name))
        donors = [
            name for name in budgets if name != receiver and can_donate(name)
        ]
        if not donors:
            break
        donor = min(donors, key=lambda name: (estimate(name), name))
        if estimate(receiver) - estimate(donor) < _PRESSURE_GAP:
            break
        budgets[donor] -= 1
        budgets[receiver] += 1
    assert sum(budgets.values()) == spec.total_nodes
    return budgets


#: Allocator registry: name -> (spec, signals) -> budgets.  ``static``
#: ignores the signals, which is exactly what makes it the baseline.
ALLOCATORS: dict[
    str, Callable[[FleetSpec, Mapping[str, CellSignal]], dict[str, int]]
] = {
    "static": lambda spec, signals: static_equal(spec),
    "greedy": greedy_rebalance,
}
