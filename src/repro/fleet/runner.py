"""Fleet execution: lower cells onto RunPlans, allocate, aggregate.

A fleet run is two epochs, each one :func:`repro.experiments.parallel
.run_many` fan-out over the prewarmed fork pool:

1. **Probe** -- every cell runs a shortened deployment at the
   static-equal node split with the SLO monitor attached.  The per-cell
   error-budget reports collapse (via :func:`repro.telemetry.slo
   .budget_pressure`) into the allocator's input signals.
2. **Main** -- every registered allocator's budget assignment runs at
   full fleet durations, so the pinned dashboard compares the greedy
   headroom-stealer against static-equal on the *same* workloads at the
   *same* total node count.

Everything between the epochs is pure arithmetic on plain data, so a
fleet run is as deterministic as its cells: same spec + options =>
byte-identical merged dashboards and digests for any ``jobs`` value and
any cell-submission order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import artifacts

# Fleet cells reuse the Fig. 11/12 workload shapes verbatim so a cell is
# comparable to the corresponding single-tenant grid cell.
from repro.experiments.fig11_12_performance import _mix_for, _pattern_for
from repro.experiments.managers import attach_ursa
from repro.experiments.parallel import RunPlan, run_many
from repro.experiments.report import (
    build_dashboard,
    render_dashboard_html,
    render_dashboard_text,
)
from repro.experiments.runner import (
    ClusterOptions,
    DeploymentResult,
    RunOptions,
    SLOOptions,
    run_deployment,
)
from repro.experiments.store import RunMeta, merged_digest
from repro.fleet.allocator import ALLOCATORS, CellSignal, static_equal
from repro.fleet.spec import CellSpec, FleetSpec, default_fleet
from repro.telemetry.slo import alerts_digest, budget_pressure

__all__ = [
    "FleetOutcome",
    "FleetPlan",
    "FleetResult",
    "experiment_meta",
    "fleet_report",
    "plan_fleet",
    "run_fleet",
]


def _run_fleet_cell(
    app_name: str, load_kind: str, options: RunOptions
) -> DeploymentResult:
    """One budgeted tenant-cell deployment under Ursa (module-level so
    RunPlans carrying it pickle into pool workers).

    ``options`` arrives fully prepared by :class:`FleetPlan` -- cell
    seed, durations, and the :class:`ClusterOptions` carving this cell's
    node budget out of the fleet (``cap_on_full=True``, so a tight
    budget shows up as queueing and SLA violations, not a crash).
    """
    spec = artifacts.app_spec(app_name)
    rps = artifacts.app_rps(app_name)
    duration = options.resolved_duration_s()
    mix = _mix_for(app_name, load_kind)
    pattern = _pattern_for(load_kind, rps, duration)
    exploration = artifacts.exploration_result(app_name)
    class_loads = {c: rps * mix.fraction(c) for c in mix.classes()}
    attach = attach_ursa(exploration, class_loads)
    return run_deployment(
        spec,
        mix,
        pattern,
        attach,
        manager_name="ursa",
        load_name=load_kind,
        options=options,
    )


@dataclass(frozen=True)
class FleetPlan:
    """Lowering of a :class:`FleetSpec` onto :class:`RunPlan` lists.

    Pure data-to-data: given budgets, produce the exact plans
    ``run_many`` will execute.  Tests introspect this instead of running
    simulations.
    """

    spec: FleetSpec
    #: Main-epoch per-run options (seed/cluster filled per cell).
    options: RunOptions
    #: Probe-epoch options (shortened durations, SLO monitor forced on).
    probe_options: RunOptions

    def cell_options(
        self, base: RunOptions, cell: CellSpec, nodes: int
    ) -> RunOptions:
        return base.replace(
            seed=cell.seed,
            cluster=ClusterOptions(
                nodes=nodes,
                node_cpus=self.spec.node_cpus,
                node_memory_gb=self.spec.node_memory_gb,
                cap_on_full=True,
            ),
        )

    def probe_plans(self, budgets: dict[str, int]) -> list[RunPlan]:
        return [
            RunPlan(
                _run_fleet_cell,
                {
                    "app_name": cell.app_name,
                    "load_kind": cell.load_kind,
                    "options": self.cell_options(
                        self.probe_options, cell, budgets[cell.name]
                    ),
                },
                label=f"fleet:probe:{cell.name}",
            )
            for cell in self.spec.sorted_cells()
        ]

    def main_plans(
        self, budgets_by_allocator: dict[str, dict[str, int]]
    ) -> list[RunPlan]:
        """One flat plan list covering every allocator's assignment.

        A cell whose budget agrees across allocators still runs once per
        allocator -- with *identical* plan kwargs, which is exactly what
        the allocator-purity tests pin (identical budgets => identical
        run digests).
        """
        return [
            RunPlan(
                _run_fleet_cell,
                {
                    "app_name": cell.app_name,
                    "load_kind": cell.load_kind,
                    "options": self.cell_options(
                        self.options, cell, budgets[cell.name]
                    ),
                },
                label=f"fleet:{allocator}:{cell.name}",
            )
            for allocator, budgets in sorted(budgets_by_allocator.items())
            for cell in self.spec.sorted_cells()
        ]


def plan_fleet(spec: FleetSpec, options: RunOptions) -> FleetPlan:
    """Derive probe options from the main options (pure arithmetic).

    The probe epoch runs each cell for ~5/12 of the main duration
    (enough for Ursa to settle and the slow burn window to fill) and
    always carries an SLO monitor -- the allocator is blind without it.
    """
    if options.slo is None:
        options = options.replace(slo=SLOOptions())
    duration = options.resolved_duration_s()
    probe_duration = round(duration * 5.0 / 12.0, 1)
    probe_options = options.replace(
        duration_s=probe_duration,
        measure_from_s=round(probe_duration * 0.4, 1),
    )
    return FleetPlan(spec=spec, options=options, probe_options=probe_options)


@dataclass
class FleetOutcome:
    """One allocator's main-epoch results across all cells."""

    allocator: str
    budgets: dict[str, int]
    #: Cell name -> that cell's main-epoch run.
    results: dict[str, DeploymentResult] = field(repr=False)

    def completed_requests(self) -> int:
        return sum(r.completed_requests for r in self.results.values())

    def fleet_violation_rate(self) -> float:
        """Fleet-wide SLA violation rate, request-weighted across cells."""
        completed = self.completed_requests()
        if completed == 0:
            return 0.0
        bad = sum(
            r.windowed_violation_rate * r.completed_requests
            for r in self.results.values()
        )
        return round(bad / completed, 9)

    def mean_cpus(self) -> float:
        return round(
            sum(r.mean_cpu_allocation for r in self.results.values()), 9
        )


@dataclass
class FleetResult:
    """Everything a fleet run produced (plain data, picklable)."""

    spec: FleetSpec
    plan: FleetPlan
    #: Cell name -> probe-epoch run (static-equal budgets).
    probe: dict[str, DeploymentResult] = field(repr=False)
    #: Cell name -> allocator input signals measured from the probe.
    signals: dict[str, CellSignal] = field(default_factory=dict)
    #: Allocator name -> main-epoch outcome.
    outcomes: dict[str, FleetOutcome] = field(default_factory=dict)

    def digests(self) -> dict[str, str]:
        """Label -> run digest for every digested run of the fleet."""
        out = {}
        for name, result in sorted(self.probe.items()):
            if result.run_digest is not None:
                out[f"probe/{name}"] = result.run_digest
        for allocator, outcome in sorted(self.outcomes.items()):
            for name, result in sorted(outcome.results.items()):
                if result.run_digest is not None:
                    out[f"{allocator}/{name}"] = result.run_digest
        return out

    def fleet_digest(self) -> str:
        """One checksum over the whole fleet (order-independent)."""
        return merged_digest(self.digests())


def _prewarm(spec: FleetSpec) -> None:
    for app_name in sorted({cell.app_name for cell in spec.cells}):
        artifacts.app_spec(app_name)
        artifacts.exploration_result(app_name)


def _probe_signals(
    spec: FleetSpec,
    budgets: dict[str, int],
    probe: dict[str, DeploymentResult],
) -> dict[str, CellSignal]:
    signals = {}
    for cell in spec.sorted_cells():
        result = probe[cell.name]
        if result.slo is not None:
            pressure = budget_pressure(result.slo.budget_report)
        else:  # SLO monitor forced on by plan_fleet; belt and braces.
            pressure = round(result.windowed_violation_rate * 100.0, 9)
        budget_cpus = budgets[cell.name] * spec.node_cpus
        signals[cell.name] = CellSignal(
            pressure=pressure,
            violation_rate=round(result.windowed_violation_rate, 9),
            utilization=round(result.mean_cpu_allocation / budget_cpus, 9),
            capped_scale_ups=result.capped_scale_ups,
        )
    return signals


def run_fleet(
    spec: FleetSpec | None = None,
    options: RunOptions | None = None,
    jobs: int | None = None,
    on_complete=None,
) -> FleetResult:
    """Probe, allocate, and run a fleet; see the module docstring.

    ``options`` defaults to digested runs at the ``fleet`` scale profile
    (shorter per-cell durations than ``quick``; artefact caches are
    shared with quick runs).  ``on_complete`` fires per finished cell
    run, across both epochs, for progress reporting.
    """
    spec = spec if spec is not None else default_fleet()
    options = (
        options
        if options is not None
        else RunOptions(digest=True, scale="fleet", slo=SLOOptions())
    )
    plan = plan_fleet(spec, options)
    names = [cell.name for cell in spec.sorted_cells()]
    static = static_equal(spec)
    probe = dict(
        zip(
            names,
            run_many(
                plan.probe_plans(static),
                jobs=jobs,
                on_complete=on_complete,
                prewarm=lambda: _prewarm(spec),
            ),
        )
    )
    signals = _probe_signals(spec, static, probe)
    budgets_by_allocator = {
        name: allocate(spec, signals)
        for name, allocate in sorted(ALLOCATORS.items())
    }
    main = run_many(
        plan.main_plans(budgets_by_allocator),
        jobs=jobs,
        on_complete=on_complete,
        prewarm=lambda: _prewarm(spec),
    )
    outcomes = {}
    offset = 0
    for allocator, budgets in sorted(budgets_by_allocator.items()):
        results = dict(zip(names, main[offset : offset + len(names)]))
        offset += len(names)
        outcomes[allocator] = FleetOutcome(
            allocator=allocator, budgets=budgets, results=results
        )
    return FleetResult(
        spec=spec, plan=plan, probe=probe, signals=signals, outcomes=outcomes
    )


def _allocator_table(result: FleetResult):
    headers = ("allocator", "nodes", "violation_rate", "mean_cpus", "completed")
    rows = [
        (
            allocator,
            str(sum(outcome.budgets.values())),
            f"{outcome.fleet_violation_rate():.4f}",
            f"{outcome.mean_cpus():.1f}",
            str(outcome.completed_requests()),
        )
        for allocator, outcome in sorted(result.outcomes.items())
    ]
    return ("fleet allocators (equal total nodes)", headers, rows)


def _cell_table(result: FleetResult):
    headers = (
        "cell",
        "app",
        "load",
        "probe_pressure",
        "probe_util",
        "probe_capped",
        *(f"{name}_nodes" for name in sorted(result.outcomes)),
        *(f"{name}_viol" for name in sorted(result.outcomes)),
    )
    rows = []
    for cell in result.spec.sorted_cells():
        signal = result.signals[cell.name]
        outcomes = [result.outcomes[a] for a in sorted(result.outcomes)]
        rows.append(
            (
                cell.name,
                cell.app_name,
                cell.load_kind,
                f"{signal.pressure:.3f}",
                f"{signal.utilization:.3f}",
                str(signal.capped_scale_ups),
                *(str(o.budgets[cell.name]) for o in outcomes),
                *(
                    f"{o.results[cell.name].windowed_violation_rate:.4f}"
                    for o in outcomes
                ),
            )
        )
    return ("cell budgets and burn", headers, rows)


def _worst_burn_table(result: FleetResult, top: int = 3):
    headers = ("cell", "probe_pressure", "probe_violation_rate")
    ranked = sorted(
        result.signals.items(), key=lambda kv: (-kv[1].pressure, kv[0])
    )
    rows = [
        (name, f"{signal.pressure:.3f}", f"{signal.violation_rate:.4f}")
        for name, signal in ranked[:top]
    ]
    return ("worst-burn cells (probe epoch)", headers, rows)


def experiment_meta(result: FleetResult) -> RunMeta:
    """Provenance sidecar for a fleet run (``results/fleet/``)."""
    summaries = {}
    for allocator, outcome in sorted(result.outcomes.items()):
        for name, run in sorted(outcome.results.items()):
            summaries[f"{allocator}/{name}"] = {
                "violation_rate": round(run.windowed_violation_rate, 9),
                "mean_cpus": round(run.mean_cpu_allocation, 9),
                "completed_requests": float(run.completed_requests),
                "nodes": float(outcome.budgets[name]),
            }
    alerts = {}
    for allocator, outcome in sorted(result.outcomes.items()):
        for name, run in sorted(outcome.results.items()):
            if run.slo is not None:
                alerts[f"{allocator}/{name}"] = alerts_digest(
                    run.slo.alerts_jsonl
                )
    return RunMeta(
        experiment="fleet",
        scale="fleet",
        seeds={cell.name: cell.seed for cell in result.spec.sorted_cells()},
        digests=result.digests(),
        summaries=summaries,
        alerts=alerts,
        extra={
            "cells": len(result.spec.cells),
            "total_nodes": result.spec.total_nodes,
            "node_cpus": result.spec.node_cpus,
            "fleet_digest": result.fleet_digest(),
            "budgets": {
                allocator: dict(sorted(outcome.budgets.items()))
                for allocator, outcome in sorted(result.outcomes.items())
            },
            "fleet_violation_rate": {
                allocator: outcome.fleet_violation_rate()
                for allocator, outcome in sorted(result.outcomes.items())
            },
            "probe_pressure": {
                name: signal.pressure
                for name, signal in sorted(result.signals.items())
            },
        },
    )


def fleet_report(result: FleetResult) -> tuple[str, str, RunMeta]:
    """Fleet dashboard text, standalone HTML, and provenance.

    The dashboard merges every main-epoch run (both allocators) through
    the PR-9 report pipeline -- class histograms via
    ``FixedHistogram.merge``, alert timeline, burn/utilization tables --
    and prepends the fleet-level sections (allocator comparison, cell
    budgets, worst-burn cells) as ``extra_tables``.
    """
    sla_targets: dict[str, float] = {}
    for app_name in sorted({cell.app_name for cell in result.spec.cells}):
        for rc in artifacts.app_spec(app_name).request_classes:
            sla_targets[rc.name] = rc.sla.target_s
    runs = {
        f"{allocator}/{name}": run
        for allocator, outcome in sorted(result.outcomes.items())
        for name, run in sorted(outcome.results.items())
    }
    dash = build_dashboard(
        runs,
        sla_targets=sla_targets,
        title=(
            f"fleet dashboard ({len(result.spec.cells)} cells, "
            f"{result.spec.total_nodes} nodes)"
        ),
        extra_tables=[
            _allocator_table(result),
            _cell_table(result),
            _worst_burn_table(result),
        ],
    )
    return (
        render_dashboard_text(dash),
        render_dashboard_html(dash),
        experiment_meta(result),
    )
