"""Fleet specs: N tenant cells sharing one global node budget.

The paper evaluates Ursa on a single 8-node cluster; the fleet layer
models the regime the ROADMAP aims at -- many independent tenant *cells*
(each an application topology + its own budgeted cluster + a workload
profile + the app spec's per-class SLAs), drawn from the four benchmark
applications.  A :class:`FleetSpec` is plain frozen data end to end, so
it crosses the :mod:`repro.experiments.parallel` process boundary
unchanged and its identity (cell names, seeds, budgets) can be pinned by
the results store.

Seed derivation is *name-keyed* (:func:`repro.experiments.parallel
.named_seeds`): each cell's workload seed depends only on the fleet
master seed and the cell's name, never on its position in the cell
tuple, so reordering or growing a fleet does not reseed existing cells.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.experiments.parallel import named_seeds

__all__ = [
    "CellSpec",
    "FLEET_APPS",
    "FLEET_LOADS",
    "FLEET_SEED",
    "FleetSpec",
    "default_fleet",
]

#: Default master seed for fleet runs (pinned in results/fleet/).
FLEET_SEED = 47

#: Applications cells cycle through (the four benchmark apps).
FLEET_APPS = (
    "social-network",
    "vanilla-social-network",
    "media-service",
    "video-pipeline",
)

#: Load kinds cells cycle through (same shapes as the Fig. 11/12 grid).
FLEET_LOADS = ("constant", "dynamic", "skewed")


@dataclass(frozen=True)
class CellSpec:
    """One tenant cell: an app + workload profile + derived seed.

    The cell's per-class SLAs come from its application spec; its cluster
    is carved out of the fleet's global node budget by the allocator.
    """

    name: str
    app_name: str
    load_kind: str
    #: Workload seed (derived from the fleet seed by the cell *name*).
    seed: int


@dataclass(frozen=True)
class FleetSpec:
    """A fleet: cells plus the global node budget they share.

    ``total_nodes`` is the fleet-wide budget the allocator splits across
    cells; every cell's cluster is built from ``node_cpus``-CPU nodes
    with capacity capping on, so an under-budgeted cell queues (and
    violates SLAs) instead of crashing the run.
    """

    cells: tuple[CellSpec, ...]
    seed: int = FLEET_SEED
    total_nodes: int = 32
    node_cpus: int = 8
    node_memory_gb: float = 32.0
    #: Floor the allocator must leave every cell (keeps each service
    #: schedulable at one replica even in donor cells).
    min_nodes_per_cell: int = 2

    def __post_init__(self) -> None:
        names = [cell.name for cell in self.cells]
        if not names:
            raise ConfigurationError("a fleet needs at least one cell")
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate cell names: {sorted(names)}")
        if self.min_nodes_per_cell < 1:
            raise ConfigurationError("min_nodes_per_cell must be >= 1")
        floor = self.min_nodes_per_cell * len(self.cells)
        if self.total_nodes < floor:
            raise ConfigurationError(
                f"total_nodes={self.total_nodes} cannot cover "
                f"{len(self.cells)} cells at min_nodes_per_cell="
                f"{self.min_nodes_per_cell} (need >= {floor})"
            )

    def sorted_cells(self) -> tuple[CellSpec, ...]:
        """Cells in canonical (name) order -- the order every fleet
        aggregation uses, so cell-submission order never matters."""
        return tuple(sorted(self.cells, key=lambda cell: cell.name))

    def cell(self, name: str) -> CellSpec:
        for candidate in self.cells:
            if candidate.name == name:
                return candidate
        raise ConfigurationError(f"unknown cell {name!r}")


def default_fleet(
    n_cells: int = 8,
    seed: int = FLEET_SEED,
    nodes_per_cell: int = 4,
    node_cpus: int = 8,
    node_memory_gb: float = 32.0,
) -> FleetSpec:
    """A canonical fleet of ``n_cells`` cells cycling apps and loads.

    Cell ``i`` runs ``FLEET_APPS[i % 4]`` under ``FLEET_LOADS[i % 3]``,
    so any fleet of >= 4 cells mixes heavy (social network) and light
    (video pipeline) tenants -- the imbalance the allocator exists to
    exploit.  The global budget is ``nodes_per_cell * n_cells`` nodes,
    i.e. exactly what static-equal would hand each cell; the default
    sizing (4 nodes x 8 CPUs = 32 CPUs per cell) deliberately sits
    *below* the social-network cells' steady demand (~45 CPUs), so an
    equal split caps the heavy tenants and the allocator has real
    headroom to move.
    """
    if n_cells < 1:
        raise ConfigurationError(f"n_cells must be >= 1, got {n_cells}")
    names = [
        f"cell{i:02d}-{FLEET_APPS[i % len(FLEET_APPS)]}" for i in range(n_cells)
    ]
    seeds = named_seeds(seed, names, namespace="fleet")
    cells = tuple(
        CellSpec(
            name=name,
            app_name=FLEET_APPS[i % len(FLEET_APPS)],
            load_kind=FLEET_LOADS[i % len(FLEET_LOADS)],
            seed=seeds[name],
        )
        for i, name in enumerate(names)
    )
    return FleetSpec(
        cells=cells,
        seed=seed,
        total_nodes=nodes_per_cell * n_cells,
        node_cpus=node_cpus,
        node_memory_gb=node_memory_gb,
    )
