"""Communication substrate: call trees, requests and message queues.

The RPC semantics themselves (worker-thread holding for nested RPC, daemon
pools for event-driven RPC) are implemented by the service runtime in
:mod:`repro.services.base`; this package defines the shared vocabulary and
the message-queue primitive.
"""

from repro.net.messages import Call, CallMode, Request
from repro.net.mq import MessageQueue

__all__ = ["Call", "CallMode", "MessageQueue", "Request"]
