"""Request and call-tree types shared by the communication substrate.

A *request class* (e.g. ``upload-post``, ``object-detect``) is executed as
a **call tree**: each node names a microservice and how its parent invokes
it (§III's three communication methods):

* ``CallMode.RPC`` -- nested (synchronous) RPC: the parent holds its worker
  thread while waiting for the child's response.
* ``CallMode.EVENT`` -- event-driven RPC: the parent acknowledges its own
  caller immediately after dispatching the child call to a daemon thread;
  the daemon waits for the child's response.
* ``CallMode.MQ`` -- message queue: the parent publishes a message and
  continues; the child consumes it when a worker frees up.  No thread of
  the parent is ever held on the child.

End-to-end latency of a request is the time until its *entire* tree has
completed (for synchronous trees this equals the root's response time; for
MQ pipelines it is the pipeline completion time, which is what the paper's
SLAs for e.g. ``object-detect`` refer to).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import TopologyError

__all__ = ["CallMode", "Call", "Request"]


class CallMode(enum.Enum):
    RPC = "rpc"
    EVENT = "event"
    MQ = "mq"


@dataclass(frozen=True)
class Call:
    """One node of a request class's call tree.

    ``repeat`` models a service accessed multiple times by its parent; the
    accesses happen sequentially and their latencies accumulate (§IV treats
    the cumulative latency as the latency of that service).
    """

    service: str
    mode: CallMode = CallMode.RPC
    children: tuple["Call", ...] = ()
    repeat: int = 1

    def __post_init__(self) -> None:
        if not self.service:
            raise TopologyError("call must name a service")
        if self.repeat < 1:
            raise TopologyError(f"repeat must be >= 1, got {self.repeat}")
        object.__setattr__(self, "children", tuple(self.children))

    def services(self) -> list[str]:
        """All service names in this subtree, preorder, with duplicates."""
        names = [self.service]
        for child in self.children:
            names.extend(child.services())
        return names

    def walk(self) -> list["Call"]:
        """All calls in this subtree, preorder."""
        nodes = [self]
        for child in self.children:
            nodes.extend(child.walk())
        return nodes

    def depth(self) -> int:
        """Length of the longest service chain in this subtree."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)


@dataclass
class Request:
    """One in-flight user request.

    ``request_id`` is assigned by :meth:`repro.apps.topology.Application.submit`
    from a per-application counter, so ids are deterministic *within a
    run* and identical across ``--jobs 1`` / ``--jobs N`` executions.  A
    process-global counter here would diverge between sequential and
    pooled runs (each pool worker counts from its own fork point); the
    whole-program lint rule PAR002 guards against reintroducing one.
    ``-1`` marks a request constructed outside an application
    (ad-hoc unit-test requests that never cross a run boundary).
    """

    request_class: str
    arrival_time: float
    priority: int = 0
    request_id: int = -1
    #: Filled by the runtime when the whole call tree has completed.
    completion_time: float | None = None

    @property
    def latency(self) -> float:
        """End-to-end latency; only valid after completion."""
        if self.completion_time is None:
            raise ValueError(f"request {self.request_id} has not completed")
        return self.completion_time - self.arrival_time
