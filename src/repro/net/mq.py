"""Message queues (Redis-streams substitute).

A :class:`MessageQueue` is a shared, priority-ordered buffer in front of a
consuming microservice.  Producers publish without blocking (Redis streams
are effectively unbounded for these workloads); consumer replicas pull
messages when they have a free worker.  Because producers never wait on
consumers, MQ edges propagate **no backpressure** -- the property §III
measures and Ursa's independence assumption relies on.

Trace context crosses MQ edges inside the payload: the service runtime
publishes ``(request, call, done, publish_time, span)`` tuples, so a
sampled request's :class:`~repro.telemetry.tracing.Span` survives the
queue hop and its queue residency is charged to the consumer's span as
queue wait.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.sim.engine import Environment
from repro.sim.resources import PriorityStore

__all__ = ["MessageQueue"]


class MessageQueue:
    """Priority-ordered message buffer with publish/consume semantics."""

    def __init__(self, env: Environment, name: str) -> None:
        self.env = env
        self.name = name
        self._store = PriorityStore(env)
        self._seq = itertools.count()
        self.published = 0
        self.consumed = 0

    def publish(self, payload: Any, priority: int = 0) -> None:
        """Enqueue ``payload``; never blocks the producer.

        Lower ``priority`` values are consumed first; equal priorities are
        consumed in publish order.
        """
        self.published += 1
        accepted = self._store.try_put((priority, next(self._seq), payload))
        assert accepted  # unbounded store

    def consume(self):
        """Event that fires with the next ``payload`` (best priority first).

        Consumers that stop (replica scale-down) must withdraw pending
        consumes via :meth:`cancel_consume`.
        """
        return self._store.get()

    def cancel_consume(self, event) -> None:
        """Withdraw a pending consume that has not fired yet."""
        self._store.cancel_get(event)

    @staticmethod
    def payload_of(item: tuple[int, int, Any]) -> Any:
        """Extract the payload from a consumed store item."""
        return item[2]

    @property
    def depth(self) -> int:
        """Messages currently waiting."""
        return len(self._store)
