"""Microservice runtime: specs, replicas and call-execution semantics."""

from repro.services.base import Microservice, Replica
from repro.services.spec import ServiceSpec

__all__ = ["Microservice", "Replica", "ServiceSpec"]
