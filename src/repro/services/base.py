"""The microservice runtime: replicas, thread/CPU pools, call semantics.

Each replica models two distinct resources:

* a **thread pool** (``threads_per_cpu`` threads per core) -- a thread is
  held for a request's entire residency at the service, *including* time
  blocked on downstream nested-RPC responses;
* the **CPU** (one slot per core, static policy) -- held only while the
  handler actually executes.

This separation is what reproduces §III's backpressure behaviour:

* **Nested RPC** -- a slow downstream keeps upstream threads blocked;
  once the finite thread pool is exhausted, new requests queue *before*
  getting a thread and upstream response times inflate: backpressure.
  The effect attenuates tier by tier (each pool absorbs part of it),
  matching Fig. 2's "most pronounced in the parent" observation.
* **Event-driven RPC** -- the worker thread hands the downstream call to a
  daemon thread and acknowledges immediately; backpressure appears only
  when the (larger) daemon pool saturates: present but weaker.
* **Message queues** -- producers publish and continue; consumers pull
  when they have capacity.  No producer thread ever waits on a consumer:
  no backpressure.

Metric semantics (matching §III's measurement): each request contributes a
``service_latency`` sample equal to its response time at the tier *minus*
time spent waiting for nested-RPC downstream responses -- i.e. thread/CPU
queueing plus own processing (plus daemon-dispatch wait for event-driven
RPC, plus queue residency for MQ consumers).  End-to-end request latency
is the completion time of the whole call tree.

Tracing: when a request is sampled (see
:class:`~repro.telemetry.tracing.Tracer`), a
:class:`~repro.telemetry.tracing.Span` rides along through
``submit``/``publish``/``_execute``; the runtime records one segment per
wait (queue, service, downstream) with absolute timestamps, creating
child spans as the call tree fans out.  ``span=None`` (the default, and
every unsampled request) costs a handful of ``is not None`` checks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, TopologyError
from repro.net.messages import Call, CallMode, Request
from repro.net.mq import MessageQueue
from repro.sim.engine import AnyOf, Environment, Event
from repro.sim.resources import Resource
from repro.telemetry.metrics import CounterHandle, LatencyHandle, MetricsHub
from repro.telemetry.tracing import PHASE_DOWNSTREAM, PHASE_QUEUE, PHASE_SERVICE, Span

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.cluster import Cluster
    from repro.cluster.deployment import Pod
    from repro.services.spec import ServiceSpec
    from repro.sim.random import RandomStreams

__all__ = ["Microservice", "Replica"]


class Replica:
    """One running replica: thread pool, CPU cores, daemon pool."""

    def __init__(self, env: Environment, pod: "Pod", spec: "ServiceSpec") -> None:
        self.env = env
        self.pod = pod
        self.cpu = Resource(env, pod.cpus)
        self.threads = Resource(env, pod.cpus * spec.threads_per_cpu)
        self.daemons = Resource(
            env,
            max(1, int(pod.cpus * spec.threads_per_cpu * spec.daemon_pool_factor)),
        )
        self.inflight = 0
        self.busy_time = 0.0
        self.stopping = False
        self.stop_event: Event = env.event()

    @property
    def cpus(self) -> int:
        return self.cpu.capacity

    def set_cpu_limit(self, cpus: int, spec: "ServiceSpec") -> None:
        """In-place CPU resize (profiling-engine hook, like VPA in-place)."""
        self.cpu.resize(cpus)
        self.threads.resize(cpus * spec.threads_per_cpu)
        self.daemons.resize(
            max(1, int(cpus * spec.threads_per_cpu * spec.daemon_pool_factor))
        )


class Microservice:
    """Runtime for one microservice: dispatch, execution, telemetry.

    Construction registers a deployment with the cluster; scaling happens
    through :meth:`scale_to` (what resource managers call) and takes effect
    after the container startup delay.
    """

    def __init__(
        self,
        env: Environment,
        spec: "ServiceSpec",
        cluster: "Cluster",
        hub: MetricsHub,
        streams: "RandomStreams",
        initial_replicas: int = 1,
        network_delay_s: float = 0.0005,
        utilization_sample_interval_s: float = 5.0,
    ) -> None:
        self.env = env
        self.spec = spec
        self.cluster = cluster
        self.hub = hub
        self.name = spec.name
        self._rng = streams.stream(f"service:{spec.name}")
        self._work = dict(spec.handlers)
        self.network_delay_s = float(network_delay_s)
        #: CPU throttling factor in (0, 1]; Fig. 2 injects anomalies here.
        self.speed_factor = 1.0
        self._cpu_limit_override: int | None = None
        self.queue = MessageQueue(env, spec.name)
        self._label_sets: dict[str, tuple] = {}
        #: request class -> (requests_total counter, service_latency
        #: recorder) interned hub handles; see _hot_handles.
        self._hot_handles: dict[str, tuple[CounterHandle, LatencyHandle]] = {}
        self._mq_handles: dict[str, CounterHandle] = {}
        #: Pure-observer hooks called as ``fn(request, class_name,
        #: service_latency)`` when a request's service leg completes --
        #: same contract as Application completion listeners (must not
        #: schedule engine events).  Empty list costs one truthiness
        #: check on the hot path.
        self.completion_listeners: list = []
        self._replicas: dict[str, Replica] = {}
        self._running: list[Replica] = []
        self._rr = 0
        self._replica_waiters: list[Event] = []
        #: service name -> Microservice; wired by the application topology.
        self.peers: dict[str, "Microservice"] = {}
        self.deployment = cluster.create_deployment(
            name=spec.name,
            cpus_per_replica=spec.cpus_per_replica,
            memory_per_replica_gb=spec.memory_per_replica_gb,
            replicas=initial_replicas,
            startup_delay_s=spec.startup_delay_s,
            on_pod_running=self._on_pod_running,
            on_pod_stopping=self._on_pod_stopping,
        )
        if utilization_sample_interval_s > 0:
            env.process(self._monitor(utilization_sample_interval_s))

    # ------------------------------------------------------------------
    # Replica lifecycle
    # ------------------------------------------------------------------
    def _on_pod_running(self, pod: "Pod") -> None:
        replica = Replica(self.env, pod, self.spec)
        if self._cpu_limit_override is not None:
            replica.set_cpu_limit(self._cpu_limit_override, self.spec)
        self._replicas[pod.name] = replica
        self._running.append(replica)
        self.env.process(self._consumer_loop(replica))
        waiters, self._replica_waiters = self._replica_waiters, []
        for waiter in waiters:
            waiter.succeed()

    def _on_pod_stopping(self, pod: "Pod") -> None:
        replica = self._replicas.get(pod.name)
        if replica is None:  # pragma: no cover - defensive
            pod.drained.succeed()
            return
        replica.stopping = True
        if replica in self._running:
            self._running.remove(replica)
        replica.stop_event.succeed()
        self._maybe_drained(replica)

    def _maybe_drained(self, replica: Replica) -> None:
        if replica.stopping and replica.inflight == 0:
            if not replica.pod.drained.triggered:
                replica.pod.drained.succeed()

    # ------------------------------------------------------------------
    # Control-plane API
    # ------------------------------------------------------------------
    @property
    def replicas(self) -> int:
        """Running replica count."""
        return len(self._running)

    @property
    def allocated_cpus(self) -> int:
        return self.deployment.allocated_cpus

    def scale_to(self, replicas: int) -> None:
        """Set the desired replica count (the knob all managers turn)."""
        self.deployment.scale_to(replicas)

    def set_speed_factor(self, factor: float) -> None:
        """Throttle/restore CPU speed (anomaly injection, Fig. 2)."""
        if factor <= 0:
            raise ConfigurationError(f"speed factor must be > 0, got {factor}")
        self.speed_factor = float(factor)

    def set_cpu_limit(self, cpus: int) -> None:
        """In-place per-replica CPU resize (backpressure profiling hook)."""
        if cpus < 1:
            raise ConfigurationError(f"cpu limit must be >= 1, got {cpus}")
        self._cpu_limit_override = int(cpus)
        for replica in self._replicas.values():
            if not replica.stopping:
                replica.set_cpu_limit(cpus, self.spec)

    def set_handler(self, request_class: str, work) -> None:
        """Swap a handler's work distribution (§VII-G logic update)."""
        self._work[request_class] = work

    def utilization(self) -> float:
        """Instantaneous view: busy cores / cores across replicas."""
        capacity = sum(r.cpu.capacity for r in self._running)
        if capacity == 0:
            return 0.0
        busy = sum(r.cpu.in_use for r in self._running)
        return busy / capacity

    def queue_depth(self) -> int:
        """Pending work: MQ backlog plus thread-queue waiters."""
        return self.queue.depth + sum(r.threads.queue_len for r in self._running)

    # ------------------------------------------------------------------
    # Request entry points
    # ------------------------------------------------------------------
    def submit(
        self, request: Request, call: Call, span: Span | None = None
    ) -> tuple[Event, Event]:
        """Invoke this service via RPC for one call-tree node.

        Returns ``(response, done)``: ``response`` fires when the service
        answers its caller (nested-RPC semantics), ``done`` when the whole
        subtree rooted at ``call`` has completed.  ``span`` is this hop's
        trace span when the request is sampled.
        """
        if call.service != self.name:
            raise TopologyError(
                f"call for {call.service!r} submitted to {self.name!r}"
            )
        response = self.env.event()
        done = self.env.event()
        self.env.process(self._execute(request, call, response, done, span=span))
        return response, done

    def publish(
        self, request: Request, call: Call, span: Span | None = None
    ) -> Event:
        """Invoke this service via its message queue.

        Returns the ``done`` event for the subtree.  Never blocks the
        caller: the message waits in the queue until a consumer picks it
        up.  The span (if sampled) travels inside the message payload, so
        queue residency lands on the *consumer's* span as queue wait.
        """
        if call.service != self.name:
            raise TopologyError(
                f"call for {call.service!r} published to {self.name!r}"
            )
        done = self.env.event()
        self.queue.publish(
            (request, call, done, self.env.now, span), priority=request.priority
        )
        handle = self._mq_handles.get(request.request_class)
        if handle is None:
            handle = self._mq_handles[request.request_class] = self.hub.counter_handle(
                "mq_published_total", labels=self._label_set(request.request_class)
            )
        handle.inc()
        return done

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _label_set(self, request_class: str):
        """Cached canonical label tuple for (service, request) metrics."""
        key = self._label_sets.get(request_class)
        if key is None:
            key = (("request", request_class), ("service", self.name))
            self._label_sets[request_class] = key
        return key

    def _request_handles(
        self, request_class: str
    ) -> tuple[CounterHandle, LatencyHandle]:
        """Interned (requests_total, service_latency) writers per class.

        One registry check and series lookup per (service, class) pair;
        after that, the per-request hot path below touches only the
        handles' window dicts.
        """
        handles = self._hot_handles.get(request_class)
        if handles is None:
            labels = self._label_set(request_class)
            handles = self._hot_handles[request_class] = (
                self.hub.counter_handle("requests_total", labels=labels),
                self.hub.latency_handle("service_latency", labels=labels),
            )
        return handles

    def _sample_work(self, request_class: str) -> float:
        dist = self._work.get(request_class)
        if dist is None:
            raise TopologyError(
                f"service {self.name!r} has no handler for request class "
                f"{request_class!r}"
            )
        return dist.sample(self._rng)

    def _peer(self, name: str) -> "Microservice":
        try:
            return self.peers[name]
        except KeyError:
            raise TopologyError(
                f"service {self.name!r} has no wired peer {name!r}"
            ) from None

    def _pick_replica(self):
        """Round-robin over running replicas; waits if none are running."""
        while not self._running:
            waiter = self.env.event()
            self._replica_waiters.append(waiter)
            yield waiter
        self._rr += 1
        return self._running[self._rr % len(self._running)]

    def _execute(
        self,
        request: Request,
        call: Call,
        response: Event,
        done: Event,
        replica: Replica | None = None,
        publish_time: float | None = None,
        span: Span | None = None,
    ):
        """Serve one call-tree node (runs as a simulation process).

        For RPC entry (``replica is None``) a replica is chosen here and a
        thread acquired; for MQ entry the consumer loop already owns both.

        When ``span`` is set the hop records segments that exactly tile
        ``[t_submit, response]``: queue (replica/thread/CPU/daemon waits,
        MQ residency), service (handler execution + network legs), and
        downstream (blocked on a nested-RPC or event child, delegating
        that interval to the child's span).
        """
        env = self.env
        t_submit = publish_time if publish_time is not None else env.now
        requests_total, service_latency_h = self._request_handles(
            request.request_class
        )
        requests_total.inc()
        if replica is None:
            replica = yield from self._pick_replica()
            replica.inflight += 1
            # The thread slot is released mid-protocol (after the RPC legs,
            # before the daemon leg) rather than in a finally: holding it
            # through the daemon handoff would model the wrong concurrency.
            # ursalint: transfers=replica.threads -- deliberate mid-protocol release below
            yield replica.threads.acquire(priority=request.priority)
        if span is not None:
            span.replica = replica.pod.name
            mark = env.now
            span.record(PHASE_QUEUE, t_submit, mark)

        # Local processing: occupy one core for the sampled work.
        work = self._sample_work(request.request_class)
        ptime = work / self.speed_factor
        yield replica.cpu.acquire(priority=request.priority)
        if span is not None:
            span.record(PHASE_QUEUE, mark, env.now)
            mark = env.now
        try:
            yield env.timeout(ptime)
        finally:
            replica.cpu.release()
        replica.busy_time += ptime
        if span is not None:
            span.record(PHASE_SERVICE, mark, env.now)
            mark = env.now

        child_dones: list[Event] = []
        downstream_wait = 0.0

        # Fire-and-forget MQ children first: publishing never blocks, so
        # the parent records no segment; the child span's queue phase
        # covers the message's whole queue residency.
        for child in call.children:
            if child.mode == CallMode.MQ:
                for _ in range(child.repeat):
                    child_span = (
                        span.new_child(child.service, "mq", env.now)
                        if span is not None
                        else None
                    )
                    child_dones.append(
                        self._peer(child.service).publish(
                            request, child, span=child_span
                        )
                    )

        # Nested RPC children: sequential, holding this service's thread.
        for child in call.children:
            if child.mode == CallMode.RPC:
                for _ in range(child.repeat):
                    t0 = env.now
                    child_span = (
                        span.new_child(child.service, "rpc", t0)
                        if span is not None
                        else None
                    )
                    child_response, child_done = self._peer(child.service).submit(
                        request, child, span=child_span
                    )
                    yield child_response
                    downstream_wait += env.now - t0
                    child_dones.append(child_done)
                    if span is not None:
                        span.record(PHASE_DOWNSTREAM, t0, env.now, child_span)
                        mark = env.now

        event_children = [c for c in call.children if c.mode == CallMode.EVENT]
        daemon_held = False
        if event_children:
            # Hand off to a daemon thread; dispatch blocks (holding the
            # worker thread) when the daemon pool is exhausted -- the
            # event-driven backpressure path.
            # ursalint: transfers=replica.daemons -- released after the event-driven leg
            yield replica.daemons.acquire(priority=request.priority)
            daemon_held = True
            if span is not None:
                span.record(PHASE_QUEUE, mark, env.now)
                mark = env.now

        replica.threads.release()
        if self.network_delay_s > 0:
            # Both network legs (request + response) in one event.
            yield env.timeout(2.0 * self.network_delay_s)
        service_latency = env.now - t_submit - downstream_wait
        service_latency_h.record(service_latency)
        if self.completion_listeners:
            for listener in self.completion_listeners:
                listener(request, request.request_class, service_latency)
        if span is not None:
            span.record(PHASE_SERVICE, mark, env.now)
            mark = env.now
            span.response_end = env.now
        response.succeed()

        if daemon_held:
            # Daemon leg: perform the event-driven calls, waiting for each
            # downstream response (the R1 step of Fig. 1(b)).
            for child in event_children:
                for _ in range(child.repeat):
                    t0 = env.now
                    child_span = (
                        span.new_child(child.service, "event", t0)
                        if span is not None
                        else None
                    )
                    child_response, child_done = self._peer(child.service).submit(
                        request, child, span=child_span
                    )
                    yield child_response
                    child_dones.append(child_done)
                    if span is not None:
                        span.record(PHASE_DOWNSTREAM, t0, env.now, child_span)
                        mark = env.now
            replica.daemons.release()

        replica.inflight -= 1
        self._maybe_drained(replica)

        pending = [ev for ev in child_dones if not ev.processed]
        if pending:
            yield env.all_of(pending)
        if span is not None:
            span.end = env.now
        done.succeed()

    def _consumer_loop(self, replica: Replica):
        """Consume MQ messages: pull one, wait for a thread, process async.

        The loop never holds an idle thread: it pulls a message first and
        only then contends for a thread slot (with the message's priority),
        so MQ consumption cannot starve RPC traffic on small replicas.
        """
        env = self.env
        while not replica.stopping:
            get_ev = self.queue.consume()
            if not get_ev.triggered:
                yield AnyOf(env, [get_ev, replica.stop_event])
            if not get_ev.triggered:
                self.queue.cancel_consume(get_ev)
                break
            self.queue.consumed += 1
            request, call, done, publish_time, span = MessageQueue.payload_of(
                get_ev.value
            )
            # The pulled message is owned by this replica from here on; it
            # counts as in-flight so scale-down drains wait for it.
            replica.inflight += 1
            # Slot ownership transfers to the _execute process spawned below,
            # which releases it; a finally here would double-release.
            # ursalint: transfers=replica.threads -- ownership handed to _execute
            yield replica.threads.acquire(priority=request.priority)
            response = env.event()
            env.process(
                self._execute(
                    request,
                    call,
                    response,
                    done,
                    replica=replica,
                    publish_time=publish_time,
                    span=span,
                )
            )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _monitor(self, interval: float):
        env = self.env
        last_busy = 0.0
        # Pre-canonical label tuple: labels_key passes it through unsorted.
        labels = (("service", self.name),)
        while True:
            yield env.timeout(interval)
            replicas = [r for r in self._replicas.values() if not r.stopping]
            capacity = sum(r.cpu.capacity for r in replicas)
            busy_now = sum(r.busy_time for r in self._replicas.values())
            delta = busy_now - last_busy
            last_busy = busy_now
            if capacity > 0:
                utilization = min(1.0, delta / (capacity * interval))
                self.hub.observe_gauge("cpu_utilization", utilization, labels)
            self.hub.observe_gauge("replicas", float(self.replicas), labels)
            self.hub.observe_gauge(
                "cpu_allocated", float(self.deployment.allocated_cpus), labels
            )
            self.hub.observe_gauge("queue_depth", float(self.queue_depth()), labels)
