"""Service specifications: the static description of one microservice.

A :class:`ServiceSpec` captures everything the runtime needs to instantiate
a microservice: its per-replica container shape (CPU/memory, mirroring the
paper's practice of sizing containers from low-RPS profiles), the CPU work
its handlers perform per request class, and its thread-pool configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError
from repro.sim.random import Distribution

__all__ = ["ServiceSpec"]


@dataclass(frozen=True)
class ServiceSpec:
    """Static configuration of one microservice.

    ``handlers`` maps each request class the service participates in to the
    distribution of CPU work (in core-seconds) its handler performs per
    request of that class.  A request of an unknown class reaching the
    service is a topology bug and raises at runtime.
    """

    name: str
    cpus_per_replica: int
    handlers: Mapping[str, Distribution] = field(default_factory=dict)
    memory_per_replica_gb: float = 1.0
    #: Request-handling threads per core.  Threads are held for the whole
    #: request (including downstream RPC waits); cores only during actual
    #: processing.  Finite thread pools are what propagates backpressure.
    threads_per_cpu: int = 8
    #: Daemon threads per worker thread for event-driven RPC dispatch
    #: (§III): the daemon pool is larger than the worker pool, which is why
    #: event-driven backpressure is weaker but still present.
    daemon_pool_factor: float = 4.0
    #: Container start time when scaling up.
    startup_delay_s: float = 5.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("service needs a name")
        if self.cpus_per_replica < 1:
            raise ConfigurationError(
                f"{self.name}: cpus_per_replica must be >= 1 "
                f"(integer CPUs, static policy)"
            )
        if self.memory_per_replica_gb <= 0:
            raise ConfigurationError(f"{self.name}: memory must be > 0")
        if self.threads_per_cpu < 1:
            raise ConfigurationError(f"{self.name}: threads_per_cpu must be >= 1")
        if self.daemon_pool_factor < 1:
            raise ConfigurationError(f"{self.name}: daemon_pool_factor must be >= 1")
        if self.startup_delay_s < 0:
            raise ConfigurationError(f"{self.name}: negative startup delay")
        object.__setattr__(self, "handlers", dict(self.handlers))

    def with_handler(self, request_class: str, work: Distribution) -> "ServiceSpec":
        """A copy with one handler replaced (used for §VII-G logic updates)."""
        handlers = dict(self.handlers)
        handlers[request_class] = work
        return ServiceSpec(
            name=self.name,
            cpus_per_replica=self.cpus_per_replica,
            handlers=handlers,
            memory_per_replica_gb=self.memory_per_replica_gb,
            threads_per_cpu=self.threads_per_cpu,
            daemon_pool_factor=self.daemon_pool_factor,
            startup_delay_s=self.startup_delay_s,
        )
