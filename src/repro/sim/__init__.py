"""Discrete-event simulation kernel (SimPy-style, self-contained).

Public surface:

* :class:`~repro.sim.engine.Environment`, :class:`~repro.sim.engine.Event`,
  :class:`~repro.sim.engine.Process`, :class:`~repro.sim.engine.Timeout`,
  :class:`~repro.sim.engine.Interrupt` -- the event loop.
* :class:`~repro.sim.resources.Resource`, :class:`~repro.sim.resources.Store`,
  :class:`~repro.sim.resources.PriorityStore` -- shared resources.
* :class:`~repro.sim.random.RandomStreams` and the distribution classes --
  reproducible stochastic inputs.
* :class:`~repro.sim.trace.EventTraceRecorder` /
  :class:`~repro.sim.trace.RunDigest` -- hooks for the
  ``Environment(trace=...)`` callback (reproducibility checks, run
  fingerprints next to ``results/``).
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.random import (
    Constant,
    Distribution,
    Exponential,
    Hyperexponential,
    LogNormal,
    Mixture,
    Pareto,
    RandomStreams,
    Uniform,
)
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.trace import EventTraceRecorder, RunDigest, write_digest

__all__ = [
    "AllOf",
    "AnyOf",
    "Constant",
    "Distribution",
    "Environment",
    "Event",
    "EventTraceRecorder",
    "Exponential",
    "Hyperexponential",
    "Interrupt",
    "LogNormal",
    "Mixture",
    "Pareto",
    "PriorityStore",
    "Process",
    "RandomStreams",
    "Resource",
    "RunDigest",
    "SimulationError",
    "Store",
    "Timeout",
    "Uniform",
    "write_digest",
]
