"""Discrete-event simulation engine.

This module is the foundation of the cluster substrate: a small,
self-contained discrete-event kernel in the style of SimPy.  Processes are
Python generators that ``yield`` events; the environment resumes a process
when the event it waits on fires.  The engine provides:

* :class:`Environment` -- the event loop and simulation clock.
* :class:`Event` -- a one-shot occurrence that processes can wait on.
* :class:`Timeout` -- an event that fires after a simulated delay.
* :class:`Process` -- a running generator, itself awaitable as an event.
* :class:`AnyOf` / :class:`AllOf` -- condition events over several events.
* :class:`Interrupt` -- exception thrown into a process by another process.

The engine is deterministic: events scheduled at the same simulated time
fire in scheduling order (a monotonically increasing sequence number breaks
ties), so runs with the same seed are exactly reproducible.

Performance notes: this kernel is the hot path of every experiment --
a full-scale deployment run spends nearly all of its wall-clock here --
so the implementation trades a little prose for speed.  All event classes
use ``__slots__``; the succeed/schedule path is inlined (one attribute
chase and one queue append instead of nested method calls); processes
cache their generator's bound ``send``/``throw`` and their own ``_resume``
callback instead of recreating bound methods per wait.

The schedule itself is a two-level bucket queue.  Events triggered *at
the current simulation time* with the default priority -- ``succeed``,
``fail``, process bootstraps, zero-delay timeouts, which together are
roughly half of all events in RPC-heavy runs -- land in a plain FIFO
deque (the "now bucket"): because simulation time never goes backwards
and the tie-breaking sequence number increases monotonically, appending
to this deque keeps it sorted by ``(time, priority, seq)`` for free, so
both ends of the round trip are O(1) appends instead of O(log n) heap
sifts with tuple comparisons.  Future events (positive-delay timeouts)
and priority-0 interrupts go to a binary heap, or -- selected per run
via ``Environment(queue="calendar")`` -- to a :class:`CalendarQueue`
that buckets events by time and sorts one small bucket at a time
(cheaper than heap sifts for large timeout-dominated schedules).  Every
pop takes the global minimum across the levels, so scheduling order is
*identical* for all queue choices: the schedule still logically holds
``(time, priority, seq, event)`` tuples and the same-seed byte-identical
trace regression in ``tests/sim/test_determinism.py`` pins the contract.
Benchmarked by ``benchmarks/perf/bench_engine.py`` (results in
``BENCH_engine.json``; queue comparison in ``docs/performance.md``).
"""

from __future__ import annotations

from bisect import insort as _insort
from collections import deque
from collections.abc import Generator, Iterable
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled, callbacks not yet run
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence in simulated time.

    Events start *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* the event: it is placed on the environment's queue and its
    callbacks run at the current simulation time.  A process waits on an
    event by yielding it from its generator.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = None
        self._ok = True
        self._state = _PENDING
        #: Failure value consumed flag -- an unhandled failed event is an
        #: error surfaced by :meth:`Environment.step`.
        self._defused = False

    # -- introspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (result or failure exception)."""
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env = self.env
        env._seq = seq = env._seq + 1
        # Triggered at the current time with default priority: the now
        # bucket stays (time, priority, seq)-sorted by construction.
        env._fifo.append((env._now, 1, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure carrying ``exception``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        env = self.env
        env._seq = seq = env._seq + 1
        env._fifo.append((env._now, 1, seq, self))
        return self

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        callbacks = self.callbacks
        if callbacks is None:
            # Already processed: run at once (still at current sim time).
            callback(self)
        else:
            callbacks.append(callback)

    def __repr__(self) -> str:
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ plus scheduling: timeouts are by far the
        # most frequently created event, so the constructor chain matters.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        self._defused = False
        self.delay = delay
        env._seq = seq = env._seq + 1
        if delay == 0.0:
            # A zero-delay timeout fires at the current time: now bucket.
            env._fifo.append((env._now, 1, seq, self))
        else:
            cal = env._cal
            if cal is None:
                _heappush(env._queue, (env._now + delay, 1, seq, self))
            else:
                cal.push((env._now + delay, 1, seq, self))


class _ConditionValue(dict):
    """Mapping of event -> value for fired events of a condition."""


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("_events", "_fired")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._fired: list[Event] = []
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
            event._add_callback(self._on_fire)
        if not self._events and self._state == _PENDING:
            self.succeed(_ConditionValue())

    def _on_fire(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._fired.append(event)
        if self._satisfied():
            fired = set(map(id, self._fired))
            value = _ConditionValue()
            for ev in self._events:
                if id(ev) in fired:
                    value[ev] = ev._value
            self.succeed(value)

    def _satisfied(self) -> bool:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when at least one of the given events has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._fired) >= 1


class AllOf(_Condition):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._fired) == len(self._events)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event that fires with the generator's return
    value when it finishes, so processes can wait for each other::

        def child(env):
            yield env.timeout(5)
            return "done"

        def parent(env):
            result = yield env.process(child(env))
    """

    __slots__ = ("_generator", "_target", "_send", "_throw", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        # Bound methods are cached once: creating them per resume/wait is
        # a measurable cost at millions of events per run.
        self._send = generator.send
        self._throw = generator.throw
        self._resume_cb = self._resume
        # Bootstrap: resume the process at the current time.
        init = Event(env)
        init._ok = True
        init._state = _TRIGGERED
        env._seq = seq = env._seq + 1
        env._fifo.append((env._now, 1, seq, init))
        init.callbacks.append(self._resume_cb)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self._state != _PENDING:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        env = self.env
        interrupt_event = Event(env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event._state = _TRIGGERED
        env._seq = seq = env._seq + 1
        _heappush(env._queue, (env._now, 0, seq, interrupt_event))
        interrupt_event.callbacks.append(self._resume_cb)

    def _resume(self, event: Event) -> None:
        if self._state != _PENDING:
            return  # process already finished (e.g. interrupt raced finish)
        env = self.env
        # Detach from the previous target if we were interrupted away.
        target = self._target
        if target is not None and target is not event:
            target_callbacks = target.callbacks
            if target_callbacks is not None:
                try:
                    target_callbacks.remove(self._resume_cb)
                except ValueError:
                    pass
        self._target = None
        env._active_process = self
        send = self._send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = self._throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active_process = None
                self.fail(exc)
                return
            # Only Event subclasses carry a `callbacks` slot, so the
            # attribute probe doubles as the is-this-an-event check without
            # paying for isinstance() on every yield.
            try:
                callbacks = next_event.callbacks
            except AttributeError:
                env._active_process = None
                self.fail(
                    SimulationError(
                        f"process yielded a non-event: {next_event!r}"
                    )
                )
                return
            # Fast path: an already-processed event (callbacks handed out
            # and discarded) resumes the generator immediately with its
            # value, without a queue round-trip.
            if callbacks is None:
                event = next_event
                continue
            # Event still pending or triggered-not-processed: wait.
            self._target = next_event
            callbacks.append(self._resume_cb)
            env._active_process = None
            return


#: Queue entry: (time, priority, seq, event).
_Entry = "tuple[float, int, int, Event]"


class CalendarQueue:
    """Bucketed future-event queue (a classic calendar queue).

    Events are hashed into buckets of ``width`` simulated seconds by
    their fire time; the bucket currently being consumed is kept sorted
    (ascending ``(time, priority, seq)``) and drained from the front,
    and empty buckets are skipped on the way to the next nonempty one.
    Compared to a binary heap this replaces the O(log n) tuple-comparing
    sift per push/pop with an O(1) append plus one amortized small-batch
    sort, which wins when the schedule is large and dominated by
    timeouts landing a bounded distance in the future.

    ``front`` is the smallest entry (or ``None`` when empty) and is
    maintained on every mutation so the environment's pop loop can
    compare queue levels with plain attribute reads.  Pop order is the
    exact global ``(time, priority, seq)`` order -- the queue choice is
    invisible to simulation results.
    """

    __slots__ = ("_buckets", "_cur", "_cur_list", "_inv_width", "front", "_len")

    def __init__(self, width: float = 0.01) -> None:
        if width <= 0:
            raise SimulationError(f"calendar bucket width must be > 0, got {width}")
        self._inv_width = 1.0 / width
        #: bucket index -> unsorted list of entries (strictly after _cur).
        self._buckets: dict[int, list] = {}
        self._cur = 0
        #: Entries of the bucket being consumed, sorted ascending.
        self._cur_list: list = []
        self.front: tuple[float, int, int, Event] | None = None
        self._len = 0

    def __len__(self) -> int:
        return self._len

    def push(self, entry: "tuple[float, int, int, Event]") -> None:
        self._len += 1
        cur_list = self._cur_list
        if not cur_list:
            # Queue was empty: start consuming at this entry's bucket.
            self._cur = int(entry[0] * self._inv_width)
            cur_list.append(entry)
            self.front = entry
            return
        idx = int(entry[0] * self._inv_width)
        if idx <= self._cur:
            # Lands in (or before) the bucket being consumed: insert in
            # order.  Buckets are small by construction, so the insort
            # memmove is cheap.
            _insort(cur_list, entry)
            self.front = cur_list[0]
        else:
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [entry]
            else:
                bucket.append(entry)

    def pop(self) -> "tuple[float, int, int, Event]":
        cur_list = self._cur_list
        entry = cur_list.pop(0)
        self._len -= 1
        if cur_list:
            self.front = cur_list[0]
            return entry
        # Advance to the next nonempty bucket.  Buckets are keyed by
        # absolute index, so a long empty stretch is skipped by jumping
        # straight to the smallest remaining key once linear probing
        # stops paying off.
        if self._len:
            buckets = self._buckets
            cur = self._cur
            for _ in range(64):
                cur += 1
                nxt = buckets.pop(cur, None)
                if nxt is not None:
                    break
            else:
                cur = min(buckets)
                nxt = buckets.pop(cur)
            nxt.sort()
            self._cur = cur
            self._cur_list = nxt
            self.front = nxt[0]
        else:
            self.front = None
        return entry


class Environment:
    """The simulation environment: clock plus event queue.

    Typical use::

        env = Environment()
        env.process(my_generator(env))
        env.run(until=100.0)

    ``queue`` selects the future-event structure for this run:
    ``"heap"`` (default) keeps a binary heap, ``"calendar"`` a
    :class:`CalendarQueue` with ``bucket_width``-sized time buckets.
    Scheduling order -- and therefore every simulation result -- is
    identical for either choice; only the constant factors differ (see
    docs/performance.md for measurements).
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        trace: Callable[[float, int, int, Event], None] | None = None,
        queue: str = "heap",
        bucket_width: float = 0.01,
    ) -> None:
        self._now = float(initial_time)
        #: Future events (positive-delay timeouts) and priority-0
        #: interrupts.  In calendar mode this heap still exists as the
        #: spill level for interrupts and externally constructed events,
        #: so every push site stays correct regardless of queue choice.
        self._queue: list[tuple[float, int, int, Event]] = []
        #: The "now bucket": events triggered at the current time with
        #: default priority, kept sorted by construction (time never
        #: decreases, seq always increases).
        self._fifo: deque[tuple[float, int, int, Event]] = deque()
        if queue == "heap":
            self._cal: CalendarQueue | None = None
        elif queue == "calendar":
            self._cal = CalendarQueue(width=bucket_width)
        else:
            raise SimulationError(f"unknown queue kind {queue!r}")
        self._seq = 0
        self._active_process: Process | None = None
        #: Optional event-trace hook: called as ``trace(when, priority,
        #: seq, event)`` for every event popped off the schedule, *before*
        #: its callbacks run.  ``None`` (the default) keeps the inlined
        #: drain loops in :meth:`run` -- tracing off costs nothing on the
        #: hot path.  See :mod:`repro.sim.trace` for ready-made hooks
        #: (event recorders, run digests).
        self._trace = trace

    @property
    def trace(self) -> Callable[[float, int, int, Event], None] | None:
        """The installed event-trace callback, if any."""
        return self._trace

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """Create an event firing at absolute simulated time ``when``.

        Equivalent to ``timeout(when - now)`` except that the fire time
        is exactly ``when``: no ``now + (when - now)`` float round trip.
        Batch-generating processes (the workload layer pre-computes
        arrival times far ahead of the clock) use this to wake at
        precomputed times bit-for-bit.
        """
        now = self._now
        if when < now:
            raise SimulationError(f"timeout_at({when}) is in the past (now={now})")
        timeout = Timeout.__new__(Timeout)
        timeout.env = self
        timeout.callbacks = []
        timeout._value = value
        timeout._ok = True
        timeout._state = _TRIGGERED
        timeout._defused = False
        timeout.delay = when - now
        self._seq = seq = self._seq + 1
        if when == now:
            self._fifo.append((now, 1, seq, timeout))
        else:
            cal = self._cal
            if cal is None:
                _heappush(self._queue, (when, 1, seq, timeout))
            else:
                cal.push((when, 1, seq, timeout))
        return timeout

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        self._seq += 1
        if delay == 0.0 and priority == 1:
            self._fifo.append((self._now, 1, self._seq, event))
        else:
            _heappush(self._queue, (self._now + delay, priority, self._seq, event))

    def _pop_next(self) -> "tuple[float, int, int, Event] | None":
        """Remove and return the globally smallest entry, or ``None``.

        The schedule is split across up to three levels (now bucket,
        heap, calendar); each level yields its entries in sorted order,
        so the global minimum is the smallest of the level fronts.
        """
        fifo = self._fifo
        queue = self._queue
        cal = self._cal
        best = fifo[0] if fifo else None
        src = 0
        if queue:
            entry = queue[0]
            if best is None or entry < best:
                best = entry
                src = 1
        if cal is not None:
            entry = cal.front
            if entry is not None and (best is None or entry < best):
                best = entry
                src = 2
        if best is None:
            return None
        if src == 0:
            return fifo.popleft()
        if src == 1:
            return _heappop(queue)
        return cal.pop()

    def _empty(self) -> bool:
        return not (
            self._fifo
            or self._queue
            or (self._cal is not None and self._cal.front is not None)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        times = []
        if self._fifo:
            times.append(self._fifo[0][0])
        if self._queue:
            times.append(self._queue[0][0])
        if self._cal is not None and self._cal.front is not None:
            times.append(self._cal.front[0])
        return min(times) if times else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        Raises the failure exception of any failed event that no process
        handled (mirroring SimPy's "dead process" detection), so bugs do not
        silently vanish.
        """
        entry = self._pop_next()
        if entry is None:
            raise SimulationError("step() on an empty schedule")
        when, _priority, _seq, event = entry
        self._now = when
        if self._trace is not None:
            self._trace(when, _priority, _seq, event)
        callbacks = event.callbacks
        event.callbacks = None
        event._state = _PROCESSED
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be a simulation time (run to that time), an
        :class:`Event` (run until it fires and return its value), or ``None``
        (run until no events remain).

        With an event, the schedule may drain before the event ever
        triggers (no process can fire it any more); that is reported as a
        :class:`SimulationError` rather than returning silently.
        """
        queue = self._queue
        fifo = self._fifo
        fifo_popleft = fifo.popleft
        # When step() is not overridden, no trace hook is installed, and
        # the future queue is the default heap, inline the step body into
        # the drain loops: one Python method call per event is measurable
        # at the millions-of-events scale of a deployment run.  The
        # inlined body is identical to step() minus the empty-schedule
        # guard (the loop conditions establish it) and the trace call
        # (absent by construction).  Traced and calendar-queue runs take
        # the step() path and see the exact same (when, priority, seq,
        # event) schedule entries.
        inline = (
            type(self).step is Environment.step
            and self._trace is None
            and self._cal is None
        )
        step = self.step
        if isinstance(until, Event):
            stop = until
            if inline:
                while stop._state != _PROCESSED and (fifo or queue):
                    if fifo:
                        if queue and queue[0] < fifo[0]:
                            when, _priority, _seq, event = _heappop(queue)
                        else:
                            when, _priority, _seq, event = fifo_popleft()
                    else:
                        when, _priority, _seq, event = _heappop(queue)
                    self._now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._state = _PROCESSED
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        raise exc if isinstance(exc, BaseException) else (
                            SimulationError(repr(exc))
                        )
            else:
                while stop._state != _PROCESSED and not self._empty():
                    step()
            if stop._state == _PENDING:
                raise SimulationError(
                    "run(until=event): schedule drained but the event never fired"
                )
            if not stop._ok:
                raise stop._value
            return stop._value
        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"run(until={horizon}) is in the past (now={self._now})"
                )
            if inline:
                # Now-bucket entries are always at the current time,
                # which never exceeds an un-reached horizon, so only the
                # heap front needs the horizon comparison.
                while fifo or (queue and queue[0][0] <= horizon):
                    if fifo:
                        if queue and queue[0] < fifo[0]:
                            when, _priority, _seq, event = _heappop(queue)
                        else:
                            when, _priority, _seq, event = fifo_popleft()
                    else:
                        when, _priority, _seq, event = _heappop(queue)
                    self._now = when
                    callbacks = event.callbacks
                    event.callbacks = None
                    event._state = _PROCESSED
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        exc = event._value
                        raise exc if isinstance(exc, BaseException) else (
                            SimulationError(repr(exc))
                        )
            else:
                while not self._empty() and self.peek() <= horizon:
                    step()
            self._now = horizon
            return None
        if inline:
            while fifo or queue:
                if fifo:
                    if queue and queue[0] < fifo[0]:
                        when, _priority, _seq, event = _heappop(queue)
                    else:
                        when, _priority, _seq, event = fifo_popleft()
                else:
                    when, _priority, _seq, event = _heappop(queue)
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                event._state = _PROCESSED
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    exc = event._value
                    raise exc if isinstance(exc, BaseException) else (
                        SimulationError(repr(exc))
                    )
        else:
            while not self._empty():
                step()
        return None
