"""Discrete-event simulation engine.

This module is the foundation of the cluster substrate: a small,
self-contained discrete-event kernel in the style of SimPy.  Processes are
Python generators that ``yield`` events; the environment resumes a process
when the event it waits on fires.  The engine provides:

* :class:`Environment` -- the event loop and simulation clock.
* :class:`Event` -- a one-shot occurrence that processes can wait on.
* :class:`Timeout` -- an event that fires after a simulated delay.
* :class:`Process` -- a running generator, itself awaitable as an event.
* :class:`AnyOf` / :class:`AllOf` -- condition events over several events.
* :class:`Interrupt` -- exception thrown into a process by another process.

The engine is deterministic: events scheduled at the same simulated time
fire in scheduling order (a monotonically increasing sequence number breaks
ties), so runs with the same seed are exactly reproducible.

Performance notes: this kernel is the hot path of every experiment --
a full-scale deployment run spends nearly all of its wall-clock here --
so the implementation trades a little prose for speed.  All event classes
use ``__slots__``; the succeed/schedule path is inlined (one attribute
chase and one queue append instead of nested method calls); processes
cache their generator's bound ``send``/``throw`` and their own ``_resume``
callback instead of recreating bound methods per wait.

The schedule itself is a two-level bucket queue.  Events triggered *at
the current simulation time* with the default priority -- ``succeed``,
``fail``, process bootstraps, zero-delay timeouts, which together are
roughly half of all events in RPC-heavy runs -- land in the "now
bucket".  Because simulation time never goes backwards and the
tie-breaking sequence number increases monotonically, *every* pending
now-bucket entry provably has ``time == now`` and ``priority == 1``, so
the bucket stores only the two columns that vary -- a deque of sequence
numbers and a parallel deque of events -- instead of a
``(time, priority, seq, event)`` tuple per entry.  The flat
structure-of-arrays form cuts a 4-tuple allocation (and its GC
tracking) from every succeed/grant/bootstrap, which is the single
largest allocation source in RPC-heavy runs; the logical schedule is
unchanged and the queue interface (:meth:`Environment.peek`,
:meth:`Environment.step`, the trace hook) still presents full
``(time, priority, seq, event)`` entries.

Future events (positive-delay timeouts) and priority-0 interrupts go to
a binary heap, or to a :class:`CalendarQueue` that buckets events by
time and sorts one small bucket at a time (cheaper than heap sifts for
large timeout-dominated schedules).  ``Environment(queue=...)`` selects
the structure: ``"heap"`` and ``"calendar"`` pin one, and the default
``"auto"`` starts on the heap and migrates to a calendar when the
observed pending-set size crosses the crossover regime (and back when
it drains), with the calendar's bucket width chosen from the observed
event-time span and resized online on overflow/underflow.  Every pop
takes the global minimum across the levels, so scheduling order is
*identical* for all queue choices: the schedule still logically holds
``(time, priority, seq, event)`` tuples and the same-seed byte-identical
trace regression in ``tests/sim/test_determinism.py`` (plus the
three-way equivalence suite in ``tests/sim/test_queue_equivalence.py``)
pins the contract.

Timeouts -- by far the most frequently constructed event -- are pooled:
after a timeout's callbacks run, the drain loop recycles the object
into a per-environment freelist *iff* nothing else holds a reference to
it (checked with ``sys.getrefcount``, so a timeout stored in a
variable, a condition, or a trace hook is never reused under anyone's
feet).  Recycled handles keep their ``_PROCESSED`` state, so a stale
``succeed()``/``fail()`` raises immediately, and every reuse bumps the
object's generation counter and validates the freelist invariants,
raising :class:`SimulationError` instead of silently corrupting the
schedule.  Benchmarked by ``benchmarks/perf/bench_engine.py`` (results
in ``BENCH_engine.json``; queue comparison and the allocation probe in
``docs/performance.md``).
"""

from __future__ import annotations

from bisect import insort as _insort
from collections import deque
from collections.abc import Generator, Iterable
from heapq import (
    heapify as _heapify,
    heappop as _heappop,
    heappush as _heappush,
)
from sys import getrefcount as _getrefcount
from typing import Any, Callable

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Event states
_PENDING = 0
_TRIGGERED = 1  # scheduled, callbacks not yet run
_PROCESSED = 2  # callbacks have run

#: Maximum recycled :class:`Timeout` objects kept per environment.  At
#: 4096 the pool covers the deepest concurrent-timeout populations of
#: the composite benchmarks while bounding the footprint of a pool that
#: a workload stops using.
_POOL_MAX = 4096

#: ``queue="auto"``: pending future events before the heap is migrated
#: to a calendar queue (upgrade), and the calendar population below
#: which it migrates back (downgrade).  The 4x hysteresis band prevents
#: thrashing around the boundary; the values bracket the measured
#: heap/calendar crossover on the reference container (heapq's C sift
#: wins below ~5k pending, the calendar wins from ~10k up -- see
#: docs/performance.md).
_AUTO_CAL_UPGRADE = 8192
_AUTO_CAL_DOWNGRADE = _AUTO_CAL_UPGRADE // 4

#: Sentinel threshold for fixed queue modes: never migrate.
_NEVER = 1 << 62


class Event:
    """A one-shot occurrence in simulated time.

    Events start *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* the event: it is placed on the environment's queue and its
    callbacks run at the current simulation time.  A process waits on an
    event by yielding it from its generator.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_state", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[Callable[["Event"], None]] | None = []
        self._value: Any = None
        self._ok = True
        self._state = _PENDING
        #: Failure value consumed flag -- an unhandled failed event is an
        #: error surfaced by :meth:`Environment.step`.
        self._defused = False

    # -- introspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._state >= _TRIGGERED

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (valid only once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (result or failure exception)."""
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self._state = _TRIGGERED
        env = self.env
        env._seq = seq = env._seq + 1
        # Triggered at the current time with default priority: the now
        # bucket stays (time, priority, seq)-sorted by construction, and
        # time/priority are implied (now, 1), so only seq and the event
        # itself are stored.
        env._fseq_app(seq)
        env._fev_app(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure carrying ``exception``."""
        if self._state != _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = _TRIGGERED
        env = self.env
        env._seq = seq = env._seq + 1
        env._fseq_app(seq)
        env._fev_app(self)
        return self

    def _add_callback(self, callback: Callable[["Event"], None]) -> None:
        callbacks = self.callbacks
        if callbacks is None:
            # Already processed: run at once (still at current sim time).
            callback(self)
        else:
            callbacks.append(callback)

    def __repr__(self) -> str:
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` time units after creation.

    Timeouts are pooled per environment (see
    :meth:`Environment.timeout`); ``_gen`` counts how many times this
    object has been handed out.  Constructing one directly always
    allocates fresh and is fully supported -- the pool is an
    optimization of the factory, not a change in semantics.
    """

    __slots__ = ("delay", "_gen")

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ plus scheduling: timeouts are by far the
        # most frequently created event, so the constructor chain matters.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = _TRIGGERED
        self._defused = False
        self.delay = delay
        self._gen = 0
        env._timeout_allocs += 1
        env._seq = seq = env._seq + 1
        now = env._now
        when = now + delay
        if when == now:
            # Fires at the current time (zero delay, or a delay so small
            # it underflows the float add): now bucket.  Identical global
            # order either way -- at equal (time, priority) the pop
            # compares sequence numbers regardless of the structure.
            env._fseq_app(seq)
            env._fev_app(self)
        else:
            cal = env._cal
            if cal is None:
                _heappush(env._queue, (when, 1, seq, self))
            else:
                cal.push((when, 1, seq, self))


class _ConditionValue(dict):
    """Mapping of event -> value for fired events of a condition."""


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("_events", "_fired")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._fired: list[Event] = []
        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")
            event._add_callback(self._on_fire)
        if not self._events and self._state == _PENDING:
            self.succeed(_ConditionValue())

    def _on_fire(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._fired.append(event)
        if self._satisfied():
            fired = set(map(id, self._fired))
            value = _ConditionValue()
            for ev in self._events:
                if id(ev) in fired:
                    value[ev] = ev._value
            self.succeed(value)

    def _satisfied(self) -> bool:
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when at least one of the given events has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._fired) >= 1


class AllOf(_Condition):
    """Fires when all of the given events have fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._fired) == len(self._events)


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event that fires with the generator's return
    value when it finishes, so processes can wait for each other::

        def child(env):
            yield env.timeout(5)
            return "done"

        def parent(env):
            result = yield env.process(child(env))
    """

    __slots__ = ("_generator", "_target", "_send", "_throw", "_resume_cb")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Event | None = None
        # Bound methods are cached once: creating them per resume/wait is
        # a measurable cost at millions of events per run.
        self._send = generator.send
        self._throw = generator.throw
        self._resume_cb = self._resume
        # Bootstrap: resume the process at the current time.
        init = Event(env)
        init._ok = True
        init._state = _TRIGGERED
        env._seq = seq = env._seq + 1
        env._fseq_app(seq)
        env._fev_app(init)
        init.callbacks.append(self._resume_cb)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self._state != _PENDING:
            raise SimulationError("cannot interrupt a finished process")
        if self._target is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        env = self.env
        interrupt_event = Event(env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event._state = _TRIGGERED
        env._seq = seq = env._seq + 1
        # Priority 0 beats every same-time event: interrupts go to the
        # heap (the spill level in calendar/auto modes), never the
        # priority-1 now bucket.
        _heappush(env._queue, (env._now, 0, seq, interrupt_event))
        interrupt_event.callbacks.append(self._resume_cb)

    def _resume(self, event: Event) -> None:
        if self._state != _PENDING:
            return  # process already finished (e.g. interrupt raced finish)
        env = self.env
        # Detach from the previous target if we were interrupted away.
        target = self._target
        if target is not None and target is not event:
            target_callbacks = target.callbacks
            if target_callbacks is not None:
                try:
                    target_callbacks.remove(self._resume_cb)
                except ValueError:
                    pass
        self._target = None
        env._active_process = self
        send = self._send
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = self._throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active_process = None
                self.fail(exc)
                return
            # Only Event subclasses carry a `callbacks` slot, so the
            # attribute probe doubles as the is-this-an-event check without
            # paying for isinstance() on every yield.
            try:
                callbacks = next_event.callbacks
            except AttributeError:
                env._active_process = None
                self.fail(
                    SimulationError(
                        f"process yielded a non-event: {next_event!r}"
                    )
                )
                return
            # Fast path: an already-processed event (callbacks handed out
            # and discarded) resumes the generator immediately with its
            # value, without a queue round-trip.
            if callbacks is None:
                event = next_event
                continue
            # Event still pending or triggered-not-processed: wait.
            self._target = next_event
            callbacks.append(self._resume_cb)
            env._active_process = None
            return


#: Queue entry: (time, priority, seq, event).
_Entry = "tuple[float, int, int, Event]"

#: Adaptive calendar-queue constants: a freshly sorted bucket larger
#: than ``_BUCKET_OVERFLOW`` halves the width (too many events share a
#: bucket); exhausting ``_PROBE_LIMIT`` empty buckets in one advance
#: doubles it (buckets much finer than the event spacing).  Resizes are
#: O(n), so at least ``_RESIZE_COOLDOWN`` bucket advances must pass
#: between them.
_BUCKET_OVERFLOW = 1024
_PROBE_LIMIT = 64
_RESIZE_COOLDOWN = 16


class CalendarQueue:
    """Bucketed future-event queue (a classic calendar queue).

    Events are hashed into buckets of ``width`` simulated seconds by
    their fire time; the bucket currently being consumed is kept sorted
    (ascending ``(time, priority, seq)``) and drained from the front,
    and empty buckets are skipped on the way to the next nonempty one.
    Compared to a binary heap this replaces the O(log n) tuple-comparing
    sift per push/pop with an O(1) append plus one amortized small-batch
    sort, which wins when the schedule is large and dominated by
    timeouts landing a bounded distance in the future.

    The width adapts online: a bucket that sorts too large halves it, an
    advance that skips too many empty buckets doubles it (both rate
    limited -- see ``_RESIZE_COOLDOWN``), so a misjudged initial width
    converges to the workload's event spacing instead of degenerating
    into one giant sorted list or a sea of empty buckets.

    ``front`` is the smallest entry (or ``None`` when empty) and is
    maintained on every mutation so the environment's pop loop can
    compare queue levels with plain attribute reads.  Pop order is the
    exact global ``(time, priority, seq)`` order -- the queue choice is
    invisible to simulation results.
    """

    __slots__ = (
        "_buckets",
        "_cur",
        "_cur_list",
        "_inv_width",
        "front",
        "_len",
        "_cooldown",
    )

    def __init__(self, width: float = 0.01) -> None:
        if width <= 0:
            raise SimulationError(f"calendar bucket width must be > 0, got {width}")
        self._inv_width = 1.0 / width
        #: bucket index -> unsorted list of entries (strictly after _cur).
        self._buckets: dict[int, list] = {}
        self._cur = 0
        #: Entries of the bucket being consumed, sorted ascending.
        self._cur_list: list = []
        self.front: tuple[float, int, int, Event] | None = None
        self._len = 0
        self._cooldown = _RESIZE_COOLDOWN

    def __len__(self) -> int:
        return self._len

    @property
    def width(self) -> float:
        """Current bucket width in simulated seconds (adapts online)."""
        return 1.0 / self._inv_width

    def push(self, entry: "tuple[float, int, int, Event]") -> None:
        self._len += 1
        cur_list = self._cur_list
        if not cur_list:
            # Queue was empty: start consuming at this entry's bucket.
            self._cur = int(entry[0] * self._inv_width)
            cur_list.append(entry)
            self.front = entry
            return
        idx = int(entry[0] * self._inv_width)
        if idx <= self._cur:
            # Lands in (or before) the bucket being consumed: insert in
            # order.  Buckets are small by construction, so the insort
            # memmove is cheap.
            _insort(cur_list, entry)
            self.front = cur_list[0]
        else:
            bucket = self._buckets.get(idx)
            if bucket is None:
                self._buckets[idx] = [entry]
            else:
                bucket.append(entry)

    def pop(self) -> "tuple[float, int, int, Event]":
        cur_list = self._cur_list
        entry = cur_list.pop(0)
        self._len -= 1
        if cur_list:
            self.front = cur_list[0]
            return entry
        # Advance to the next nonempty bucket.  Buckets are keyed by
        # absolute index, so a long empty stretch is skipped by jumping
        # straight to the smallest remaining key once linear probing
        # stops paying off.
        if self._len:
            buckets = self._buckets
            cur = self._cur
            exhausted = False
            for _ in range(_PROBE_LIMIT):
                cur += 1
                nxt = buckets.pop(cur, None)
                if nxt is not None:
                    break
            else:
                cur = min(buckets)
                nxt = buckets.pop(cur)
                exhausted = True
            nxt.sort()
            self._cur = cur
            self._cur_list = nxt
            self.front = nxt[0]
            # Online width adaptation, rate limited to one O(n) resize
            # per _RESIZE_COOLDOWN bucket advances.
            cooldown = self._cooldown - 1
            if cooldown > 0:
                self._cooldown = cooldown
            elif exhausted:
                # Probing gave up: buckets are much finer than the event
                # spacing.  Double the width.
                self._cooldown = _RESIZE_COOLDOWN
                self._resize(self._inv_width * 0.5)
            elif len(nxt) > _BUCKET_OVERFLOW:
                # One bucket holds a large sorted batch: buckets are too
                # coarse.  Halve the width.
                self._cooldown = _RESIZE_COOLDOWN
                self._resize(self._inv_width * 2.0)
            else:
                self._cooldown = 1  # stay armed
        else:
            self.front = None
        return entry

    def _bulk_load(self, entries: "Iterable[tuple[float, int, int, Event]]") -> None:
        """Load ``entries`` (any order) into an *empty* queue in O(n)."""
        if self._len:
            raise SimulationError("_bulk_load() on a nonempty calendar queue")
        buckets = self._buckets
        inv_width = self._inv_width
        count = 0
        for entry in entries:
            idx = int(entry[0] * inv_width)
            bucket = buckets.get(idx)
            if bucket is None:
                buckets[idx] = [entry]
            else:
                bucket.append(entry)
            count += 1
        self._len = count
        if buckets:
            cur = min(buckets)
            cur_list = buckets.pop(cur)
            cur_list.sort()
            self._cur = cur
            self._cur_list = cur_list
            self.front = cur_list[0]

    def _resize(self, inv_width: float) -> None:
        """Re-bucket every entry under a new width (front is unchanged)."""
        entries = self._cur_list
        for bucket in self._buckets.values():
            entries.extend(bucket)
        self._inv_width = inv_width
        self._buckets = {}
        self._cur_list = []
        self._len = 0
        if not entries:
            self.front = None
            return
        self._bulk_load(entries)


class Environment:
    """The simulation environment: clock plus event queue.

    Typical use::

        env = Environment()
        env.process(my_generator(env))
        env.run(until=100.0)

    ``queue`` selects the future-event structure for this run:

    * ``"auto"`` (default) -- start on a binary heap and migrate to a
      :class:`CalendarQueue` when the pending future-event population
      grows past the measured heap/calendar crossover (and back once it
      drains); the calendar's initial bucket width is derived from the
      observed event-time span at migration and adapts online.
    * ``"heap"`` -- always the binary heap.
    * ``"calendar"`` -- always a :class:`CalendarQueue` with
      ``bucket_width``-sized time buckets (the width still adapts).

    Scheduling order -- and therefore every simulation result -- is
    identical for every choice; only the constant factors differ (see
    docs/performance.md for measurements, and
    ``tests/sim/test_queue_equivalence.py`` for the executable proof).
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        trace: Callable[[float, int, int, Event], None] | None = None,
        queue: str = "auto",
        bucket_width: float = 0.01,
    ) -> None:
        self._now = float(initial_time)
        #: Future events (positive-delay timeouts) and priority-0
        #: interrupts.  In calendar mode this heap still exists as the
        #: spill level for interrupts and externally constructed events,
        #: so every push site stays correct regardless of queue choice.
        self._queue: list[tuple[float, int, int, Event]] = []
        #: The "now bucket" as a flat structure of arrays: every pending
        #: entry provably has ``time == self._now`` and ``priority == 1``
        #: (time never decreases; only current-time default-priority
        #: triggers land here), so of the four logical columns only seq
        #: and the event are stored.  Appending keeps both deques
        #: (time, priority, seq)-sorted for free because seq increases
        #: monotonically.
        self._fifo_seq: deque[int] = deque()
        self._fifo_ev: deque[Event] = deque()
        #: Cached bound appends -- the two hottest calls in the kernel
        #: (every succeed/fail/grant/bootstrap goes through them).
        self._fseq_app = self._fifo_seq.append
        self._fev_app = self._fifo_ev.append
        if bucket_width <= 0:
            raise SimulationError(
                f"calendar bucket width must be > 0, got {bucket_width}"
            )
        self._bucket_width = float(bucket_width)
        if queue == "auto":
            self._cal: CalendarQueue | None = None
            self._cal_up = _AUTO_CAL_UPGRADE
            self._cal_down = _AUTO_CAL_DOWNGRADE
        elif queue == "heap":
            self._cal = None
            self._cal_up = _NEVER
            self._cal_down = 0
        elif queue == "calendar":
            self._cal = CalendarQueue(width=bucket_width)
            self._cal_up = _NEVER
            self._cal_down = 0
        else:
            raise SimulationError(f"unknown queue kind {queue!r}")
        self._queue_kind = queue
        self._seq = 0
        self._active_process: Process | None = None
        #: Optional event-trace hook: called as ``trace(when, priority,
        #: seq, event)`` for every event popped off the schedule, *before*
        #: its callbacks run.  ``None`` (the default) keeps the inlined
        #: drain loops in :meth:`run` -- tracing off costs nothing on the
        #: hot path.  See :mod:`repro.sim.trace` for ready-made hooks
        #: (event recorders, run digests).
        self._trace = trace
        #: Freelist of recycled Timeout objects (see :meth:`timeout`).
        self._pool: list[Timeout] = []
        #: Fresh Timeout constructions vs pool reuses -- the allocation
        #: probe in benchmarks/perf/bench_engine.py reads both.
        self._timeout_allocs = 0
        self._timeout_reuses = 0

    @property
    def trace(self) -> Callable[[float, int, int, Event], None] | None:
        """The installed event-trace callback, if any."""
        return self._trace

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def queue_kind(self) -> str:
        """The queue mode this environment was constructed with."""
        return self._queue_kind

    def timeout_pool_stats(self) -> dict[str, int]:
        """Freelist counters: fresh allocations, reuses, pooled objects."""
        return {
            "allocs": self._timeout_allocs,
            "reuses": self._timeout_reuses,
            "pooled": len(self._pool),
        }

    # -- factories --------------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now.

        Hands out a recycled :class:`Timeout` from the environment's
        freelist when one is available (the drain loops return a timeout
        to the pool once its callbacks have run and nothing else
        references it).  Reuse validates the freelist invariants --
        a recycled handle that was resurrected through a stale reference
        raises :class:`SimulationError` here rather than corrupting the
        schedule -- and bumps the object's generation counter.
        """
        pool = self._pool
        if not pool:
            return Timeout(self, delay, value)
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        timeout = pool.pop()
        if (
            timeout._state != _PROCESSED
            or timeout.callbacks is None
            or timeout.callbacks
        ):
            raise SimulationError(
                "timeout freelist corrupted: a recycled Timeout was mutated "
                "through a stale handle"
            )
        timeout._gen += 1
        timeout._state = _TRIGGERED
        timeout._value = value
        timeout.delay = delay
        self._timeout_reuses += 1
        self._seq = seq = self._seq + 1
        now = self._now
        when = now + delay
        if when == now:
            self._fseq_app(seq)
            self._fev_app(timeout)
        else:
            cal = self._cal
            if cal is None:
                _heappush(self._queue, (when, 1, seq, timeout))
            else:
                cal.push((when, 1, seq, timeout))
        return timeout

    def timeout_at(self, when: float, value: Any = None) -> Timeout:
        """Create an event firing at absolute simulated time ``when``.

        Equivalent to ``timeout(when - now)`` except that the fire time
        is exactly ``when``: no ``now + (when - now)`` float round trip.
        Batch-generating processes (the workload layer pre-computes
        arrival times far ahead of the clock) use this to wake at
        precomputed times bit-for-bit.  Pool-backed like
        :meth:`timeout`.
        """
        now = self._now
        if when < now:
            raise SimulationError(f"timeout_at({when}) is in the past (now={now})")
        pool = self._pool
        if pool:
            timeout = pool.pop()
            if (
                timeout._state != _PROCESSED
                or timeout.callbacks is None
                or timeout.callbacks
            ):
                raise SimulationError(
                    "timeout freelist corrupted: a recycled Timeout was "
                    "mutated through a stale handle"
                )
            timeout._gen += 1
            self._timeout_reuses += 1
        else:
            timeout = Timeout.__new__(Timeout)
            timeout.env = self
            timeout.callbacks = []
            timeout._ok = True
            timeout._defused = False
            timeout._gen = 0
            self._timeout_allocs += 1
        timeout._value = value
        timeout._state = _TRIGGERED
        timeout.delay = when - now
        self._seq = seq = self._seq + 1
        if when == now:
            self._fseq_app(seq)
            self._fev_app(timeout)
        else:
            cal = self._cal
            if cal is None:
                _heappush(self._queue, (when, 1, seq, timeout))
            else:
                cal.push((when, 1, seq, timeout))
        return timeout

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition event firing when any of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition event firing when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling -------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        self._seq += 1
        when = self._now + delay
        if priority == 1 and when == self._now:
            self._fseq_app(self._seq)
            self._fev_app(event)
        else:
            _heappush(self._queue, (when, priority, self._seq, event))

    def _upgrade_queue(self) -> None:
        """Migrate the heap to a calendar queue (auto mode, grown past
        the crossover).

        The initial bucket width targets ~8 entries per bucket over the
        observed event-time span (the ROADMAP's bucket-width heuristic);
        the calendar refines it online from there.  The heap list is
        emptied in place -- drain loops hold local aliases to it.
        """
        queue = self._queue
        width = self._bucket_width
        if queue:
            span = max(entry[0] for entry in queue) - self._now
            if span > 0.0:
                width = (span / len(queue)) * 8.0
        cal = CalendarQueue(width=width)
        cal._bulk_load(queue)
        queue.clear()
        self._cal = cal

    def _downgrade_queue(self) -> None:
        """Migrate the calendar back to the heap (auto mode, drained
        below the crossover).  Mutates the heap list in place."""
        cal = self._cal
        queue = self._queue
        queue.extend(cal._cur_list)
        for bucket in cal._buckets.values():
            queue.extend(bucket)
        _heapify(queue)
        self._cal = None

    def _pop_next(self) -> "tuple[float, int, int, Event] | None":
        """Remove and return the globally smallest entry, or ``None``.

        The schedule is split across up to three levels (now bucket,
        heap, calendar); each level yields its entries in sorted order,
        so the global minimum is the smallest of the level fronts.  The
        now bucket's front materializes as a 3-tuple -- sequence numbers
        are unique, so comparisons against 4-tuple heap/calendar entries
        are always decided by index <= 2 and never reach the length
        tie-break.
        """
        fseq = self._fifo_seq
        queue = self._queue
        cal = self._cal
        best = (self._now, 1, fseq[0]) if fseq else None
        src = 0
        if queue:
            head = queue[0]
            if best is None or head < best:
                best = head
                src = 1
        if cal is not None:
            front = cal.front
            if front is not None and (best is None or front < best):
                best = front
                src = 2
        if best is None:
            return None
        if src == 0:
            seq = fseq.popleft()
            return (self._now, 1, seq, self._fifo_ev.popleft())
        if src == 1:
            return _heappop(queue)
        return cal.pop()

    def _empty(self) -> bool:
        return not (
            self._fifo_seq
            or self._queue
            or (self._cal is not None and self._cal.front is not None)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        # Now-bucket entries are by construction at the current time,
        # which lower-bounds every other level.
        if self._fifo_seq:
            return self._now
        times = []
        if self._queue:
            times.append(self._queue[0][0])
        if self._cal is not None and self._cal.front is not None:
            times.append(self._cal.front[0])
        return min(times) if times else float("inf")

    def step(self) -> None:
        """Process the next scheduled event.

        Raises the failure exception of any failed event that no process
        handled (mirroring SimPy's "dead process" detection), so bugs do not
        silently vanish.
        """
        entry = self._pop_next()
        if entry is None:
            raise SimulationError("step() on an empty schedule")
        when, _priority, _seq, event = entry
        del entry  # drop the tuple's reference so the recycle guard sees 2
        self._now = when
        if self._trace is not None:
            self._trace(when, _priority, _seq, event)
        callbacks = event.callbacks
        event.callbacks = None
        event._state = _PROCESSED
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc if isinstance(exc, BaseException) else SimulationError(repr(exc))
        pool = self._pool
        if (
            type(event) is Timeout
            and len(pool) < _POOL_MAX
            and _getrefcount(event) == 2
        ):
            callbacks.clear()
            event.callbacks = callbacks
            event._value = None
            pool.append(event)

    def run(self, until: float | Event | None = None) -> Any:
        """Run the simulation.

        ``until`` may be a simulation time (run to that time), an
        :class:`Event` (run until it fires and return its value), or ``None``
        (run until no events remain).

        With an event, the schedule may drain before the event ever
        triggers (no process can fire it any more); that is reported as a
        :class:`SimulationError` rather than returning silently.

        The body dispatches to one of three drain loops -- the inlined
        heap+now-bucket fast path, the calendar-aware fast path, or the
        generic :meth:`step` loop (trace hook installed or ``step``
        overridden) -- and re-dispatches whenever auto mode migrates
        between heap and calendar mid-run.  All loops pop the exact same
        global ``(time, priority, seq)`` order.
        """
        stop: Event | None = None
        horizon: float | None = None
        if isinstance(until, Event):
            stop = until
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"run(until={horizon}) is in the past (now={self._now})"
                )
        # When step() is not overridden and no trace hook is installed,
        # inline the step body into the drain loops: one Python method
        # call per event is measurable at the millions-of-events scale
        # of a deployment run.  The inlined bodies are identical to
        # step() minus the empty-schedule guard (the loop conditions
        # establish it) and the trace call (absent by construction).
        can_inline = type(self).step is Environment.step and self._trace is None
        while True:
            if not can_inline:
                done = self._step_drain(stop, horizon)
            elif self._cal is not None:
                done = self._drain_cal(stop, horizon)
            elif stop is not None:
                done = self._inline_event(stop)
            elif horizon is not None:
                done = self._inline_until(horizon)
            else:
                done = self._inline_all()
            if done:
                break
        if stop is not None:
            if stop._state == _PENDING:
                raise SimulationError(
                    "run(until=event): schedule drained but the event never fired"
                )
            if not stop._ok:
                raise stop._value
            return stop._value
        if horizon is not None:
            self._now = horizon
        return None

    # -- drain loops -------------------------------------------------------
    # Each returns True when its stop condition was reached (schedule
    # drained / horizon passed / stop event processed) and False when the
    # queue structure flipped (auto-mode migration) and run() must
    # re-dispatch.  The three _inline_* variants duplicate one loop body
    # on purpose: hoisting the per-variant condition into a shared loop
    # costs a per-event check on the hottest path in the repository.

    def _inline_all(self) -> bool:
        queue = self._queue
        fseq = self._fifo_seq
        fev = self._fifo_ev
        fseq_pop = fseq.popleft
        fev_pop = fev.popleft
        pool = self._pool
        cal_up = self._cal_up
        now = self._now
        while fseq or queue:
            if fseq:
                if queue:
                    head = queue[0]
                    # The heap front wins only at the current time with
                    # a beating priority or an earlier seq (now-bucket
                    # entries are always (now, 1, seq)).
                    if head[0] == now and (
                        head[1] == 0 or (head[1] == 1 and head[2] < fseq[0])
                    ):
                        _w, _p, _s, event = _heappop(queue)
                        head = None  # drop the tuple ref for the recycle guard
                    else:
                        fseq_pop()
                        event = fev_pop()
                else:
                    fseq_pop()
                    event = fev_pop()
            else:
                when, _p, _s, event = _heappop(queue)
                self._now = now = when
            callbacks = event.callbacks
            event.callbacks = None
            event._state = _PROCESSED
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                exc = event._value
                raise exc if isinstance(exc, BaseException) else (
                    SimulationError(repr(exc))
                )
            if (
                type(event) is Timeout
                and len(pool) < _POOL_MAX
                and _getrefcount(event) == 2
            ):
                # Nothing else references this timeout: recycle it (and
                # its callbacks list) into the freelist.  It keeps the
                # _PROCESSED state, so stale triggers raise; reuse
                # revalidates and bumps the generation counter.
                callbacks.clear()
                event.callbacks = callbacks
                event._value = None
                pool.append(event)
            if len(queue) > cal_up:
                self._upgrade_queue()
                return False
        return True

    def _inline_until(self, horizon: float) -> bool:
        queue = self._queue
        fseq = self._fifo_seq
        fev = self._fifo_ev
        fseq_pop = fseq.popleft
        fev_pop = fev.popleft
        pool = self._pool
        cal_up = self._cal_up
        now = self._now
        # Now-bucket entries are always at the current time, which never
        # exceeds an un-reached horizon, so only the heap front needs the
        # horizon comparison.
        while fseq or (queue and queue[0][0] <= horizon):
            if fseq:
                if queue:
                    head = queue[0]
                    if head[0] == now and (
                        head[1] == 0 or (head[1] == 1 and head[2] < fseq[0])
                    ):
                        _w, _p, _s, event = _heappop(queue)
                        head = None
                    else:
                        fseq_pop()
                        event = fev_pop()
                else:
                    fseq_pop()
                    event = fev_pop()
            else:
                when, _p, _s, event = _heappop(queue)
                self._now = now = when
            callbacks = event.callbacks
            event.callbacks = None
            event._state = _PROCESSED
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                exc = event._value
                raise exc if isinstance(exc, BaseException) else (
                    SimulationError(repr(exc))
                )
            if (
                type(event) is Timeout
                and len(pool) < _POOL_MAX
                and _getrefcount(event) == 2
            ):
                callbacks.clear()
                event.callbacks = callbacks
                event._value = None
                pool.append(event)
            if len(queue) > cal_up:
                self._upgrade_queue()
                return False
        return True

    def _inline_event(self, stop: Event) -> bool:
        queue = self._queue
        fseq = self._fifo_seq
        fev = self._fifo_ev
        fseq_pop = fseq.popleft
        fev_pop = fev.popleft
        pool = self._pool
        cal_up = self._cal_up
        now = self._now
        while stop._state != _PROCESSED and (fseq or queue):
            if fseq:
                if queue:
                    head = queue[0]
                    if head[0] == now and (
                        head[1] == 0 or (head[1] == 1 and head[2] < fseq[0])
                    ):
                        _w, _p, _s, event = _heappop(queue)
                        head = None
                    else:
                        fseq_pop()
                        event = fev_pop()
                else:
                    fseq_pop()
                    event = fev_pop()
            else:
                when, _p, _s, event = _heappop(queue)
                self._now = now = when
            callbacks = event.callbacks
            event.callbacks = None
            event._state = _PROCESSED
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                exc = event._value
                raise exc if isinstance(exc, BaseException) else (
                    SimulationError(repr(exc))
                )
            if (
                type(event) is Timeout
                and len(pool) < _POOL_MAX
                and _getrefcount(event) == 2
            ):
                callbacks.clear()
                event.callbacks = callbacks
                event._value = None
                pool.append(event)
            if len(queue) > cal_up:
                self._upgrade_queue()
                return False
        return True

    def _drain_cal(self, stop: Event | None, horizon: float | None) -> bool:
        """Calendar-active fast path: inlined three-level pop + step body.

        Used for both the fixed ``queue="calendar"`` mode and the
        post-upgrade phase of auto mode (where it also watches for the
        downgrade threshold).  One loop serves all three ``until``
        variants -- the per-event cost of the two extra checks is noise
        next to the calendar pop itself.
        """
        queue = self._queue
        fseq = self._fifo_seq
        fev = self._fifo_ev
        fseq_pop = fseq.popleft
        fev_pop = fev.popleft
        pool = self._pool
        cal = self._cal
        cal_down = self._cal_down
        while stop is None or stop._state != _PROCESSED:
            best = (self._now, 1, fseq[0]) if fseq else None
            src = 0
            if queue:
                head = queue[0]
                if best is None or head < best:
                    best = head
                    src = 1
            front = cal.front
            if front is not None and (best is None or front < best):
                best = front
                src = 2
            if best is None:
                return True
            if horizon is not None and best[0] > horizon:
                return True
            if src == 0:
                fseq_pop()
                event = fev_pop()
            elif src == 1:
                when, _p, _s, event = _heappop(queue)
                self._now = when
            else:
                when, _p, _s, event = cal.pop()
                self._now = when
            # Release entry refs so the recycle guard sees the true count.
            best = head = front = None
            callbacks = event.callbacks
            event.callbacks = None
            event._state = _PROCESSED
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                exc = event._value
                raise exc if isinstance(exc, BaseException) else (
                    SimulationError(repr(exc))
                )
            if (
                type(event) is Timeout
                and len(pool) < _POOL_MAX
                and _getrefcount(event) == 2
            ):
                callbacks.clear()
                event.callbacks = callbacks
                event._value = None
                pool.append(event)
            if cal._len < cal_down:
                self._downgrade_queue()
                return False
        return True

    def _step_drain(self, stop: Event | None, horizon: float | None) -> bool:
        """Generic drain via :meth:`step` -- trace hook installed or
        ``step`` overridden.  Still performs auto-mode migrations."""
        step = self.step
        cal_up = self._cal_up
        cal_down = self._cal_down
        while True:
            if stop is not None and stop._state == _PROCESSED:
                return True
            if self._empty():
                return True
            if horizon is not None and self.peek() > horizon:
                return True
            step()
            cal = self._cal
            if cal is None:
                if len(self._queue) > cal_up:
                    self._upgrade_queue()
                    return False
            elif cal._len < cal_down:
                self._downgrade_queue()
                return False
