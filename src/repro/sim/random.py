"""Seeded random-variate streams for simulations.

Each simulated component draws from its own named stream so that adding a
component (or reordering draws in one) does not perturb the variates seen by
others -- a standard variance-reduction / reproducibility technique.  Streams
are derived from a root seed with ``numpy``'s ``SeedSequence.spawn``-style
keying, so a (root_seed, name) pair always yields the same stream.

Also provides the service-time distributions used by the microservice
handler cost models (exponential, lognormal parameterised by mean and
coefficient of variation, Pareto for heavy tails) and inter-arrival helpers
for Poisson workloads.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RandomStreams",
    "Distribution",
    "Constant",
    "Exponential",
    "LogNormal",
    "Mixture",
    "Pareto",
    "Uniform",
    "Hyperexponential",
]


class RandomStreams:
    """Factory for named, independent random generators.

    >>> streams = RandomStreams(seed=42)
    >>> rng = streams.stream("service:post")
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            key = zlib.crc32(name.encode("utf-8"))
            generator = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            )
            self._streams[name] = generator
        return generator

    def fork(self, salt: int) -> "RandomStreams":
        """A new independent stream factory (e.g. per experiment repeat)."""
        return RandomStreams(seed=self.seed * 1_000_003 + salt)


class Distribution:
    """A positive random variate source with a known mean.

    Subclasses implement :meth:`sample`.  ``mean`` is used by capacity
    planning code (e.g. deriving per-request CPU work).
    """

    mean: float

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def scaled(self, factor: float) -> "Distribution":
        """A distribution with the mean scaled by ``factor``.

        Used when a service's business logic changes (Section VII-G: the
        object-detect model swap scales its work distribution down).
        """
        raise NotImplementedError


@dataclass(frozen=True)
class Constant(Distribution):
    """Degenerate distribution; useful in tests."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"constant must be >= 0, got {self.value}")

    @property
    def mean(self) -> float:  # type: ignore[override]
        return self.value

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def scaled(self, factor: float) -> "Constant":
        return Constant(self.value * factor)


@dataclass(frozen=True)
class Exponential(Distribution):
    """Exponential distribution with the given mean."""

    mean: float

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError(f"mean must be > 0, got {self.mean}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean))

    def scaled(self, factor: float) -> "Exponential":
        return Exponential(self.mean * factor)


@dataclass(frozen=True)
class LogNormal(Distribution):
    """Lognormal parameterised by mean and coefficient of variation.

    The workhorse of the handler cost models: service times of text
    processing are low-mean/low-cv, ML inference is high-mean/moderate-cv,
    video transcoding very high mean.
    """

    mean: float
    cv: float = 0.5

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError(f"mean must be > 0, got {self.mean}")
        if self.cv <= 0:
            raise ValueError(f"cv must be > 0, got {self.cv}")

    def _params(self) -> tuple[float, float]:
        sigma2 = math.log(1.0 + self.cv**2)
        mu = math.log(self.mean) - sigma2 / 2.0
        return mu, math.sqrt(sigma2)

    def sample(self, rng: np.random.Generator) -> float:
        mu, sigma = self._params()
        return float(rng.lognormal(mu, sigma))

    def scaled(self, factor: float) -> "LogNormal":
        return LogNormal(self.mean * factor, self.cv)


@dataclass(frozen=True)
class Pareto(Distribution):
    """Lomax (shifted Pareto) with the given mean and shape ``alpha > 1``.

    Heavy-tailed; models the occasional very slow ML inference or large
    video input.
    """

    mean: float
    alpha: float = 2.5

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError(f"mean must be > 0, got {self.mean}")
        if self.alpha <= 1:
            raise ValueError(f"alpha must be > 1 for finite mean, got {self.alpha}")

    def sample(self, rng: np.random.Generator) -> float:
        scale = self.mean * (self.alpha - 1.0)
        return float(scale * rng.pareto(self.alpha))

    def scaled(self, factor: float) -> "Pareto":
        return Pareto(self.mean * factor, self.alpha)


@dataclass(frozen=True)
class Uniform(Distribution):
    """Uniform on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0 <= self.low <= self.high:
            raise ValueError(f"need 0 <= low <= high, got [{self.low}, {self.high}]")

    @property
    def mean(self) -> float:  # type: ignore[override]
        return (self.low + self.high) / 2.0

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def scaled(self, factor: float) -> "Uniform":
        return Uniform(self.low * factor, self.high * factor)


@dataclass(frozen=True)
class Hyperexponential(Distribution):
    """Two-phase hyperexponential: mixture of two exponentials.

    With probability ``p_slow`` the variate is drawn from an exponential
    with mean ``slow_mean``; otherwise from one with mean ``fast_mean``.
    Captures bimodal handlers (cache hit vs miss).
    """

    fast_mean: float
    slow_mean: float
    p_slow: float = 0.1

    def __post_init__(self) -> None:
        if self.fast_mean <= 0 or self.slow_mean <= 0:
            raise ValueError("means must be > 0")
        if not 0 <= self.p_slow <= 1:
            raise ValueError(f"p_slow must be in [0, 1], got {self.p_slow}")

    @property
    def mean(self) -> float:  # type: ignore[override]
        return (1.0 - self.p_slow) * self.fast_mean + self.p_slow * self.slow_mean

    def sample(self, rng: np.random.Generator) -> float:
        mean = self.slow_mean if rng.random() < self.p_slow else self.fast_mean
        return float(rng.exponential(mean))

    def scaled(self, factor: float) -> "Hyperexponential":
        return Hyperexponential(
            self.fast_mean * factor, self.slow_mean * factor, self.p_slow
        )


class Mixture(Distribution):
    """Weighted mixture of component distributions.

    Used by the backpressure profiler to synthesise a service's aggregate
    handler workload from its per-class handlers weighted by the request
    mix (§III: aggregate loads from different upstream services).
    """

    def __init__(self, components: list[tuple[float, Distribution]]) -> None:
        if not components:
            raise ValueError("mixture needs at least one component")
        total = sum(w for w, _ in components)
        if total <= 0 or any(w < 0 for w, _ in components):
            raise ValueError("mixture weights must be >= 0 and sum > 0")
        self._components = [(w / total, dist) for w, dist in components]

    @property
    def mean(self) -> float:  # type: ignore[override]
        return sum(w * dist.mean for w, dist in self._components)

    def sample(self, rng: np.random.Generator) -> float:
        u = rng.random()
        acc = 0.0
        for weight, dist in self._components:
            acc += weight
            if u <= acc:
                return dist.sample(rng)
        return self._components[-1][1].sample(rng)

    def scaled(self, factor: float) -> "Mixture":
        return Mixture([(w, d.scaled(factor)) for w, d in self._components])
