"""Shared resources for simulation processes.

Three primitives built on :mod:`repro.sim.engine`:

* :class:`Resource` -- a counted resource (e.g. a worker-thread pool) with
  priority-aware granting.  Processes ``yield resource.acquire()`` and later
  call ``release()``.
* :class:`Store` -- an unbounded-or-bounded FIFO buffer of items
  (e.g. a request queue).  ``put`` and ``get`` are events.
* :class:`PriorityStore` -- a store whose ``get`` returns the smallest item
  first (items are ordered, typically ``(priority, seq, payload)`` tuples);
  used for priority-aware message queues.

Waiters are served lowest-priority-value first, FIFO within a priority
level, matching the queueing disciplines of the modelled systems (the video
processing pipeline serves high-priority requests whenever any are
waiting).

Like the engine, these classes are on the per-event hot path of every
deployment run: the request/get/put event constructors are inlined (no
``super().__init__`` chain), the grant/put/get trigger path inlines
``Event.succeed`` (the events are created here, so the already-triggered
guard is statically impossible), and everything uses ``__slots__``.
Scheduling semantics are unchanged and pinned by the same-seed trace
regression.
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush
from typing import Any

from repro.sim.engine import Environment, Event, SimulationError

__all__ = ["Resource", "Store", "PriorityStore"]

_PENDING = 0
_TRIGGERED = 1


class _Request(Event):
    """Event representing a pending acquire; fires when granted."""

    __slots__ = ("resource", "priority", "granted", "withdrawn")

    def __init__(self, env: Environment, resource: "Resource", priority: int) -> None:
        # Inlined Event.__init__ -- one of these is created per acquire.
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._state = _PENDING
        self._defused = False
        self.resource = resource
        self.priority = priority
        self.granted = False
        self.withdrawn = False

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request (e.g. after an interrupt)."""
        if not self.granted:
            self.withdrawn = True


class Resource:
    """A counted resource granting slots by (priority, arrival order).

    ``capacity`` slots are available; an acquire beyond capacity queues the
    requesting process.  Lower ``priority`` values are granted first; equal
    priorities are FIFO.  The queue length (:attr:`queue_len`) and the
    number of slots in use (:attr:`in_use`) are exposed for instrumentation
    -- the microservice model uses them to report queue depths.
    """

    __slots__ = ("env", "_capacity", "_in_use", "_seq", "_waiters")

    def __init__(self, env: Environment, capacity: int) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self._capacity = int(capacity)
        self._in_use = 0
        self._seq = 0
        self._waiters: list[tuple[int, int, _Request]] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_len(self) -> int:
        """Number of acquire requests currently waiting."""
        return sum(1 for _, _, r in self._waiters if not r.withdrawn)

    def acquire(self, priority: int = 0) -> _Request:
        """Request one slot.  Returns an event that fires when granted."""
        request = _Request(self.env, self, priority)
        if self._in_use < self._capacity:
            self._in_use += 1
            request.granted = True
            # Inlined request.succeed(self): grants are the hot path.
            request._value = self
            request._state = _TRIGGERED
            env = self.env
            env._seq = seq = env._seq + 1
            env._fseq_app(seq)
            env._fev_app(request)
        else:
            self._seq += 1
            _heappush(self._waiters, (priority, self._seq, request))
        return request

    def _grant_next(self) -> bool:
        waiters = self._waiters
        while waiters:
            _, _, request = _heappop(waiters)
            if request.withdrawn:
                continue
            request.granted = True
            request._value = request.resource
            request._state = _TRIGGERED
            env = request.env
            env._seq = seq = env._seq + 1
            env._fseq_app(seq)
            env._fev_app(request)
            return True
        return False

    def release(self) -> None:
        """Return one slot, waking the best-priority waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        if not self._grant_next():
            self._in_use -= 1

    def resize(self, capacity: int) -> None:
        """Change capacity at runtime (used when CPU limits change).

        Growing wakes as many waiters as new slots allow.  Shrinking does not
        preempt holders; the excess drains as slots are released.
        """
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        while self._in_use < self._capacity:
            if not self._grant_next():
                break
            self._in_use += 1


class _StoreGet(Event):
    __slots__ = ()

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._state = _PENDING
        self._defused = False


class _StorePut(Event):
    __slots__ = ("item",)

    def __init__(self, env: Environment, item: Any) -> None:
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._state = _PENDING
        self._defused = False
        self.item = item


class Store:
    """FIFO buffer of items with blocking put/get.

    ``capacity`` bounds the buffer (``None`` = unbounded).  ``get`` on an
    empty store blocks the caller until an item arrives; ``put`` on a full
    store blocks until space frees up.
    """

    __slots__ = ("env", "capacity", "_items", "_getters", "_putters")

    def __init__(self, env: Environment, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: list[Any] = []
        self._getters: list[_StoreGet] = []
        self._putters: list[_StorePut] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> list[Any]:
        """Read-only view of buffered items (do not mutate)."""
        return self._items

    def _do_put(self, item: Any) -> None:
        self._items.append(item)

    def _do_get(self) -> Any:
        return self._items.pop(0)

    def put(self, item: Any) -> _StorePut:
        """Offer ``item``; the returned event fires when accepted."""
        event = _StorePut(self.env, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def get(self) -> _StoreGet:
        """Request an item; the returned event fires with the item."""
        event = _StoreGet(self.env)
        self._getters.append(event)
        self._dispatch()
        return event

    def cancel_get(self, event: _StoreGet) -> None:
        """Withdraw a pending get (no-op if it already fired)."""
        if event._state == _PENDING:
            try:
                self._getters.remove(event)
            except ValueError:
                pass

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._do_put(item)
        self._dispatch()
        return True

    def _dispatch(self) -> None:
        items = self._items
        getters = self._getters
        putters = self._putters
        capacity = self.capacity
        env = self.env
        fseq_app = env._fseq_app
        fev_app = env._fev_app
        progressed = True
        while progressed:
            progressed = False
            # Move pending puts into the buffer while space remains.
            while putters and (capacity is None or len(items) < capacity):
                put = putters.pop(0)
                self._do_put(put.item)
                # Inlined put.succeed() (events created here are always
                # still pending; _ok is True from construction).
                put._state = _TRIGGERED
                env._seq = seq = env._seq + 1
                fseq_app(seq)
                fev_app(put)
                progressed = True
            # Hand buffered items to waiting getters.
            while getters and items:
                get = getters.pop(0)
                get._value = self._do_get()
                get._state = _TRIGGERED
                env._seq = seq = env._seq + 1
                fseq_app(seq)
                fev_app(get)
                progressed = True


class PriorityStore(Store):
    """A :class:`Store` whose ``get`` returns the smallest item first.

    Items must be mutually comparable; use ``(priority, seq, payload)``
    tuples for stable ordering.  Models priority-aware message queues such
    as the video pipeline's high/low-priority streams.
    """

    __slots__ = ()

    def _do_put(self, item: Any) -> None:
        _heappush(self._items, item)

    def _do_get(self) -> Any:
        return _heappop(self._items)
