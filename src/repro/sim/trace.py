"""Engine-level event-trace hooks: recorders and run digests.

:class:`~repro.sim.engine.Environment` accepts a ``trace`` callback that
is invoked as ``trace(when, priority, seq, event)`` for every event the
scheduler processes, before its callbacks run.  This module provides the
two standard hooks built on it:

* :class:`EventTraceRecorder` -- records ``(when, priority, seq,
  event-type-name)`` tuples, the executable form of the engine's
  "same seed, byte-identical trace" promise (used by
  ``tests/sim/test_determinism.py``).
* :class:`RunDigest` -- streams the same tuples into a BLAKE2b checksum
  instead of storing them, so full-scale runs can assert reproducibility
  (or archive a fingerprint next to their ``results/`` artifacts) at
  O(1) memory.

Both hooks observe only what the scheduler already computed -- they never
touch simulation state, so a traced run produces exactly the timings an
untraced run would.

Typical experiment usage::

    digest = RunDigest()
    env = Environment(trace=digest)
    ...run...
    write_digest(digest, "results/fig09_model_accuracy.digest")
"""

from __future__ import annotations

import hashlib
import struct
from pathlib import Path

from repro.sim.engine import Event

__all__ = ["EventTraceRecorder", "RunDigest", "write_digest"]

_PACK = struct.Struct("<dqq").pack


class EventTraceRecorder:
    """Trace hook recording every scheduled event as a plain tuple.

    The recorded entries are ``(when, priority, seq, type(event).__name__)``
    -- everything that determines scheduling order plus the event's kind.
    Two runs of the same seeded simulation must produce equal traces;
    :meth:`as_bytes` gives the canonical byte form for comparison.
    """

    def __init__(self) -> None:
        self.entries: list[tuple[float, int, int, str]] = []
        self._append = self.entries.append

    def __call__(self, when: float, priority: int, seq: int, event: Event) -> None:
        self._append((when, priority, seq, type(event).__name__))

    def __len__(self) -> int:
        return len(self.entries)

    def as_bytes(self) -> bytes:
        """Canonical byte encoding of the trace (for equality asserts)."""
        return repr(self.entries).encode("utf-8")


class RunDigest:
    """Trace hook folding the event trace into a BLAKE2b checksum.

    Constant memory regardless of run length, so it stays cheap at
    ``REPRO_SCALE=full``.  The digest covers exactly what
    :class:`EventTraceRecorder` records: scheduling time, priority,
    sequence number, and event type name -- i.e. two runs have equal
    digests iff their event traces are identical.
    """

    def __init__(self) -> None:
        self._hash = hashlib.blake2b(digest_size=16)
        self.events = 0

    def __call__(self, when: float, priority: int, seq: int, event: Event) -> None:
        update = self._hash.update
        update(_PACK(when, priority, seq))
        update(type(event).__name__.encode("ascii"))
        self.events += 1

    def hexdigest(self) -> str:
        """Hex checksum of the trace so far (does not finalise the hook)."""
        return self._hash.copy().hexdigest()


def write_digest(digest: "RunDigest | str", path: str | Path) -> str:
    """Store a run digest next to a results artifact.

    Accepts either a :class:`RunDigest` or an already-computed hex string;
    writes ``<digest>\\n`` to ``path`` (conventionally the artifact path
    with a ``.digest`` suffix) and returns the hex string.  Comparing the
    stored file across machines or PRs answers "was this exactly the same
    simulation?" without re-running anything.
    """
    value = digest if isinstance(digest, str) else digest.hexdigest()
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(value + "\n", encoding="ascii")
    return value
