"""Engine-level event-trace hooks: recorders and run digests.

:class:`~repro.sim.engine.Environment` accepts a ``trace`` callback that
is invoked as ``trace(when, priority, seq, event)`` for every event the
scheduler processes, before its callbacks run.  This module provides the
two standard hooks built on it:

* :class:`EventTraceRecorder` -- records ``(when, priority, seq,
  event-type-name)`` tuples, the executable form of the engine's
  "same seed, byte-identical trace" promise (used by
  ``tests/sim/test_determinism.py``).
* :class:`RunDigest` -- streams the same tuples into a BLAKE2b checksum
  instead of storing them, so full-scale runs can assert reproducibility
  (or archive a fingerprint next to their ``results/`` artifacts) at
  O(1) memory.

Both hooks observe only what the scheduler already computed -- they never
touch simulation state, so a traced run produces exactly the timings an
untraced run would.

Both hooks are also on the per-event hot path of every traced run, so
they avoid per-event object churn: the recorder stores the three numeric
columns in flat ``array`` buffers (amortised append, no tuple per event)
and interns one name string per event *type*; the digest packs events
into a reusable ``bytearray`` chunk and folds it into the hash every
``_CHUNK_EVENTS`` events, with encoded type names cached per type.  The
byte stream each exposes (``as_bytes`` / the hashed stream) is identical
to the original tuple-per-event implementation, so recorded traces and
archived digests stay comparable across versions.

Typical experiment usage::

    digest = RunDigest()
    env = Environment(trace=digest)
    ...run...
    write_digest(digest, "results/fig09_model_accuracy.digest")
"""

from __future__ import annotations

import hashlib
import struct
from array import array
from pathlib import Path

from repro.sim.engine import Event

__all__ = ["EventTraceRecorder", "RunDigest", "write_digest"]

_PACK = struct.Struct("<dqq").pack

#: Events buffered per digest chunk before folding into the hash.  Each
#: event contributes 24 packed bytes plus a short type name, so a chunk
#: stays well under a page while cutting hash-update calls ~256x.
_CHUNK_EVENTS = 256


class EventTraceRecorder:
    """Trace hook recording every scheduled event.

    The recorded entries are ``(when, priority, seq, type(event).__name__)``
    -- everything that determines scheduling order plus the event's kind.
    Two runs of the same seeded simulation must produce equal traces;
    :meth:`as_bytes` gives the canonical byte form for comparison.

    Entries are stored column-wise (three numeric ``array`` buffers plus
    an interned-name list) rather than as one tuple per event; the
    :attr:`entries` property materialises the tuple view on demand for
    tests and ad-hoc inspection.
    """

    __slots__ = ("_when", "_priority", "_seq", "_names", "_interned")

    def __init__(self) -> None:
        self._when = array("d")
        self._priority = array("q")
        self._seq = array("q")
        self._names: list[str] = []
        # One entry per event *type* seen; maps the type object to its
        # __name__ so the hot path never re-reads the attribute.
        self._interned: dict[type, str] = {}

    def __call__(self, when: float, priority: int, seq: int, event: Event) -> None:
        self._when.append(when)
        self._priority.append(priority)
        self._seq.append(seq)
        cls = event.__class__
        interned = self._interned
        name = interned.get(cls)
        if name is None:
            name = interned[cls] = cls.__name__
        self._names.append(name)

    def __len__(self) -> int:
        return len(self._seq)

    @property
    def entries(self) -> list[tuple[float, int, int, str]]:
        """Tuple view ``[(when, priority, seq, type_name), ...]`` of the trace."""
        return list(zip(self._when, self._priority, self._seq, self._names))

    def as_bytes(self) -> bytes:
        """Canonical byte encoding of the trace (for equality asserts)."""
        return repr(self.entries).encode("utf-8")


class RunDigest:
    """Trace hook folding the event trace into a BLAKE2b checksum.

    Constant memory regardless of run length, so it stays cheap at
    ``REPRO_SCALE=full``.  The digest covers exactly what
    :class:`EventTraceRecorder` records: scheduling time, priority,
    sequence number, and event type name -- i.e. two runs have equal
    digests iff their event traces are identical.
    """

    __slots__ = ("_hash", "_buf", "_pending", "_name_bytes", "events")

    def __init__(self) -> None:
        self._hash = hashlib.blake2b(digest_size=16)
        self._buf = bytearray()
        self._pending = 0
        # Encoded type names, cached per event type (ascii encode once).
        self._name_bytes: dict[type, bytes] = {}
        self.events = 0

    def __call__(self, when: float, priority: int, seq: int, event: Event) -> None:
        cls = event.__class__
        names = self._name_bytes
        name = names.get(cls)
        if name is None:
            name = names[cls] = cls.__name__.encode("ascii")
        buf = self._buf
        buf += _PACK(when, priority, seq)
        buf += name
        self.events += 1
        pending = self._pending = self._pending + 1
        if pending >= _CHUNK_EVENTS:
            self._hash.update(buf)
            del buf[:]
            self._pending = 0

    def _flush(self) -> None:
        if self._pending:
            self._hash.update(self._buf)
            del self._buf[:]
            self._pending = 0

    def hexdigest(self) -> str:
        """Hex checksum of the trace so far (does not finalise the hook)."""
        self._flush()
        return self._hash.copy().hexdigest()


def write_digest(digest: "RunDigest | str", path: str | Path) -> str:
    """Store a run digest next to a results artifact.

    Accepts either a :class:`RunDigest` or an already-computed hex string;
    writes ``<digest>\\n`` to ``path`` (conventionally the artifact path
    with a ``.digest`` suffix) and returns the hex string.  Comparing the
    stored file across machines or PRs answers "was this exactly the same
    simulation?" without re-running anything.
    """
    value = digest if isinstance(digest, str) else digest.hexdigest()
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(value + "\n", encoding="ascii")
    return value
