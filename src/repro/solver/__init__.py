"""Exact solver for the §IV resource-allocation MIP (Gurobi substitute)."""

from repro.solver.branch_and_bound import solve, solve_exhaustive
from repro.solver.model import AllocationModel, ClassSla, ServiceOptions, Solution

__all__ = [
    "AllocationModel",
    "ClassSla",
    "ServiceOptions",
    "Solution",
    "solve",
    "solve_exhaustive",
]
