"""Exact branch-and-bound solver for the §IV allocation MIP.

The model's only bilinear coupling is between a service's LPR choice and
its per-class percentile choices, so the solver branches on LPR choices;
for any (partial) LPR assignment, the percentile subproblem decomposes per
request class into a small resource-constrained shortest-path problem:

    minimise   sum_i latency_i(beta_i)
    subject to sum_i residual(beta_i) <= residual budget,

solved exactly by dynamic programming over quantised residual units.

The search keeps, per class, an incrementally-maintained *prefix* DP over
the already-assigned services and a precomputed optimistic *suffix* DP
over the not-yet-assigned ones (column-minimum rows).  Their convolution
is an admissible lower bound on the class's achievable latency sum, so
pruning never cuts the optimum; leaves are exact.  The objective bound is
the assigned resources plus each unassigned service's cheapest option.

This replaces Gurobi for MIP 1 while staying exact; the test suite
cross-checks it against exhaustive enumeration on small instances.
"""

from __future__ import annotations

import itertools
import math

from repro.errors import InfeasibleModelError, SolverError
from repro.solver.model import AllocationModel, Solution

__all__ = ["solve", "solve_exhaustive"]

#: Residuals are quantised to this many units per percentile point.
#: A grid of {50, 90, 95, 99, 99.5, 99.9} gives residuals that are exact
#: multiples of 0.1, i.e. of one unit at scale 10.
RESIDUAL_SCALE = 10

_INF = math.inf


def _residual_units(model: AllocationModel) -> list[int]:
    units = []
    for residual in model.residuals:
        scaled = residual * RESIDUAL_SCALE
        if abs(scaled - round(scaled)) > 1e-6:
            raise SolverError(
                f"percentile residual {residual} is not a multiple of "
                f"1/{RESIDUAL_SCALE}; adjust the percentile grid"
            )
        units.append(int(round(scaled)))
    return units


def _class_budget_units(percentile: float) -> int:
    scaled = (100.0 - percentile) * RESIDUAL_SCALE
    return int(math.floor(scaled + 1e-9))


def _combine(row: list[float], dp: list[float], units: list[int]) -> list[float]:
    """Front-extend an "at most u units" DP with one service's row.

    ``new[u] = min over beta with r_beta <= u of row[beta] + dp[u - r_beta]``.
    Both inputs are non-increasing in u, so the result is too.
    """
    budget = len(dp) - 1
    new = [_INF] * (budget + 1)
    for beta, r in enumerate(units):
        if r > budget:
            continue
        lat = row[beta]
        if lat == _INF:
            continue
        for u in range(r, budget + 1):
            candidate = lat + dp[u - r]
            if candidate < new[u]:
                new[u] = candidate
    return new


def _min_split(prefix: list[float], suffix: list[float]) -> float:
    """min over u of prefix[u] + suffix[budget - u] (same budget length)."""
    budget = len(prefix) - 1
    best = _INF
    for u in range(budget + 1):
        p = prefix[u]
        if p == _INF:
            continue
        s = suffix[budget - u]
        if s == _INF:
            continue
        total = p + s
        if total < best:
            best = total
    return best


def _dp_with_choices(
    rows: list[list[float]], units: list[int], budget: int
) -> tuple[float, list[int] | None]:
    """Exact DP over fixed rows, with argmin backtracking."""
    h = len(units)
    traces: list[list[int]] = []
    dp = [0.0] * (budget + 1)  # zero services cost nothing at any budget
    for row in rows:
        new = [_INF] * (budget + 1)
        trace = [-1] * (budget + 1)
        for beta in range(h):
            r = units[beta]
            if r > budget:
                continue
            lat = row[beta]
            for u in range(r, budget + 1):
                candidate = lat + dp[u - r]
                if candidate < new[u]:
                    new[u] = candidate
                    trace[u] = beta
        dp = new
        traces.append(trace)
    total = dp[budget]
    if total == _INF:
        return _INF, None
    choices: list[int] = []
    u = budget
    for k in range(len(rows) - 1, -1, -1):
        # Find the tightest u' <= u achieving dp value (trace stored at the
        # exact split); walk down while no beta is recorded.
        trace = traces[k]
        while u > 0 and trace[u] == -1:
            u -= 1
        beta = trace[u]
        if beta < 0:  # pragma: no cover - defensive
            return _INF, None
        choices.append(beta)
        u -= units[beta]
    choices.reverse()
    return total, choices


class _ClassState:
    """Per-class search state: service order, suffix DPs, prefix stack."""

    def __init__(
        self,
        name: str,
        budget: int,
        target: float,
        service_indices: list[int],
        matrices: list[list[list[float]]],
        optimistic: list[list[float]],
        units: list[int],
    ) -> None:
        self.name = name
        self.budget = budget
        self.target = target
        self.service_indices = service_indices
        #: branch index -> position within this class's service list.
        self.position = {k: i for i, k in enumerate(service_indices)}
        self.matrices = matrices
        self.units = units
        # suffix[i][u]: optimistic min latency over services i.. using <= u.
        n = len(service_indices)
        self.suffix: list[list[float]] = [None] * (n + 1)  # type: ignore[list-item]
        self.suffix[n] = [0.0] * (budget + 1)
        for i in range(n - 1, -1, -1):
            self.suffix[i] = _combine(optimistic[i], self.suffix[i + 1], units)
        # prefix stack: prefix[i] = DP over the first i services (assigned).
        self.prefix_stack: list[list[float]] = [[0.0] * (budget + 1)]

    def root_feasible(self) -> bool:
        return self.suffix[0][self.budget] <= self.target + 1e-12

    def push(self, branch_index: int, option: int) -> bool:
        """Extend the prefix with the assigned row; True if still feasible."""
        i = self.position[branch_index]
        row = self.matrices[i][option]
        new_prefix = _combine(row, self.prefix_stack[-1], self.units)
        bound = _min_split(new_prefix, self.suffix[i + 1])
        self.prefix_stack.append(new_prefix)
        return bound <= self.target + 1e-12

    def pop(self) -> None:
        self.prefix_stack.pop()


def solve(model: AllocationModel, node_limit: int = 200_000) -> Solution:
    """Solve MIP 1; raises :class:`InfeasibleModelError` when infeasible.

    The search is exact when it terminates within ``node_limit``
    branch-and-bound nodes (always the case for exploration-sized models);
    on adversarial tie-heavy instances it returns the best incumbent found
    (``Solution.optimal`` is False then) -- the same anytime behaviour a
    time-limited Gurobi run has.
    """
    residual_units = _residual_units(model)
    min_units = min(residual_units)
    # Branch most-constrained services first: those contributing the most
    # unavoidable latency fail fastest, keeping the search tree small.
    constraint_weight = []
    for s in model.services:
        weight = sum(float(m.min()) for m in s.latency.values())
        constraint_weight.append(weight)
    order = sorted(
        range(len(model.services)),
        key=lambda k: -constraint_weight[k],
    )
    services = [model.services[k] for k in order]
    budgets = {sla.name: _class_budget_units(sla.percentile) for sla in model.slas}

    # Structural infeasibility: path longer than the residual budget.
    binding = []
    for sla in model.slas:
        on_path = model.services_for(sla.name)
        need = len(on_path) * min_units
        if need > budgets[sla.name]:
            binding.append(
                f"class {sla.name!r}: {len(on_path)} services need {need} "
                f"residual units, budget is {budgets[sla.name]}"
            )
    if binding:
        raise InfeasibleModelError(
            "residual budgets cannot cover the service paths", binding
        )

    index_of = {s.name: k for k, s in enumerate(services)}
    class_states: list[_ClassState] = []
    for sla in model.slas:
        on_path = model.services_for(sla.name)
        indices = sorted(index_of[s.name] for s in on_path)
        matrices = []
        optimistic = []
        for k in indices:
            matrix = services[k].latency[sla.name]
            matrices.append([list(map(float, row)) for row in matrix])
            optimistic.append(list(map(float, matrix.min(axis=0))))
        class_states.append(
            _ClassState(
                name=sla.name,
                budget=budgets[sla.name],
                target=sla.target_s,
                service_indices=indices,
                matrices=matrices,
                optimistic=optimistic,
                units=residual_units,
            )
        )
    #: branch index -> class states that advance at that index.
    classes_at: list[list[_ClassState]] = [[] for _ in services]
    for state in class_states:
        for k in state.service_indices:
            classes_at[k].append(state)

    failing = [s.name for s in class_states if not s.root_feasible()]
    if failing:
        raise InfeasibleModelError(
            "SLA targets unreachable",
            [f"class {name!r}: optimistic bound exceeds target" for name in failing],
        )

    option_order = [
        sorted(range(s.num_options), key=lambda a: s.resources[a])
        for s in services
    ]
    min_resource = [min(s.resources) for s in services]
    suffix_min_resource = [0.0] * (len(services) + 1)
    for k in range(len(services) - 1, -1, -1):
        suffix_min_resource[k] = suffix_min_resource[k + 1] + min_resource[k]

    best_objective = _INF
    best_assignment: list[int] | None = None
    assignment: list[int] = [0] * len(services)
    nodes = 0
    truncated = False

    def descend(k: int, spent: float) -> None:
        nonlocal best_objective, best_assignment, nodes, truncated
        if truncated:
            return
        if k == len(services):
            if spent < best_objective:
                best_objective = spent
                best_assignment = list(assignment)
            return
        service = services[k]
        for option in option_order[k]:
            cost = service.resources[option]
            if spent + cost + suffix_min_resource[k + 1] >= best_objective - 1e-12:
                break  # cost-ordered: nothing further improves
            nodes += 1
            if nodes > node_limit and best_assignment is not None:
                truncated = True
                return
            feasible = True
            pushed = 0
            for state in classes_at[k]:
                pushed += 1
                if not state.push(k, option):
                    feasible = False
                    break
            if feasible:
                assignment[k] = option
                descend(k + 1, spent + cost)
            for state in classes_at[k][:pushed]:
                state.pop()
            if truncated:
                return

    descend(0, 0.0)

    if best_assignment is None:
        raise InfeasibleModelError(
            "no LPR assignment satisfies all SLA constraints",
            [f"explored {nodes} nodes"],
        )

    # Recover percentile choices and exact bounds at the optimum.
    lpr_choice = {s.name: best_assignment[k] for k, s in enumerate(services)}
    percentile_choice: dict[tuple[str, str], int] = {}
    latency_bound: dict[str, float] = {}
    for state in class_states:
        rows = [
            state.matrices[i][best_assignment[k]]
            for i, k in enumerate(state.service_indices)
        ]
        total, choices = _dp_with_choices(rows, residual_units, state.budget)
        assert choices is not None  # proven feasible during search
        latency_bound[state.name] = total
        for i, k in enumerate(state.service_indices):
            percentile_choice[(services[k].name, state.name)] = choices[i]
    return Solution(
        lpr_choice=lpr_choice,
        percentile_choice=percentile_choice,
        objective=float(best_objective),
        latency_bound=latency_bound,
        nodes_explored=nodes,
        optimal=not truncated,
    )


def solve_exhaustive(model: AllocationModel) -> Solution:
    """Reference solver: enumerate every LPR combination.

    Exponential; only for cross-checking :func:`solve` on small instances.
    """
    residual_units = _residual_units(model)
    services = list(model.services)
    budgets = {sla.name: _class_budget_units(sla.percentile) for sla in model.slas}
    targets = {sla.name: sla.target_s for sla in model.slas}
    per_class = {
        sla.name: [s for s in services if sla.name in s.latency]
        for sla in model.slas
    }

    best: Solution | None = None
    combos = itertools.product(*[range(s.num_options) for s in services])
    for combo in combos:
        objective = sum(s.resources[a] for s, a in zip(services, combo))
        if best is not None and objective >= best.objective - 1e-12:
            continue
        lpr_choice = {s.name: a for s, a in zip(services, combo)}
        percentile_choice: dict[tuple[str, str], int] = {}
        latency_bound: dict[str, float] = {}
        feasible = True
        for sla in model.slas:
            rows = [
                [float(v) for v in svc.latency[sla.name][lpr_choice[svc.name]]]
                for svc in per_class[sla.name]
            ]
            total, choices = _dp_with_choices(
                rows, residual_units, budgets[sla.name]
            )
            if choices is None or total > targets[sla.name] + 1e-12:
                feasible = False
                break
            latency_bound[sla.name] = total
            for svc, beta in zip(per_class[sla.name], choices):
                percentile_choice[(svc.name, sla.name)] = beta
        if feasible:
            best = Solution(
                lpr_choice=lpr_choice,
                percentile_choice=percentile_choice,
                objective=objective,
                latency_bound=latency_bound,
            )
    if best is None:
        raise InfeasibleModelError("no feasible LPR assignment (exhaustive)")
    return best
