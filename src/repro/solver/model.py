"""The resource-allocation MIP of §IV (MIP 1), as a data model.

Decision structure (Table I of the paper):

* per service *i*: a one-hot LPR vector ``delta_i`` choosing one of the
  service's profiled load-per-replica thresholds;
* per (service *i*, request class *j*): a one-hot percentile vector
  ``gamma_i^j`` choosing which percentile of service *i*'s latency
  contributes to class *j*'s end-to-end bound.

Objective: minimise total resource consumption ``sum_i delta_i . R_i``.

Constraints, per request class *j* with SLA "the ``x_j``-th percentile must
be below ``T_j``":

1. ``sum_i delta_i D_i^j gamma_i^j <= T_j`` -- the summed per-service
   percentiles bound the end-to-end latency;
2. ``sum_i (100 - P gamma_i^j) <= 100 - x_j`` -- Theorem 1's residual
   budget, making (1) a valid upper bound;
3. all decision vectors are one-hot.

The latency term is bilinear in ``delta`` and ``gamma``; the solver in
:mod:`repro.solver.branch_and_bound` branches on the LPR choices, under
which the percentile subproblem becomes a small exact DP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import SolverError

__all__ = ["ServiceOptions", "ClassSla", "AllocationModel", "Solution"]


@dataclass
class ServiceOptions:
    """Profiled options for one service.

    ``resources[a]`` is the resource consumption (CPUs) if LPR option ``a``
    is chosen as the scaling threshold, under the current load (Eq. 3).
    ``latency[j]`` is the ``m x h`` matrix ``D_i^j``: row ``a`` holds class
    ``j``'s latency percentiles (on the model's percentile grid) when the
    service runs at LPR option ``a``.
    """

    name: str
    resources: Sequence[float]
    latency: Mapping[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.resources = [float(r) for r in self.resources]
        if not self.resources:
            raise SolverError(f"service {self.name!r} has no LPR options")
        if any(r < 0 for r in self.resources):
            raise SolverError(f"service {self.name!r} has negative resources")
        self.latency = {j: np.asarray(m, dtype=float) for j, m in self.latency.items()}
        for j, matrix in self.latency.items():
            if matrix.ndim != 2 or matrix.shape[0] != len(self.resources):
                raise SolverError(
                    f"service {self.name!r}, class {j!r}: latency matrix "
                    f"shape {matrix.shape} does not match "
                    f"{len(self.resources)} LPR options"
                )
            if np.any(matrix < 0):
                raise SolverError(
                    f"service {self.name!r}, class {j!r}: negative latencies"
                )

    @property
    def num_options(self) -> int:
        return len(self.resources)

    def classes(self) -> list[str]:
        return list(self.latency)


@dataclass(frozen=True)
class ClassSla:
    """SLA constraint for one request class: p(``percentile``) <= target."""

    name: str
    percentile: float
    target_s: float

    def __post_init__(self) -> None:
        if not 0 < self.percentile < 100:
            raise SolverError(
                f"class {self.name!r}: percentile must be in (0, 100), "
                f"got {self.percentile}"
            )
        if self.target_s <= 0:
            raise SolverError(f"class {self.name!r}: target must be > 0")

    @property
    def residual_budget(self) -> float:
        """``100 - x_j``: the total percentile residual the class may spend."""
        return 100.0 - self.percentile


@dataclass
class AllocationModel:
    """A complete MIP 1 instance."""

    services: Sequence[ServiceOptions]
    slas: Sequence[ClassSla]
    #: The shared percentile grid ``P = [p_1 .. p_h]`` (ascending).
    percentile_grid: Sequence[float]

    def __post_init__(self) -> None:
        self.services = list(self.services)
        self.slas = list(self.slas)
        self.percentile_grid = [float(p) for p in self.percentile_grid]
        if not self.services:
            raise SolverError("model has no services")
        if not self.slas:
            raise SolverError("model has no SLA constraints")
        if not self.percentile_grid:
            raise SolverError("model has an empty percentile grid")
        if sorted(self.percentile_grid) != self.percentile_grid:
            raise SolverError("percentile grid must be ascending")
        if not all(0 < p < 100 for p in self.percentile_grid):
            raise SolverError("percentile grid values must be in (0, 100)")
        names = [s.name for s in self.services]
        if len(set(names)) != len(names):
            raise SolverError(f"duplicate service names: {names}")
        class_names = [c.name for c in self.slas]
        if len(set(class_names)) != len(class_names):
            raise SolverError(f"duplicate class names: {class_names}")
        h = len(self.percentile_grid)
        known = set(class_names)
        for service in self.services:
            for j, matrix in service.latency.items():
                if j not in known:
                    raise SolverError(
                        f"service {service.name!r} profiles unknown class {j!r}"
                    )
                if matrix.shape[1] != h:
                    raise SolverError(
                        f"service {service.name!r}, class {j!r}: matrix has "
                        f"{matrix.shape[1]} percentile columns, grid has {h}"
                    )
        for sla in self.slas:
            if not self.services_for(sla.name):
                raise SolverError(
                    f"class {sla.name!r} passes through no profiled service"
                )

    def services_for(self, class_name: str) -> list[ServiceOptions]:
        """Services on class ``class_name``'s path (those that profiled it)."""
        return [s for s in self.services if class_name in s.latency]

    @property
    def residuals(self) -> list[float]:
        """``100 - p`` for each grid percentile (descending)."""
        return [100.0 - p for p in self.percentile_grid]


@dataclass
class Solution:
    """An optimal assignment for an :class:`AllocationModel`."""

    #: service name -> chosen LPR option index (``delta_i``).
    lpr_choice: dict[str, int]
    #: (service, class) -> chosen percentile index (``gamma_i^j``).
    percentile_choice: dict[tuple[str, str], int]
    #: Total resource consumption (the objective value).
    objective: float
    #: class -> the summed per-service latency bound (LHS of constraint 1).
    latency_bound: dict[str, float]
    #: Number of branch-and-bound nodes explored (diagnostics).
    nodes_explored: int = 0
    #: False when the search hit its node limit and returned the best
    #: incumbent instead of a proven optimum (anytime behaviour).
    optimal: bool = True
