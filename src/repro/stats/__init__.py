"""Statistical utilities: Welch's t-test, empirical distributions."""

from repro.stats.distributions import (
    DEFAULT_PERCENTILE_GRID,
    EmpiricalDistribution,
    percentile,
)
from repro.stats.histogram import FixedHistogram
from repro.stats.queueing import (
    erlang_c,
    mm1_response_percentile,
    mmc_mean_response,
    mmc_mean_wait,
    mmc_utilization,
    servers_for_target_wait,
)
from repro.stats.ttest import TTestResult, mean_exceeds, means_differ, welch_t_test

__all__ = [
    "DEFAULT_PERCENTILE_GRID",
    "EmpiricalDistribution",
    "FixedHistogram",
    "TTestResult",
    "mean_exceeds",
    "means_differ",
    "percentile",
    "welch_t_test",
    "erlang_c",
    "mm1_response_percentile",
    "mmc_mean_response",
    "mmc_mean_wait",
    "mmc_utilization",
    "servers_for_target_wait",
]
