"""Empirical latency distributions and percentile utilities.

Ursa's performance model operates on *latency distributions*: per-service
latency percentiles recorded at each profiled load-per-replica threshold
(the ``D_i`` matrices of §IV).  This module provides the empirical
distribution type those matrices are built from, with the percentile
semantics the paper uses (the x-th percentile latency ``t(x)``).
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

__all__ = [
    "EmpiricalDistribution",
    "percentile",
    "DEFAULT_PERCENTILE_GRID",
]

#: Percentile grid used when discretising latency distributions for the MIP
#: (the ``P = [p_1 .. p_h]`` vector of §IV).  Dense near the tail because
#: most SLAs bind at high percentiles, but with mid-grid points (75, 85):
#: a *median* end-to-end SLA over an n-stage pipeline spends its residual
#: budget in ~(50/n)-point chunks, which only mid percentiles can provide.
DEFAULT_PERCENTILE_GRID: tuple[float, ...] = (
    50.0,
    75.0,
    85.0,
    90.0,
    95.0,
    99.0,
    99.5,
    99.9,
)


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of an ascending-sorted sequence.

    Uses the nearest-rank-with-interpolation definition (linear between
    closest ranks), matching ``numpy.percentile``'s default.  ``q`` is in
    ``[0, 100]``.
    """
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    n = len(sorted_values)
    if n == 1:
        return float(sorted_values[0])
    rank = (q / 100.0) * (n - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return float(sorted_values[lo])
    lower = float(sorted_values[lo])
    upper = float(sorted_values[hi])
    if lower == upper:
        # Skip the lerp between equal ranks: for subnormal values the
        # weighted terms underflow to 0.0, dropping the result below min.
        return lower
    frac = rank - lo
    return float(lower * (1.0 - frac) + upper * frac)


@dataclass
class EmpiricalDistribution:
    """A sample-based latency distribution.

    Stores raw observations (sorted lazily) and answers percentile queries
    with the paper's ``t(x)`` semantics.  Distributions are mergeable so
    that per-window distributions can be aggregated over an experiment.
    """

    _values: list[float] = field(default_factory=list)
    _sorted: bool = True

    @classmethod
    def from_samples(cls, samples: Iterable[float]) -> "EmpiricalDistribution":
        dist = cls()
        for sample in samples:
            dist.add(sample)
        return dist

    def add(self, value: float) -> None:
        """Record one observation."""
        if value < 0:
            raise ValueError(f"latency observations must be >= 0, got {value}")
        if self._sorted and self._values and value < self._values[-1]:
            self._sorted = False
        self._values.append(float(value))

    def merge(self, other: "EmpiricalDistribution") -> "EmpiricalDistribution":
        """A new distribution pooling both sample sets."""
        merged = EmpiricalDistribution()
        merged._values = sorted(self._values + other._values)
        return merged

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._values.sort()
            self._sorted = True

    def __len__(self) -> int:
        return len(self._values)

    def __bool__(self) -> bool:
        return bool(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            raise ValueError("mean of empty distribution")
        return sum(self._values) / len(self._values)

    @property
    def max(self) -> float:
        if not self._values:
            raise ValueError("max of empty distribution")
        self._ensure_sorted()
        return self._values[-1]

    @property
    def min(self) -> float:
        if not self._values:
            raise ValueError("min of empty distribution")
        self._ensure_sorted()
        return self._values[0]

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile latency ``t(q)``."""
        self._ensure_sorted()
        return percentile(self._values, q)

    def percentiles(self, grid: Sequence[float]) -> list[float]:
        """Vector of percentiles on ``grid`` (a row of a ``D_i`` matrix)."""
        self._ensure_sorted()
        return [percentile(self._values, q) for q in grid]

    def fraction_above(self, threshold: float) -> float:
        """Fraction of observations strictly above ``threshold``.

        This is the SLA violation rate when ``threshold`` is the SLA target
        and the distribution holds end-to-end request latencies.
        """
        if not self._values:
            raise ValueError("fraction_above of empty distribution")
        self._ensure_sorted()
        idx = bisect.bisect_right(self._values, threshold)
        return (len(self._values) - idx) / len(self._values)

    def cdf(self, value: float) -> float:
        """Empirical CDF at ``value``."""
        if not self._values:
            raise ValueError("cdf of empty distribution")
        self._ensure_sorted()
        return bisect.bisect_right(self._values, value) / len(self._values)

    def samples(self) -> list[float]:
        """A sorted copy of the observations."""
        self._ensure_sorted()
        return list(self._values)

    def __repr__(self) -> str:
        if not self._values:
            return "EmpiricalDistribution(empty)"
        return (
            f"EmpiricalDistribution(n={self.count}, mean={self.mean:.3g}, "
            f"p99={self.percentile(99):.3g})"
        )
