"""Fixed-size log-spaced histograms with exact quantile-error bounds.

:class:`~repro.stats.distributions.EmpiricalDistribution` keeps every
observation; pickling one across a process boundary ships the full
sample list, which at ``REPRO_SCALE=full`` means megabytes per request
class (see docs/performance.md).  :class:`FixedHistogram` is the
summarised form the experiment layer ships instead: a *fixed*,
deterministic binning -- ``bins`` log-spaced buckets over
``[min_value, max_value)`` plus underflow/overflow -- so any two
histograms built with the same parameters are mergeable, byte-identical
for identical inputs, and O(bins) in memory no matter how many samples
they absorb.

Error bounds (documented in docs/results_provenance.md):

* **Quantiles.**  A value recorded in bucket ``i`` lies in
  ``[lo_i, lo_i * g)`` where ``g = (max_value / min_value)**(1/bins)``
  is the bucket growth factor.  Quantile queries interpolate inside the
  bucket, so the returned estimate differs from the true sample quantile
  by at most one bucket width: a *relative* error of at most ``g - 1``
  (:attr:`FixedHistogram.relative_error_bound`, ~0.45 % at the
  defaults).  Values in the underflow bucket are bounded by
  ``min_value`` absolutely; overflow estimates are clamped to the exact
  observed maximum, which is tracked separately.
* **Tail fractions.**  :meth:`FixedHistogram.fraction_above`
  interpolates the threshold's bucket linearly, so the absolute error
  is at most the mass of that single bucket -- for SLA violation rates
  this is the fraction of requests whose latency falls within
  ``g - 1`` (~0.45 %) of the threshold itself.

The exact count, sum, minimum and maximum are tracked alongside the
buckets, so ``count``/``mean``/``min``/``max`` are error-free.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

__all__ = [
    "DEFAULT_BINS",
    "DEFAULT_MAX_VALUE",
    "DEFAULT_MIN_VALUE",
    "FixedHistogram",
]

#: Default bucket range: 10 microseconds to 1000 seconds covers every
#: latency the simulation produces (handler work is milliseconds; a
#: full-scale run is 2000 simulated seconds, so no single request can
#: wait longer than the run).
DEFAULT_MIN_VALUE = 1e-5
DEFAULT_MAX_VALUE = 1e3
#: 4096 log-spaced buckets over 8 decades: growth factor
#: ``(1e8)**(1/4096)`` ~ 1.0045, i.e. quantile estimates within 0.45 %.
DEFAULT_BINS = 4096


class FixedHistogram:
    """Deterministic log-spaced histogram over ``[min_value, max_value)``.

    Bucket ``i`` (``0 <= i < bins``) covers
    ``[min_value * g**i, min_value * g**(i+1))`` with
    ``g = (max_value / min_value)**(1/bins)``.  Values below
    ``min_value`` land in the underflow bucket (index ``-1``), values at
    or above ``max_value`` in the overflow bucket (index ``bins``).
    Buckets are stored sparsely, so pickles scale with the number of
    *occupied* buckets (bounded by ``bins + 2``), not the sample count.
    """

    __slots__ = (
        "min_value",
        "max_value",
        "bins",
        "_log_min",
        "_log_growth",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(
        self,
        min_value: float = DEFAULT_MIN_VALUE,
        max_value: float = DEFAULT_MAX_VALUE,
        bins: int = DEFAULT_BINS,
    ) -> None:
        if min_value <= 0:
            raise ValueError(f"min_value must be > 0, got {min_value}")
        if max_value <= min_value:
            raise ValueError(
                f"max_value must be > min_value, got {max_value} <= {min_value}"
            )
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        self.min_value = float(min_value)
        self.max_value = float(max_value)
        self.bins = int(bins)
        self._log_min = math.log(self.min_value)
        self._log_growth = (
            math.log(self.max_value) - self._log_min
        ) / self.bins
        self._counts: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = 0.0

    # -- pickling (``__slots__`` classes need explicit state) -----------
    def __getstate__(self) -> tuple[object, ...]:
        return (
            self.min_value,
            self.max_value,
            self.bins,
            self._counts,
            self._count,
            self._sum,
            self._min,
            self._max,
        )

    def __setstate__(self, state: tuple[object, ...]) -> None:
        min_value, max_value, bins, counts, count, total, lo, hi = state
        self.__init__(min_value, max_value, bins)  # type: ignore[arg-type]
        self._counts = dict(counts)  # type: ignore[arg-type]
        self._count = int(count)  # type: ignore[arg-type]
        self._sum = float(total)  # type: ignore[arg-type]
        self._min = float(lo)  # type: ignore[arg-type]
        self._max = float(hi)  # type: ignore[arg-type]

    # -- construction ----------------------------------------------------
    @classmethod
    def from_samples(
        cls,
        samples: Iterable[float],
        min_value: float = DEFAULT_MIN_VALUE,
        max_value: float = DEFAULT_MAX_VALUE,
        bins: int = DEFAULT_BINS,
    ) -> "FixedHistogram":
        hist = cls(min_value=min_value, max_value=max_value, bins=bins)
        for sample in samples:
            hist.record(sample)
        return hist

    @property
    def growth(self) -> float:
        """Per-bucket growth factor ``g`` of the log-spaced edges."""
        return math.exp(self._log_growth)

    @property
    def relative_error_bound(self) -> float:
        """Worst-case relative quantile error, ``g - 1``."""
        return self.growth - 1.0

    def _bucket(self, value: float) -> int:
        if value < self.min_value:
            return -1
        if value >= self.max_value:
            return self.bins
        index = int((math.log(value) - self._log_min) / self._log_growth)
        # Float rounding at an exact edge can land one bucket high/low;
        # clamp into the in-range band (the edges themselves are derived
        # from the same logs, so the error is at most one bucket anyway).
        return min(max(index, 0), self.bins - 1)

    def _edges(self, index: int) -> tuple[float, float]:
        """(inclusive lower, exclusive upper) edge of an in-range bucket."""
        lo = math.exp(self._log_min + index * self._log_growth)
        hi = math.exp(self._log_min + (index + 1) * self._log_growth)
        return lo, hi

    def record(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value``."""
        if value < 0:
            raise ValueError(f"observations must be >= 0, got {value}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        index = self._bucket(value)
        self._counts[index] = self._counts.get(index, 0) + count
        self._count += count
        self._sum += value * count
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def add(self, value: float, count: int = 1) -> None:
        """Alias of :meth:`record`.

        Duck-compatible with
        :meth:`repro.stats.distributions.EmpiricalDistribution.add`, so a
        histogram can stand in wherever a distribution is accumulated
        one observation at a time (e.g. a hub's ``latency_store="fixed"``).
        """
        self.record(value, count)

    def merge(self, other: "FixedHistogram") -> "FixedHistogram":
        """A new histogram pooling both (requires identical bucketing)."""
        if (self.min_value, self.max_value, self.bins) != (
            other.min_value,
            other.max_value,
            other.bins,
        ):
            raise ValueError("cannot merge histograms with different bucketing")
        merged = FixedHistogram(self.min_value, self.max_value, self.bins)
        for source in (self, other):
            for index, count in source._counts.items():
                merged._counts[index] = merged._counts.get(index, 0) + count
        merged._count = self._count + other._count
        merged._sum = self._sum + other._sum
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged

    # -- exact aggregates -------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("mean of empty histogram")
        return self._sum / self._count

    @property
    def min(self) -> float:
        if self._count == 0:
            raise ValueError("min of empty histogram")
        return self._min

    @property
    def max(self) -> float:
        if self._count == 0:
            raise ValueError("max of empty histogram")
        return self._max

    # -- bounded-error queries -------------------------------------------
    def _bucket_span(self, index: int) -> tuple[float, float]:
        """Value range a bucket's samples are known to lie in."""
        if index == -1:
            return min(self._min, self.min_value), self.min_value
        if index == self.bins:
            return self.max_value, max(self._max, self.max_value)
        return self._edges(index)

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile, within :attr:`relative_error_bound`.

        Finds the bucket holding the ``q``-th ranked observation and
        interpolates linearly inside it; the result is clamped to the
        exact observed ``[min, max]``.
        """
        if self._count == 0:
            raise ValueError("percentile of empty histogram")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        target = (q / 100.0) * self._count
        cumulative = 0
        for index in sorted(self._counts):
            in_bucket = self._counts[index]
            if cumulative + in_bucket >= target:
                lo, hi = self._bucket_span(index)
                frac = (target - cumulative) / in_bucket if in_bucket else 0.0
                estimate = lo + (hi - lo) * frac
                return float(min(max(estimate, self._min), self._max))
            cumulative += in_bucket
        return self._max

    def percentiles(self, grid: Sequence[float]) -> list[float]:
        return [self.percentile(q) for q in grid]

    def fraction_above(self, threshold: float) -> float:
        """Fraction of observations above ``threshold``.

        Exact for thresholds on bucket edges; inside a bucket the
        bucket's mass is split by linear interpolation, so the absolute
        error is at most that single bucket's share of the total count.
        """
        if self._count == 0:
            raise ValueError("fraction_above of empty histogram")
        boundary = self._bucket(threshold)
        above = 0.0
        for index, count in self._counts.items():
            if index > boundary:
                above += count
            elif index == boundary:
                lo, hi = self._bucket_span(index)
                if hi > lo:
                    share = (hi - min(max(threshold, lo), hi)) / (hi - lo)
                else:
                    share = 0.0
                above += count * share
        return float(min(max(above / self._count, 0.0), 1.0))

    def __repr__(self) -> str:
        if self._count == 0:
            return "FixedHistogram(empty)"
        return (
            f"FixedHistogram(n={self._count}, mean={self.mean:.3g}, "
            f"p99~{self.percentile(99):.3g}, "
            f"+/-{self.relative_error_bound:.2%})"
        )
