"""Analytic queueing formulas (M/M/c) for validating the simulator.

The microservice substrate is a network of multi-server queues; these
closed-form results let the test suite check the simulator against theory
(an M/M/c service's simulated waiting time must match Erlang C) and give
users quick capacity estimates without running a simulation.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = [
    "erlang_c",
    "mmc_mean_wait",
    "mmc_mean_response",
    "mmc_utilization",
    "mm1_response_percentile",
    "servers_for_target_wait",
]


def _validate(arrival_rate: float, service_rate: float, servers: int) -> float:
    if arrival_rate <= 0:
        raise ConfigurationError(f"arrival rate must be > 0, got {arrival_rate}")
    if service_rate <= 0:
        raise ConfigurationError(f"service rate must be > 0, got {service_rate}")
    if servers < 1:
        raise ConfigurationError(f"need >= 1 server, got {servers}")
    rho = arrival_rate / (servers * service_rate)
    if rho >= 1.0:
        raise ConfigurationError(
            f"unstable system: offered load {arrival_rate / service_rate:.3f} "
            f"Erlangs >= {servers} servers"
        )
    return rho


def erlang_c(arrival_rate: float, service_rate: float, servers: int) -> float:
    """P(wait > 0) in an M/M/c queue (the Erlang C formula)."""
    rho = _validate(arrival_rate, service_rate, servers)
    offered = arrival_rate / service_rate  # Erlangs
    # Stable evaluation via the iterative Erlang B recurrence.
    erlang_b = 1.0
    for k in range(1, servers + 1):
        erlang_b = offered * erlang_b / (k + offered * erlang_b)
    return erlang_b / (1.0 - rho * (1.0 - erlang_b))


def mmc_utilization(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Per-server utilisation ``rho``."""
    return _validate(arrival_rate, service_rate, servers)


def mmc_mean_wait(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Mean queueing delay (excluding service) in an M/M/c queue."""
    rho = _validate(arrival_rate, service_rate, servers)
    p_wait = erlang_c(arrival_rate, service_rate, servers)
    return p_wait / (servers * service_rate - arrival_rate)


def mmc_mean_response(
    arrival_rate: float, service_rate: float, servers: int
) -> float:
    """Mean response time (wait + service)."""
    return mmc_mean_wait(arrival_rate, service_rate, servers) + 1.0 / service_rate


def mm1_response_percentile(
    arrival_rate: float, service_rate: float, q: float
) -> float:
    """The ``q``-th percentile response time of an M/M/1 queue.

    Response time is exponential with rate ``mu - lambda``:
    ``t(q) = -ln(1 - q/100) / (mu - lambda)``.
    """
    _validate(arrival_rate, service_rate, 1)
    if not 0 < q < 100:
        raise ConfigurationError(f"percentile must be in (0, 100), got {q}")
    return -math.log(1.0 - q / 100.0) / (service_rate - arrival_rate)


def servers_for_target_wait(
    arrival_rate: float,
    service_rate: float,
    target_wait_s: float,
    max_servers: int = 1024,
) -> int:
    """Fewest servers keeping the mean M/M/c wait below ``target_wait_s``.

    The analytic analogue of Ursa's replica sizing; used for sanity checks
    and ballpark capacity planning.
    """
    if target_wait_s <= 0:
        raise ConfigurationError(f"target wait must be > 0, got {target_wait_s}")
    minimum = math.floor(arrival_rate / service_rate) + 1
    for servers in range(minimum, max_servers + 1):
        if mmc_mean_wait(arrival_rate, service_rate, servers) <= target_wait_s:
            return servers
    raise ConfigurationError(
        f"no server count up to {max_servers} meets the target wait"
    )
