"""Welch's t-test, implemented from scratch.

Ursa uses Welch's unequal-variances t-test in two places (paper §III and
§V):

* the backpressure profiler declares the proxy latency *converged* when the
  test cannot reject equality of the latency samples under the last two CPU
  limits, and
* the resource controller decides a scaling threshold is exceeded when the
  test rejects the hypothesis that the observed load is at most the recorded
  threshold load.

The implementation computes the Welch statistic and Welch-Satterthwaite
degrees of freedom directly and evaluates p-values with the regularised
incomplete beta function (via :func:`scipy.special.betainc`, the only scipy
dependency).  A pure-Python fallback for the beta function keeps the module
usable without scipy.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["TTestResult", "welch_t_test", "means_differ", "mean_exceeds"]

try:  # pragma: no cover - exercised implicitly
    from scipy.special import betainc as _betainc

    def _reg_inc_beta(a: float, b: float, x: float) -> float:
        return float(_betainc(a, b, x))

except ImportError:  # pragma: no cover - scipy is an install dependency

    def _reg_inc_beta(a: float, b: float, x: float) -> float:
        return _betainc_cf(a, b, x)


def _betainc_cf(a: float, b: float, x: float) -> float:
    """Regularised incomplete beta via Lentz's continued fraction.

    Reference implementation (Numerical Recipes §6.4); used as fallback and
    cross-checked against scipy in the test suite.
    """
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log(1.0 - x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_cf(a, b, x) / a
    return 1.0 - front * _beta_cf(b, a, 1.0 - x) / b


def _beta_cf(a: float, b: float, x: float) -> float:
    tiny = 1e-30
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


def _student_t_sf(t: float, df: float) -> float:
    """Survival function P(T > t) of Student's t with ``df`` degrees."""
    if df <= 0:
        raise ValueError(f"degrees of freedom must be > 0, got {df}")
    if math.isinf(t):
        return 0.0 if t > 0 else 1.0
    x = df / (df + t * t)
    p = 0.5 * _reg_inc_beta(df / 2.0, 0.5, x)
    return p if t >= 0 else 1.0 - p


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a Welch t-test."""

    statistic: float
    df: float
    p_value: float

    def rejects_at(self, alpha: float) -> bool:
        """True when the null hypothesis is rejected at level ``alpha``."""
        if not 0 < alpha < 1:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        return self.p_value < alpha


def _moments(sample: Sequence[float]) -> tuple[float, float, int]:
    n = len(sample)
    if n < 2:
        raise ValueError(f"need at least 2 observations, got {n}")
    mean = sum(sample) / n
    var = sum((x - mean) ** 2 for x in sample) / (n - 1)
    return mean, var, n


def welch_t_test(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    alternative: str = "two-sided",
) -> TTestResult:
    """Welch's unequal-variances t-test on two independent samples.

    ``alternative`` selects the alternative hypothesis:

    * ``"two-sided"`` -- means differ.
    * ``"greater"`` -- mean of ``sample_a`` exceeds mean of ``sample_b``.
    * ``"less"`` -- mean of ``sample_a`` is below mean of ``sample_b``.
    """
    if alternative not in ("two-sided", "greater", "less"):
        raise ValueError(f"unknown alternative: {alternative!r}")
    mean_a, var_a, n_a = _moments(sample_a)
    mean_b, var_b, n_b = _moments(sample_b)
    se2 = var_a / n_a + var_b / n_b
    if se2 == 0.0:
        # Both samples constant: identical means -> p=1, else p=0.
        equal = mean_a == mean_b
        stat = 0.0 if equal else math.copysign(math.inf, mean_a - mean_b)
        df = float(n_a + n_b - 2)
        if alternative == "two-sided":
            p = 1.0 if equal else 0.0
        elif alternative == "greater":
            p = 1.0 if (equal or mean_a < mean_b) else 0.0
        else:
            p = 1.0 if (equal or mean_a > mean_b) else 0.0
        return TTestResult(stat, df, p)
    t = (mean_a - mean_b) / math.sqrt(se2)
    df = se2**2 / (
        (var_a / n_a) ** 2 / (n_a - 1) + (var_b / n_b) ** 2 / (n_b - 1)
    )
    if alternative == "two-sided":
        p = 2.0 * _student_t_sf(abs(t), df)
    elif alternative == "greater":
        p = _student_t_sf(t, df)
    else:
        p = _student_t_sf(-t, df)
    return TTestResult(t, df, min(1.0, p))


def means_differ(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    alpha: float = 0.05,
) -> bool:
    """Convenience wrapper: do the two samples have different means?

    This is the convergence check of the backpressure profiler: the proxy
    latency has converged when consecutive CPU-limit samples no longer
    differ (i.e. this returns False).
    """
    return welch_t_test(sample_a, sample_b, "two-sided").rejects_at(alpha)


def mean_exceeds(
    sample: Sequence[float],
    reference: Sequence[float],
    alpha: float = 0.05,
) -> bool:
    """True when ``sample``'s mean significantly exceeds ``reference``'s.

    Used by Ursa's resource controller (§V item 4): a scaling threshold is
    considered exceeded when the t-test rejects the hypothesis that the mean
    of the actual load is less than or equal to the recorded threshold load.
    """
    return welch_t_test(sample, reference, "greater").rejects_at(alpha)
