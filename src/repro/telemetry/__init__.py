"""Prometheus-like telemetry: histograms and a windowed metrics hub.

Metric naming conventions used throughout the package:

* ``request_latency`` (latency) -- end-to-end request latency, labels
  ``{"request": <request type>}``.
* ``service_latency`` (latency) -- per-service response time
  (service time excluding downstream waits for RPC; processing time for
  MQ consumers), labels ``{"service": ..., "request": ...}``.
* ``requests_total`` (counter) -- arrivals, labels
  ``{"service": ..., "request": ...}`` or ``{"request": ...}`` for
  client-level arrivals.
* ``sla_violations_total`` (counter) -- end-to-end SLA violations,
  labels ``{"request": ...}``.
* ``cpu_utilization`` (gauge) -- per-service CPU utilisation in [0, 1],
  labels ``{"service": ...}``.
* ``replicas`` (gauge) -- per-service replica count.
* ``cpu_allocated`` (gauge) -- per-service total allocated CPUs.
* ``queue_depth`` (gauge) -- per-service pending request count.
"""

from repro.telemetry.histogram import LatencyHistogram
from repro.telemetry.metrics import LabelSet, MetricsHub, labels_key

__all__ = ["LatencyHistogram", "LabelSet", "MetricsHub", "labels_key"]
