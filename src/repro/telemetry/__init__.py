"""Prometheus/Jaeger-like telemetry: metrics, tracing, and exporters.

Three layers:

* :class:`~repro.telemetry.metrics.MetricsHub` -- windowed aggregate
  metrics (the Prometheus substitute).  Every metric name is declared in
  :data:`~repro.telemetry.registry.DEFAULT_REGISTRY` with its kind and
  expected labels; the hub warns (or raises, ``strict=True``) on
  unregistered writes and the ursalint rule ``TEL001`` checks literals at
  lint time.
* :mod:`~repro.telemetry.tracing` -- per-request span trees plus the
  critical-path analyzer attributing end-to-end latency to
  (service, phase) pairs (the Jaeger substitute).
* :mod:`~repro.telemetry.export` -- CSV/JSON dumps for offline plotting.

See ``docs/observability.md`` for the span model, critical-path
semantics, and the digest workflow.
"""

from repro.telemetry.audit import (
    AuditVerdict,
    audit_budgets,
    render_audit,
    verdicts_payload,
)
from repro.telemetry.histogram import LatencyHistogram
from repro.telemetry.metrics import LabelSet, MetricsHub, labels_key
from repro.telemetry.registry import (
    ALERT_REGISTRY,
    DEFAULT_REGISTRY,
    AlertRegistry,
    AlertSpec,
    MetricRegistry,
    MetricSpec,
    UnregisteredMetricWarning,
)
from repro.telemetry.slo import (
    Alert,
    SLOMonitor,
    SLOSpec,
    alerts_digest,
    alerts_from_jsonl,
    alerts_to_jsonl,
    slo_specs_for,
)
from repro.telemetry.tracing import (
    CriticalPathSummary,
    PathSegment,
    Span,
    Trace,
    Tracer,
    attribute_latency,
    critical_path,
    traces_to_chrome,
    traces_to_jsonl,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "ALERT_REGISTRY",
    "Alert",
    "AlertRegistry",
    "AlertSpec",
    "AuditVerdict",
    "CriticalPathSummary",
    "DEFAULT_REGISTRY",
    "LabelSet",
    "LatencyHistogram",
    "MetricRegistry",
    "MetricSpec",
    "MetricsHub",
    "PathSegment",
    "SLOMonitor",
    "SLOSpec",
    "Span",
    "Trace",
    "Tracer",
    "UnregisteredMetricWarning",
    "alerts_digest",
    "alerts_from_jsonl",
    "alerts_to_jsonl",
    "attribute_latency",
    "audit_budgets",
    "critical_path",
    "labels_key",
    "render_audit",
    "slo_specs_for",
    "traces_to_chrome",
    "traces_to_jsonl",
    "verdicts_payload",
    "write_chrome_trace",
    "write_jsonl",
]
