"""Span-driven budget audit: do the MIP's budgets match observed reality?

The optimizer splits each class's end-to-end SLA target into
per-service latency budgets (``OptimizationOutcome.service_budgets``)
chosen from profiled percentile tables.  The critical-path analyzer
independently attributes *observed* end-to-end latency to
``(service, phase)`` pairs from sampled span trees.  If the two
disagree -- the class's latency is dominated by a service the MIP gave a
small budget -- the model the control loop plans with has drifted from
the system it controls (wrong profile, queueing the model missed, or a
topology change the budgets never saw).

:func:`audit_budgets` compares the two views per class and produces one
deterministic :class:`AuditVerdict` per class: the dominant *observed*
service (critical-path share summed across its phases) versus the
dominant *budgeted* service, flagged when they differ by more than
``dominance_margin``.  Verdicts are pure data -- the audit reads only
finished traces and a solved outcome, never the live simulation -- and
their canonical rendering is pinned in results sidecars alongside event
digests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.tracing import CriticalPathSummary

__all__ = [
    "AuditVerdict",
    "audit_budgets",
    "render_audit",
    "verdicts_payload",
]


@dataclass(frozen=True)
class AuditVerdict:
    """One class's budget-vs-observation comparison.

    ``observed_share`` / ``budget_share`` are the dominant service's
    fraction of total observed critical-path time and of total budgeted
    seconds respectively.  ``mismatch`` is True when the dominant
    observed service is not the dominant budgeted one and leads the
    budgeted service's observed share by more than the margin.
    """

    request_class: str
    traced_requests: int
    observed_service: str
    observed_share: float
    budget_service: str
    budget_share: float
    mismatch: bool
    detail: str

    def to_dict(self) -> dict:
        return {
            "request_class": self.request_class,
            "traced_requests": self.traced_requests,
            "observed_service": self.observed_service,
            "observed_share": round(self.observed_share, 6),
            "budget_service": self.budget_service,
            "budget_share": round(self.budget_share, 6),
            "mismatch": self.mismatch,
            "detail": self.detail,
        }


def _service_shares(pairs: Mapping[str, float]) -> list[tuple[str, float]]:
    """Normalise a service->seconds map to shares, dominant first."""
    total = sum(pairs.values())
    if total <= 0:
        return []
    shares = [(name, seconds / total) for name, seconds in pairs.items()]
    shares.sort(key=lambda item: (-item[1], item[0]))
    return shares


def audit_budgets(
    summary: "CriticalPathSummary",
    service_budgets: Mapping[str, Mapping[str, float]],
    dominance_margin: float = 0.1,
    min_traced: int = 5,
) -> list[AuditVerdict]:
    """Compare observed critical-path shares against MIP budgets.

    ``service_budgets`` maps class -> service -> budgeted seconds (from
    :attr:`~repro.core.optimizer.OptimizationOutcome.service_budgets`).
    Classes with fewer than ``min_traced`` sampled requests, or absent
    from either side, yield no verdict (too little signal to accuse the
    model).  The returned list is sorted by class name -- deterministic
    for a deterministic trace set.
    """
    verdicts = []
    for cls in sorted(summary.classes()):
        budgets = service_budgets.get(cls)
        if not budgets:
            continue
        agg = summary.pooled(cls)
        if agg.requests < min_traced:
            continue
        observed_by_service: dict[str, float] = {}
        for (service, _phase), seconds in agg.by_location.items():
            if service in budgets:
                observed_by_service[service] = (
                    observed_by_service.get(service, 0.0) + seconds
                )
        observed = _service_shares(observed_by_service)
        budgeted = _service_shares(budgets)
        if not observed or not budgeted:
            continue
        obs_service, obs_share = observed[0]
        bud_service, bud_share = budgeted[0]
        observed_map = dict(observed)
        budget_leader_observed = observed_map.get(bud_service, 0.0)
        mismatch = (
            obs_service != bud_service
            and obs_share - budget_leader_observed > dominance_margin
        )
        if mismatch:
            detail = (
                f"observed time concentrates on {obs_service} "
                f"({obs_share:.0%}) but the MIP budgets {bud_service} "
                f"most ({bud_share:.0%} of budgeted seconds; "
                f"{bud_service} observed at {budget_leader_observed:.0%})"
            )
        else:
            detail = (
                f"dominant observed service {obs_service} "
                f"({obs_share:.0%}) consistent with budgets "
                f"(top budget {bud_service} at {bud_share:.0%})"
            )
        verdicts.append(
            AuditVerdict(
                request_class=cls,
                traced_requests=agg.requests,
                observed_service=obs_service,
                observed_share=obs_share,
                budget_service=bud_service,
                budget_share=bud_share,
                mismatch=mismatch,
                detail=detail,
            )
        )
    return verdicts


def render_audit(verdicts: list[AuditVerdict]) -> str:
    """Terminal rendering of an audit, one line per class."""
    if not verdicts:
        return "budget audit: no classes with enough traced requests\n"
    lines = ["budget audit (observed critical path vs MIP budgets):"]
    for v in verdicts:
        flag = "MISMATCH" if v.mismatch else "ok"
        lines.append(
            f"  [{flag:>8}] {v.request_class}: {v.detail} "
            f"({v.traced_requests} traced)"
        )
    return "\n".join(lines) + "\n"


def verdicts_payload(verdicts: list[AuditVerdict]) -> dict[str, dict]:
    """Class-keyed JSON-able payload for results sidecars."""
    return {v.request_class: v.to_dict() for v in verdicts}
