"""Export telemetry to CSV/JSON for offline plotting.

The experiments print paper-style text tables; for users who want to plot
with their own tooling, these helpers dump a :class:`MetricsHub`'s
windowed series to portable formats.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping

from repro.errors import TelemetryError
from repro.telemetry.metrics import MetricsHub

__all__ = ["export_gauge_csv", "export_latency_percentiles_csv", "export_summary_json"]


def export_gauge_csv(
    hub: MetricsHub,
    name: str,
    t0: float,
    t1: float,
    path: str | Path,
    labels: Mapping[str, str] | None = None,
) -> int:
    """Write a gauge's per-window means as ``time,value`` rows.

    Returns the number of rows written.
    """
    series = hub.gauge_series(name, t0, t1, labels)
    with Path(path).open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_s", name])
        for t, value in series:
            writer.writerow([t, value])
    return len(series)


def export_latency_percentiles_csv(
    hub: MetricsHub,
    name: str,
    t0: float,
    t1: float,
    path: str | Path,
    labels: Mapping[str, str] | None = None,
    percentiles: tuple[float, ...] = (50.0, 90.0, 99.0),
    window_s: float | None = None,
) -> int:
    """Write per-window latency percentiles as CSV rows."""
    window = window_s if window_s is not None else hub.window_s
    if window <= 0:
        raise TelemetryError(f"window must be > 0, got {window}")
    rows = 0
    with Path(path).open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time_s", *[f"p{q:g}" for q in percentiles]])
        t = t0
        while t < t1:
            t_next = min(t1, t + window)
            dist = hub.latency_distribution(name, t, t_next, labels)
            if dist:
                writer.writerow([t, *[dist.percentile(q) for q in percentiles]])
                rows += 1
            t = t_next
    return rows


def export_summary_json(
    hub: MetricsHub,
    metric_names: list[str],
    t0: float,
    t1: float,
    path: str | Path,
) -> None:
    """Dump label sets and aggregate values of named metrics as JSON."""
    summary: dict[str, list[dict]] = {}
    for name in metric_names:
        entries = []
        for labels in hub.label_sets(name):
            entry: dict = {"labels": labels}
            dist = hub.latency_distribution(name, t0, t1, labels)
            if dist:
                entry["count"] = dist.count
                entry["mean"] = dist.mean
                entry["p99"] = dist.percentile(99)
            total = hub.counter_total(name, t0, t1, labels)
            if total:
                entry["total"] = total
            mean = hub.gauge_mean(name, t0, t1, labels, default=float("nan"))
            if mean == mean:  # not NaN
                entry["gauge_mean"] = mean
            entries.append(entry)
        summary[name] = entries
    with Path(path).open("w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
