"""Log-bucketed latency histograms (HDR-histogram style).

The tracing framework records request latencies at high volume; a
log-bucketed histogram gives memory-bounded storage with bounded relative
error on percentile queries.  ``growth`` controls the bucket width ratio:
with the default 1.02, percentile estimates are within about 1 % of the true
value, which is ample for SLA accounting.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """Histogram over positive values with geometrically growing buckets.

    Values below ``min_value`` land in bucket 0.  Bucket ``i`` (i >= 1)
    covers ``[min_value * growth**(i-1), min_value * growth**i)``.
    """

    def __init__(self, min_value: float = 1e-5, growth: float = 1.02) -> None:
        if min_value <= 0:
            raise ValueError(f"min_value must be > 0, got {min_value}")
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        self.min_value = min_value
        self.growth = growth
        self._log_growth = math.log(growth)
        self._counts: dict[int, int] = {}
        self._total = 0
        self._sum = 0.0
        self._max = 0.0
        self._min = math.inf

    def _bucket(self, value: float) -> int:
        if value < self.min_value:
            return 0
        return 1 + int(math.log(value / self.min_value) / self._log_growth)

    def _bucket_upper(self, index: int) -> float:
        if index == 0:
            return self.min_value
        return self.min_value * self.growth**index

    def record(self, value: float, count: int = 1) -> None:
        """Record ``count`` observations of ``value``."""
        if value < 0:
            raise ValueError(f"latency must be >= 0, got {value}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        index = self._bucket(value)
        self._counts[index] = self._counts.get(index, 0) + count
        self._total += count
        self._sum += value * count
        if value > self._max:
            self._max = value
        if value < self._min:
            self._min = value

    @property
    def count(self) -> int:
        return self._total

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        if self._total == 0:
            raise ValueError("mean of empty histogram")
        return self._sum / self._total

    @property
    def max(self) -> float:
        if self._total == 0:
            raise ValueError("max of empty histogram")
        return self._max

    @property
    def min(self) -> float:
        if self._total == 0:
            raise ValueError("min of empty histogram")
        return self._min

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (within one bucket width).

        Returns the upper edge of the bucket containing the q-th ranked
        observation, clamped to the observed maximum.
        """
        if self._total == 0:
            raise ValueError("percentile of empty histogram")
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        target = max(1, math.ceil(self._total * q / 100.0))
        cumulative = 0
        for index in sorted(self._counts):
            cumulative += self._counts[index]
            if cumulative >= target:
                return min(self._bucket_upper(index), self._max)
        return self._max  # pragma: no cover - defensive

    def percentiles(self, grid: Sequence[float]) -> list[float]:
        return [self.percentile(q) for q in grid]

    def fraction_above(self, threshold: float) -> float:
        """Approximate fraction of observations above ``threshold``."""
        if self._total == 0:
            raise ValueError("fraction_above of empty histogram")
        boundary = self._bucket(threshold)
        above = sum(
            count for index, count in self._counts.items() if index > boundary
        )
        return above / self._total

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """A new histogram combining both (requires identical bucketing)."""
        if (self.min_value, self.growth) != (other.min_value, other.growth):
            raise ValueError("cannot merge histograms with different bucketing")
        merged = LatencyHistogram(self.min_value, self.growth)
        for source in (self, other):
            for index, count in source._counts.items():
                merged._counts[index] = merged._counts.get(index, 0) + count
        merged._total = self._total + other._total
        merged._sum = self._sum + other._sum
        merged._max = max(self._max, other._max)
        merged._min = min(self._min, other._min)
        return merged

    def __repr__(self) -> str:
        if self._total == 0:
            return "LatencyHistogram(empty)"
        return (
            f"LatencyHistogram(n={self._total}, mean={self.mean:.3g}, "
            f"p99~{self.percentile(99):.3g})"
        )
