"""Windowed metrics hub -- the Prometheus substitute.

Simulated components push raw measurements into a :class:`MetricsHub`;
the hub aggregates them into fixed time windows (default one minute,
matching the paper's once-per-minute sampling).  Three metric kinds:

* **latency** -- per-window empirical latency distributions
  (request/response times keyed by service and request class);
* **counter** -- monotonically accumulated counts per window (request
  arrivals, SLA violations);
* **gauge** -- point-in-time samples averaged per window (CPU utilisation,
  replica counts, queue depths).

Queries aggregate over window ranges, mirroring the PromQL-style queries
Ursa's controllers issue (latency percentile over the last N minutes,
request rate, mean CPU utilisation).

Two hot-path affordances (see docs/performance.md):

* **Interned series handles.**  :meth:`MetricsHub.latency_handle` /
  :meth:`MetricsHub.counter_handle` resolve the name/label lookup and
  registry check once and return a small bound writer
  (:class:`LatencyHandle` / :class:`CounterHandle`); per-observation
  writes through a handle touch only the per-window dict.  Handles and
  the string-keyed write methods share the same underlying series, so
  queries see both.
* **Fixed-histogram latency store.**  ``latency_store="fixed"`` makes
  latency series accumulate into bounded
  :class:`~repro.stats.histogram.FixedHistogram` buckets instead of
  sample-keeping :class:`~repro.stats.distributions.EmpiricalDistribution`
  -- O(bins) memory per window regardless of request volume, with the
  histogram's documented ~0.45% quantile error bound.  The default stays
  ``"empirical"`` (exact percentiles).
"""

from __future__ import annotations

import math
import warnings
from collections.abc import Callable, Mapping
from math import floor as _floor

from repro.errors import TelemetryError
from repro.stats.distributions import EmpiricalDistribution
from repro.stats.histogram import FixedHistogram
from repro.telemetry.registry import (
    DEFAULT_REGISTRY,
    MetricRegistry,
    UnregisteredMetricWarning,
)

__all__ = [
    "CounterHandle",
    "LabelSet",
    "LatencyDist",
    "LatencyHandle",
    "MetricsHub",
    "labels_key",
]

LabelSet = tuple[tuple[str, str], ...]

#: A latency series aggregate: exact samples or a bounded histogram,
#: depending on the hub's ``latency_store``.  Both answer ``merge`` /
#: ``percentile`` / ``fraction_above`` / ``count`` with the same duck
#: interface.
LatencyDist = EmpiricalDistribution | FixedHistogram


class LatencyHandle:
    """Interned writer for one (metric, label-set) latency series.

    Created by :meth:`MetricsHub.latency_handle`; holds the resolved
    per-window dict so :meth:`record` skips the name/label lookups and
    the (first-write) registry check entirely.
    """

    __slots__ = ("_clock", "_window_s", "_series", "_factory")

    def __init__(
        self,
        clock: Callable[[], float],
        window_s: float,
        series: dict[int, LatencyDist],
        factory: Callable[[], LatencyDist],
    ) -> None:
        self._clock = clock
        self._window_s = window_s
        self._series = series
        self._factory = factory

    def record(self, value: float) -> None:
        """Record one latency observation (same as hub.record_latency)."""
        # Same window arithmetic as MetricsHub._window, inlined.
        window = int(_floor(self._clock() / self._window_s))
        series = self._series
        dist = series.get(window)
        if dist is None:
            dist = series[window] = self._factory()
        dist.add(value)


class CounterHandle:
    """Interned writer for one (metric, label-set) counter series."""

    __slots__ = ("_clock", "_window_s", "_series")

    def __init__(
        self,
        clock: Callable[[], float],
        window_s: float,
        series: dict[int, float],
    ) -> None:
        self._clock = clock
        self._window_s = window_s
        self._series = series

    def inc(self, amount: float = 1.0) -> None:
        """Increment the counter (same as hub.inc_counter)."""
        if amount < 0:
            raise TelemetryError(f"counter increment must be >= 0, got {amount}")
        window = int(_floor(self._clock() / self._window_s))
        series = self._series
        series[window] = series.get(window, 0.0) + amount


def labels_key(labels: Mapping[str, str] | LabelSet | None) -> LabelSet:
    """Canonical hashable form of a label mapping.

    Accepts an already-canonical tuple unchanged, so hot paths can
    precompute their label sets once and skip the sort.
    """
    if not labels:
        return ()
    if isinstance(labels, tuple):
        return labels
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class MetricsHub:
    """Time-windowed metric aggregation for one simulation.

    The hub needs the current simulation time on every write; callers pass
    a clock function (usually ``lambda: env.now``) at construction.

    Writes are validated against a
    :class:`~repro.telemetry.registry.MetricRegistry`: an undeclared name,
    a kind mismatch, or an undeclared label key warns
    (:class:`~repro.telemetry.registry.UnregisteredMetricWarning`) by
    default and raises :class:`~repro.errors.TelemetryError` when
    ``strict=True``.  Validation happens only when a new series is
    created, so the per-observation hot path pays nothing.  Pass
    ``registry=None`` to disable checking (ad-hoc hubs in tests).
    """

    def __init__(
        self,
        clock,
        window_s: float = 60.0,
        registry: MetricRegistry | None = DEFAULT_REGISTRY,
        strict: bool = False,
        latency_store: str = "empirical",
    ) -> None:
        if window_s <= 0:
            raise TelemetryError(f"window must be > 0, got {window_s}")
        if latency_store not in ("empirical", "fixed"):
            raise TelemetryError(
                f"latency_store must be 'empirical' or 'fixed', got {latency_store!r}"
            )
        self._clock = clock
        self.window_s = float(window_s)
        self.registry = registry
        self.strict = bool(strict)
        self.latency_store = latency_store
        self._latency_factory: Callable[[], LatencyDist] = (
            EmpiricalDistribution if latency_store == "empirical" else FixedHistogram
        )
        # metric name -> labels -> window index -> aggregate
        self._latency: dict[str, dict[LabelSet, dict[int, LatencyDist]]] = {}
        self._counters: dict[str, dict[LabelSet, dict[int, float]]] = {}
        self._gauges: dict[str, dict[LabelSet, dict[int, list[float]]]] = {}

    def _check(self, kind: str, name: str, labels: LabelSet) -> None:
        """Validate a new series against the registry (first write only)."""
        if self.registry is None:
            return
        problem = self.registry.check(name, kind, (k for k, _ in labels))
        if problem is None:
            return
        if self.strict:
            raise TelemetryError(problem)
        warnings.warn(problem, UnregisteredMetricWarning, stacklevel=3)

    # -- writes -----------------------------------------------------------
    def _window(self, at: float | None = None) -> int:
        t = self._clock() if at is None else at
        return int(math.floor(t / self.window_s))

    def _series(self, kind: str, table: dict, name: str, key: LabelSet) -> dict:
        """Get-or-create the per-window dict for one (name, labels) series.

        Registry validation runs exactly when the series is created --
        identical timing to the pre-handle first-write check.
        """
        by_labels = table.get(name)
        if by_labels is None:
            by_labels = table[name] = {}
        series = by_labels.get(key)
        if series is None:
            self._check(kind, name, key)
            series = by_labels[key] = {}
        return series

    def record_latency(
        self,
        name: str,
        value: float,
        labels: Mapping[str, str] | LabelSet | None = None,
    ) -> None:
        """Record one latency observation for metric ``name``."""
        window = self._window()
        series = self._series("latency", self._latency, name, labels_key(labels))
        dist = series.get(window)
        if dist is None:
            dist = series[window] = self._latency_factory()
        dist.add(value)

    def inc_counter(
        self,
        name: str,
        amount: float = 1.0,
        labels: Mapping[str, str] | LabelSet | None = None,
    ) -> None:
        """Increment counter ``name`` by ``amount`` in the current window."""
        if amount < 0:
            raise TelemetryError(f"counter increment must be >= 0, got {amount}")
        window = self._window()
        series = self._series("counter", self._counters, name, labels_key(labels))
        series[window] = series.get(window, 0.0) + amount

    def observe_gauge(
        self,
        name: str,
        value: float,
        labels: Mapping[str, str] | LabelSet | None = None,
    ) -> None:
        """Record one point-in-time gauge sample."""
        window = self._window()
        series = self._series("gauge", self._gauges, name, labels_key(labels))
        samples = series.get(window)
        if samples is None:
            samples = series[window] = []
        samples.append(value)

    # -- interned handles -------------------------------------------------
    def latency_handle(
        self,
        name: str,
        labels: Mapping[str, str] | LabelSet | None = None,
    ) -> LatencyHandle:
        """Interned writer for one latency series (hot-path callers).

        Resolves the name/label lookup and registry check once; the
        returned :class:`LatencyHandle` writes into the same series that
        :meth:`record_latency` and the query methods use.
        """
        series = self._series("latency", self._latency, name, labels_key(labels))
        return LatencyHandle(self._clock, self.window_s, series, self._latency_factory)

    def counter_handle(
        self,
        name: str,
        labels: Mapping[str, str] | LabelSet | None = None,
    ) -> CounterHandle:
        """Interned writer for one counter series (hot-path callers)."""
        series = self._series("counter", self._counters, name, labels_key(labels))
        return CounterHandle(self._clock, self.window_s, series)

    # -- reads ------------------------------------------------------------
    def _window_range(self, t0: float, t1: float) -> range:
        if t1 < t0:
            raise TelemetryError(f"empty query interval [{t0}, {t1}]")
        first = int(math.floor(t0 / self.window_s))
        last = int(math.ceil(t1 / self.window_s))
        return range(first, max(last, first + 1))

    def latency_distribution(
        self,
        name: str,
        t0: float,
        t1: float,
        labels: Mapping[str, str] | LabelSet | None = None,
    ) -> LatencyDist:
        """Pooled latency distribution for ``name`` over ``[t0, t1)``."""
        series = self._latency.get(name, {}).get(labels_key(labels), {})
        pooled = self._latency_factory()
        for window in self._window_range(t0, t1):
            dist = series.get(window)
            if dist is not None:
                pooled = pooled.merge(dist)
        return pooled

    def latency_percentile(
        self,
        name: str,
        q: float,
        t0: float,
        t1: float,
        labels: Mapping[str, str] | LabelSet | None = None,
        default: float | None = None,
    ) -> float:
        """``q``-th percentile of ``name`` over ``[t0, t1)``.

        Returns ``default`` when no observations exist (if provided),
        otherwise raises :class:`TelemetryError`.
        """
        dist = self.latency_distribution(name, t0, t1, labels)
        if not dist:
            if default is not None:
                return default
            raise TelemetryError(
                f"no latency samples for {name}{dict(labels_key(labels))} "
                f"in [{t0}, {t1})"
            )
        return dist.percentile(q)

    def counter_total(
        self,
        name: str,
        t0: float,
        t1: float,
        labels: Mapping[str, str] | LabelSet | None = None,
    ) -> float:
        """Sum of counter increments over ``[t0, t1)``.

        Buckets partially covered by the interval contribute
        proportionally (assuming uniform arrivals within a bucket), so
        rates over intervals that do not align with bucket boundaries stay
        accurate.
        """
        series = self._counters.get(name, {}).get(labels_key(labels), {})
        total = 0.0
        for w in self._window_range(t0, t1):
            count = series.get(w, 0.0)
            if not count:
                continue
            bucket_start = w * self.window_s
            bucket_end = bucket_start + self.window_s
            # The intersection of [t0, t1) with a window-sized bucket can
            # never exceed window_s, so the fraction below is already in
            # [0, 1] -- no clamp needed.
            overlap = min(t1, bucket_end) - max(t0, bucket_start)
            if overlap <= 0:
                continue
            total += count * (overlap / self.window_s)
        return total

    def counter_rate(
        self,
        name: str,
        t0: float,
        t1: float,
        labels: Mapping[str, str] | LabelSet | None = None,
    ) -> float:
        """Average per-second rate of a counter over ``[t0, t1)``."""
        if t1 <= t0:
            raise TelemetryError(f"rate over empty interval [{t0}, {t1})")
        return self.counter_total(name, t0, t1, labels) / (t1 - t0)

    def gauge_mean(
        self,
        name: str,
        t0: float,
        t1: float,
        labels: Mapping[str, str] | LabelSet | None = None,
        default: float | None = None,
    ) -> float:
        """Mean of gauge samples over ``[t0, t1)``."""
        series = self._gauges.get(name, {}).get(labels_key(labels), {})
        samples: list[float] = []
        for window in self._window_range(t0, t1):
            samples.extend(series.get(window, ()))
        if not samples:
            if default is not None:
                return default
            raise TelemetryError(
                f"no gauge samples for {name}{dict(labels_key(labels))} "
                f"in [{t0}, {t1})"
            )
        return sum(samples) / len(samples)

    def gauge_series(
        self,
        name: str,
        t0: float,
        t1: float,
        labels: Mapping[str, str] | LabelSet | None = None,
    ) -> list[tuple[float, float]]:
        """Per-window (window start time, mean value) pairs over ``[t0, t1)``."""
        series = self._gauges.get(name, {}).get(labels_key(labels), {})
        out = []
        for window in self._window_range(t0, t1):
            samples = series.get(window)
            if samples:
                out.append((window * self.window_s, sum(samples) / len(samples)))
        return out

    def label_sets(self, name: str) -> list[dict[str, str]]:
        """All label combinations seen for metric ``name`` (any kind)."""
        seen: set[LabelSet] = set()
        for table in (self._latency, self._counters, self._gauges):
            seen.update(table.get(name, {}).keys())
        return [dict(ls) for ls in sorted(seen)]
