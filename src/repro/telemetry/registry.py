"""The metric-name registry: every metric declared in one place.

Metric names used to be free-form strings passed to
:class:`~repro.telemetry.metrics.MetricsHub` -- a typo silently created a
parallel series that every query missed (the failure mode the ROADMAP
flagged).  This module declares the canonical names, their kind, and
their expected label keys; the hub checks writes against the registry
(warn by default, raise in strict mode), and the ursalint rule ``TEL001``
checks string literals at lint time so typos never reach a run.

Adding a metric is a one-line :data:`DEFAULT_REGISTRY` entry; ad-hoc hubs
(unit tests, scratch scripts) can pass ``registry=None`` to opt out or
build their own :class:`MetricRegistry`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "ALERT_REGISTRY",
    "AlertRegistry",
    "AlertSpec",
    "DEFAULT_REGISTRY",
    "MetricRegistry",
    "MetricSpec",
    "UnregisteredMetricWarning",
]


class UnregisteredMetricWarning(UserWarning):
    """A metric write used a name or shape the registry does not know."""


#: Valid metric kinds (the three aggregation families of the hub).
KINDS = ("latency", "counter", "gauge")


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric: name, kind, and expected label keys.

    ``labels`` lists every label key a series of this metric may carry;
    a write may use any *subset* (e.g. ``requests_total`` is recorded
    both per-service and client-level), but never a key outside the set.
    """

    name: str
    kind: str
    labels: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"metric kind must be one of {KINDS}, got {self.kind!r}"
            )
        object.__setattr__(self, "labels", tuple(self.labels))


class MetricRegistry:
    """An immutable-by-convention set of :class:`MetricSpec` declarations."""

    def __init__(self, specs: Iterable[MetricSpec] = ()) -> None:
        self._specs: dict[str, MetricSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: MetricSpec) -> MetricSpec:
        """Add a declaration; re-registering an identical spec is a no-op."""
        existing = self._specs.get(spec.name)
        if existing is not None and existing != spec:
            raise ValueError(
                f"metric {spec.name!r} already registered as {existing}"
            )
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> MetricSpec | None:
        return self._specs.get(name)

    def names(self) -> list[str]:
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[MetricSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def check(
        self,
        name: str,
        kind: str,
        label_keys: Iterable[str],
    ) -> str | None:
        """Validate one write; returns a problem description or ``None``."""
        spec = self._specs.get(name)
        if spec is None:
            return (
                f"metric {name!r} is not declared in the registry "
                f"(known: {', '.join(self.names()) or 'none'})"
            )
        if spec.kind != kind:
            return (
                f"metric {name!r} is declared as a {spec.kind} but was "
                f"written as a {kind}"
            )
        extra = sorted(set(label_keys) - set(spec.labels))
        if extra:
            return (
                f"metric {name!r} written with undeclared label keys "
                f"{extra}; declared: {sorted(spec.labels)}"
            )
        return None


#: Every metric the reproduction records, in one table.  The ursalint
#: rule TEL001 and the hub's runtime check both read this.
DEFAULT_REGISTRY = MetricRegistry(
    [
        MetricSpec(
            "request_latency",
            "latency",
            ("request",),
            "end-to-end request latency (call-tree completion)",
        ),
        MetricSpec(
            "service_latency",
            "latency",
            ("request", "service"),
            "per-service response time minus nested-RPC downstream waits",
        ),
        MetricSpec(
            "requests_total",
            "counter",
            ("request", "service"),
            "request arrivals at a service",
        ),
        MetricSpec(
            "client_requests_total",
            "counter",
            ("request",),
            "client-level request arrivals",
        ),
        MetricSpec(
            "sla_violations_total",
            "counter",
            ("request",),
            "completed requests whose latency exceeded the class SLA target",
        ),
        MetricSpec(
            "mq_published_total",
            "counter",
            ("request", "service"),
            "messages published to a service's queue",
        ),
        MetricSpec(
            "cpu_utilization",
            "gauge",
            ("service",),
            "per-service CPU utilisation in [0, 1]",
        ),
        MetricSpec(
            "replicas",
            "gauge",
            ("service",),
            "per-service running replica count",
        ),
        MetricSpec(
            "cpu_allocated",
            "gauge",
            ("service",),
            "per-service total allocated CPUs",
        ),
        MetricSpec(
            "queue_depth",
            "gauge",
            ("service",),
            "per-service pending requests (MQ backlog + thread-queue waiters)",
        ),
        MetricSpec(
            "cluster_allocated_cpus",
            "gauge",
            (),
            "CPUs reserved across all deployments on the cluster",
        ),
        MetricSpec(
            "cluster_free_cpus",
            "gauge",
            (),
            "schedulable CPUs remaining on the cluster",
        ),
        MetricSpec(
            "traces_sampled_total",
            "counter",
            ("request",),
            "requests selected by the tracer's sampling policy",
        ),
        MetricSpec(
            "slo_burn_rate",
            "gauge",
            ("request", "window"),
            "per-class error-budget burn rate over the fast/slow window",
        ),
        MetricSpec(
            "slo_error_budget_consumed",
            "gauge",
            ("request",),
            "cumulative fraction of the class's error budget consumed",
        ),
        MetricSpec(
            "slo_alert_transitions_total",
            "counter",
            ("request", "alert", "state"),
            "SLO alert fire/resolve transitions emitted by the monitor",
        ),
    ]
)


# ----------------------------------------------------------------------
# Alert-name registry (the SLO monitor's twin of the metric table)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AlertSpec:
    """Declaration of one alert series: name, severity, and meaning."""

    name: str
    severity: str = "page"
    description: str = ""


class AlertRegistry:
    """The declared alert names the SLO monitor may emit.

    Same contract as :class:`MetricRegistry` for metric names: every
    alert series is declared once here, the monitor raises on an
    undeclared name at emit time, and the ursalint rule ``TEL002``
    checks :class:`~repro.telemetry.slo.Alert` name literals statically.
    """

    def __init__(self, specs: Iterable[AlertSpec] = ()) -> None:
        self._specs: dict[str, AlertSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: AlertSpec) -> AlertSpec:
        existing = self._specs.get(spec.name)
        if existing is not None and existing != spec:
            raise ValueError(
                f"alert {spec.name!r} already registered as {existing}"
            )
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> AlertSpec | None:
        return self._specs.get(name)

    def names(self) -> list[str]:
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __iter__(self) -> Iterator[AlertSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)


#: Every alert series the SLO monitor emits, in one table (TEL002 and
#: the monitor's runtime check both read this).
ALERT_REGISTRY = AlertRegistry(
    [
        AlertSpec(
            "slo-burn-rate",
            "page",
            "fast AND slow window burn rates above the paging threshold",
        ),
        AlertSpec(
            "slo-budget-exhausted",
            "page",
            "cumulative violations exceed the class's whole error budget",
        ),
    ]
)
