"""Streaming SLO monitoring: error budgets and burn-rate alerting.

The control loop exists to keep per-class SLA violation rates under a
threshold, but until this module violations were only *recomputed* from
latency histograms after a run finished.  :class:`SLOMonitor` is the
streaming counterpart: a pure observer that subscribes to request
completions and maintains, per request class,

* a cumulative **error budget**: an :class:`SLOSpec` says "``objective``
  of requests must finish within ``target_s``"; the budget is the
  tolerated bad fraction (``1 - objective``), and consumption is the
  observed bad fraction over it (Google-SRE accounting);
* two rolling **burn rates** (fast + slow window): the windowed bad
  fraction divided by the error budget, so ``1.0`` means "violating at
  exactly the tolerated rate" and higher values exhaust the budget
  proportionally faster;
* deterministic, sim-clock-stamped :class:`Alert` fire/resolve records
  using the classic multi-window rule -- page when *both* windows burn
  above the threshold (the fast window gates detection latency, the slow
  window filters blips), resolve with hysteresis once both fall back
  below the resolve threshold.

Purity contract: the monitor never touches an RNG stream and never
schedules engine events -- it runs entirely inside completion callbacks
of events the application already scheduled, so a monitored run's event
trace (and :class:`~repro.sim.trace.RunDigest`) is byte-identical to an
unmonitored one.  ``tests/telemetry/test_slo.py`` pins this, and
``alerts_to_jsonl`` output is byte-identical across same-seed reruns the
same way span dumps are.

Window sums are bucketed (``bucket_s``) rather than per-request deques:
each completion updates O(1) running sums, and buckets are retired from
the window as the sim clock advances.  Alert names come from
:data:`~repro.telemetry.registry.ALERT_REGISTRY` -- an undeclared name
raises at emit time, and the ursalint rule ``TEL002`` flags literals at
lint time.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.errors import TelemetryError
from repro.telemetry.registry import ALERT_REGISTRY

if TYPE_CHECKING:  # pragma: no cover
    from repro.apps.topology import AppSpec, Application
    from repro.telemetry.metrics import MetricsHub

__all__ = [
    "ALERT_BUDGET_EXHAUSTED",
    "ALERT_BURN_RATE",
    "Alert",
    "SLOMonitor",
    "SLOSpec",
    "alerts_digest",
    "alerts_from_jsonl",
    "alerts_to_jsonl",
    "budget_pressure",
    "slo_specs_for",
]

#: Registered alert series names (see ALERT_REGISTRY in the registry
#: module); TEL002 resolves these constants like TEL001 resolves metric
#: name constants.
ALERT_BURN_RATE = "slo-burn-rate"
ALERT_BUDGET_EXHAUSTED = "slo-budget-exhausted"

_STATES = ("fire", "resolve")


@dataclass(frozen=True)
class SLOSpec:
    """One class's service-level objective.

    ``objective`` is the fraction of requests that must complete within
    ``target_s`` (e.g. ``0.99``); the error budget is ``1 - objective``.
    :meth:`from_sla` derives the objective from the class's SLA
    percentile -- a p99 SLA tolerates 1 % of requests over target.
    """

    request_class: str
    target_s: float
    objective: float = 0.99

    def __post_init__(self) -> None:
        if self.target_s <= 0:
            raise TelemetryError(
                f"SLO target must be > 0, got {self.target_s}"
            )
        if not 0.0 < self.objective < 1.0:
            raise TelemetryError(
                f"SLO objective must be in (0, 1), got {self.objective}"
            )

    @property
    def error_budget(self) -> float:
        """Tolerated bad-request fraction (``1 - objective``)."""
        return 1.0 - self.objective

    @classmethod
    def from_sla(
        cls, request_class: str, sla, objective: float | None = None
    ) -> "SLOSpec":
        """Derive the SLO from an :class:`~repro.apps.topology.SlaSpec`."""
        return cls(
            request_class=request_class,
            target_s=sla.target_s,
            objective=(
                objective if objective is not None else sla.percentile / 100.0
            ),
        )


def slo_specs_for(
    spec: "AppSpec", objective: float | None = None
) -> tuple[SLOSpec, ...]:
    """One :class:`SLOSpec` per request class of an application spec."""
    return tuple(
        SLOSpec.from_sla(rc.name, rc.sla, objective=objective)
        for rc in spec.request_classes
    )


@dataclass(frozen=True)
class Alert:
    """One deterministic alert transition (sim-clock stamped).

    ``name`` must be declared in
    :data:`~repro.telemetry.registry.ALERT_REGISTRY`; ``state`` is
    ``"fire"`` or ``"resolve"``.  The burn rates and budget consumption
    are snapshots at the transition, so a timeline of alerts doubles as
    a sparse burn-rate series.
    """

    name: str
    request_class: str
    state: str
    time: float
    fast_burn: float
    slow_burn: float
    budget_consumed: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "request_class": self.request_class,
            "state": self.state,
            "time": self.time,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "budget_consumed": self.budget_consumed,
        }


def alerts_to_jsonl(alerts: Iterable[Alert]) -> str:
    """Deterministic JSON-lines dump of an alert timeline.

    Sorted keys, compact separators, repr floats -- the same canonical
    form as :func:`~repro.telemetry.tracing.traces_to_jsonl`, so
    same-seed runs dump byte-identical alert streams.
    """
    lines = [
        json.dumps(alert.to_dict(), sort_keys=True, separators=(",", ":"))
        for alert in alerts
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def alerts_from_jsonl(text: str) -> list[Alert]:
    """Exact inverse of :func:`alerts_to_jsonl`.

    Validates ``state`` against the known transitions -- loaded alerts
    flow into reports (including raw-HTML dashboard cells), so a
    hand-edited sidecar must not smuggle arbitrary strings through.
    """
    out = []
    for line in text.splitlines():
        if not line.strip():
            continue
        payload = json.loads(line)
        if payload.get("state") not in _STATES:
            raise TelemetryError(
                f"alert state must be one of {_STATES}, "
                f"got {payload.get('state')!r}"
            )
        out.append(Alert(**payload))
    return out


def alerts_digest(jsonl: str) -> str:
    """Short BLAKE2b fingerprint of an alert stream (sidecar pinning)."""
    return hashlib.blake2b(jsonl.encode("utf-8"), digest_size=16).hexdigest()


def budget_pressure(budget_report: Mapping[str, Mapping[str, float]]) -> float:
    """Scalar SLO pressure of one run, from its per-class budget report.

    The worst class dominates: pressure is the maximum over classes of
    the error budget consumed, with the slow burn rate (normalised so a
    burn of 1.0 -- budget exactly exhausted over the window -- adds 1.0)
    as a tie-breaker weight for runs whose cumulative budgets are equal
    but which are burning at different rates *now*.  A pure function of
    :meth:`SLOMonitor.budget_report` output, so fleet allocation driven
    by it stays deterministic; returns 0.0 for an empty report.
    """
    pressure = 0.0
    for row in budget_report.values():
        consumed = float(row.get("budget_consumed", 0.0))
        slow = float(row.get("slow_burn", 0.0))
        pressure = max(pressure, consumed + 0.01 * slow)
    return round(pressure, 9)


class _WindowSum:
    """Rolling good/bad counts over the trailing ``span`` buckets."""

    __slots__ = ("buckets", "good", "bad", "span")

    def __init__(self, span: int) -> None:
        #: deque of ``[bucket_index, good, bad]`` (oldest first).
        self.buckets: deque[list] = deque()
        self.good = 0
        self.bad = 0
        self.span = span

    def advance(self, bucket: int) -> None:
        """Retire buckets that fell out of the window ending at ``bucket``."""
        buckets = self.buckets
        cutoff = bucket - self.span
        while buckets and buckets[0][0] <= cutoff:
            _b, g, b = buckets.popleft()
            self.good -= g
            self.bad -= b

    def add(self, bucket: int, good: int, bad: int) -> None:
        self.advance(bucket)
        buckets = self.buckets
        if buckets and buckets[-1][0] == bucket:
            tail = buckets[-1]
            tail[1] += good
            tail[2] += bad
        else:
            buckets.append([bucket, good, bad])
        self.good += good
        self.bad += bad


class _ClassState:
    """Per-class monitor state (sums, cumulative totals, alert flags)."""

    __slots__ = (
        "spec",
        "fast",
        "slow",
        "total_good",
        "total_bad",
        "burn_active",
        "budget_active",
        "gauge_bucket",
    )

    def __init__(self, spec: SLOSpec, fast_span: int, slow_span: int) -> None:
        self.spec = spec
        self.fast = _WindowSum(fast_span)
        self.slow = _WindowSum(slow_span)
        self.total_good = 0
        self.total_bad = 0
        self.burn_active = False
        self.budget_active = False
        self.gauge_bucket = -1

    def burn(self, window: _WindowSum) -> float:
        total = window.good + window.bad
        if not total:
            return 0.0
        return (window.bad / total) / self.spec.error_budget

    def budget_consumed(self) -> float:
        total = self.total_good + self.total_bad
        if not total:
            return 0.0
        return (self.total_bad / total) / self.spec.error_budget


class SLOMonitor:
    """Pure-observer streaming SLO evaluation with burn-rate alerting.

    Feed it completed requests via :meth:`observe` (or subscribe it to an
    :class:`~repro.apps.topology.Application` with :meth:`attach`); read
    :attr:`alerts`, :meth:`burn_rates`, and :meth:`budget_report`.

    ``hub`` (optional) receives ``slo_burn_rate`` /
    ``slo_error_budget_consumed`` gauges once per bucket advance and an
    ``slo_alert_transitions_total`` counter per transition -- all
    registered series, all written from inside existing completion
    callbacks (never a new engine event).

    With :meth:`set_service_budgets` (class -> service -> budgeted
    seconds, from the optimizer) plus :meth:`attach_services`, the
    monitor additionally counts per-(service, class) completions whose
    *service latency* exceeded the MIP's budget for that hop -- the
    streaming twin of the span-driven audit in
    :mod:`repro.telemetry.audit`.
    """

    def __init__(
        self,
        specs: Iterable[SLOSpec],
        clock: Callable[[], float],
        fast_window_s: float = 60.0,
        slow_window_s: float = 300.0,
        bucket_s: float = 5.0,
        burn_threshold: float = 4.0,
        resolve_threshold: float = 2.0,
        budget_resolve: float = 0.9,
        hub: "MetricsHub | None" = None,
    ) -> None:
        if bucket_s <= 0:
            raise TelemetryError(f"bucket_s must be > 0, got {bucket_s}")
        if fast_window_s < bucket_s or slow_window_s < fast_window_s:
            raise TelemetryError(
                "windows must satisfy bucket_s <= fast_window_s <= "
                f"slow_window_s, got {bucket_s}/{fast_window_s}/{slow_window_s}"
            )
        if resolve_threshold > burn_threshold:
            raise TelemetryError(
                "resolve_threshold must not exceed burn_threshold "
                f"({resolve_threshold} > {burn_threshold})"
            )
        self.clock = clock
        self.bucket_s = float(bucket_s)
        self.fast_window_s = float(fast_window_s)
        self.slow_window_s = float(slow_window_s)
        self.burn_threshold = float(burn_threshold)
        self.resolve_threshold = float(resolve_threshold)
        self.budget_resolve = float(budget_resolve)
        self.hub = hub
        fast_span = max(1, round(fast_window_s / bucket_s))
        slow_span = max(fast_span, round(slow_window_s / bucket_s))
        self._classes: dict[str, _ClassState] = {}
        for spec in specs:
            if spec.request_class in self._classes:
                raise TelemetryError(
                    f"duplicate SLO spec for class {spec.request_class!r}"
                )
            self._classes[spec.request_class] = _ClassState(
                spec, fast_span, slow_span
            )
        #: Chronological alert transitions (the deterministic timeline).
        self.alerts: list[Alert] = []
        #: class -> service -> budgeted seconds (set_service_budgets).
        self._service_budgets: dict[str, dict[str, float]] = {}
        #: (service, class) -> [within_budget, over_budget, budget_s].
        #: The budget is snapshotted at observe time (latest wins) so
        #: end-of-run reporting survives a re-solve that drops the pair
        #: from :attr:`_service_budgets`.
        self._service_counts: dict[tuple[str, str], list] = {}

    # -- subscription ------------------------------------------------------
    def attach(self, app: "Application") -> None:
        """Subscribe to end-to-end request completions of ``app``."""
        app.add_completion_listener(self.on_completion)

    def on_completion(self, request, rc, latency: float) -> None:
        """`Application` completion-listener adapter."""
        self.observe(rc.name, latency)

    def set_service_budgets(
        self, budgets: Mapping[str, Mapping[str, float]]
    ) -> None:
        """Install per-(class, service) budgeted seconds from the MIP."""
        self._service_budgets = {
            cls: dict(services) for cls, services in budgets.items()
        }

    def attach_services(self, app: "Application") -> None:
        """Subscribe to per-service completion hooks of every service."""

        def listener_for(service_name: str):
            def listener(request, request_class: str, latency: float) -> None:
                self.observe_service(service_name, request_class, latency)

            return listener

        for name in sorted(app.services):
            app.services[name].completion_listeners.append(listener_for(name))

    # -- observation -------------------------------------------------------
    def observe(self, request_class: str, latency: float) -> None:
        """Fold one completed request in and evaluate alert transitions."""
        state = self._classes.get(request_class)
        if state is None:
            raise TelemetryError(
                f"no SLO spec for request class {request_class!r} "
                f"(declared: {', '.join(sorted(self._classes)) or 'none'})"
            )
        now = self.clock()
        bucket = int(now / self.bucket_s)
        bad = 1 if latency > state.spec.target_s else 0
        good = 1 - bad
        state.fast.add(bucket, good, bad)
        state.slow.add(bucket, good, bad)
        state.total_good += good
        state.total_bad += bad

        fast = state.burn(state.fast)
        slow = state.burn(state.slow)
        consumed = state.budget_consumed()

        if not state.burn_active:
            if fast >= self.burn_threshold and slow >= self.burn_threshold:
                state.burn_active = True
                self._emit(
                    ALERT_BURN_RATE, request_class, "fire",
                    now, fast, slow, consumed,
                )
        elif fast <= self.resolve_threshold and slow <= self.resolve_threshold:
            state.burn_active = False
            self._emit(
                ALERT_BURN_RATE, request_class, "resolve",
                now, fast, slow, consumed,
            )

        if not state.budget_active:
            if consumed >= 1.0:
                state.budget_active = True
                self._emit(
                    ALERT_BUDGET_EXHAUSTED, request_class, "fire",
                    now, fast, slow, consumed,
                )
        elif consumed < self.budget_resolve:
            state.budget_active = False
            self._emit(
                ALERT_BUDGET_EXHAUSTED, request_class, "resolve",
                now, fast, slow, consumed,
            )

        if self.hub is not None and bucket != state.gauge_bucket:
            state.gauge_bucket = bucket
            self.hub.observe_gauge(
                "slo_burn_rate", fast,
                {"request": request_class, "window": "fast"},
            )
            self.hub.observe_gauge(
                "slo_burn_rate", slow,
                {"request": request_class, "window": "slow"},
            )
            self.hub.observe_gauge(
                "slo_error_budget_consumed", consumed,
                {"request": request_class},
            )

    def observe_service(
        self, service: str, request_class: str, latency: float
    ) -> None:
        """Count one per-service completion against its MIP budget."""
        budget = self._service_budgets.get(request_class, {}).get(service)
        if budget is None:
            return
        counts = self._service_counts.get((service, request_class))
        if counts is None:
            counts = self._service_counts[(service, request_class)] = [
                0, 0, budget,
            ]
        else:
            counts[2] = budget
        counts[1 if latency > budget else 0] += 1

    def _emit(
        self,
        name: str,
        request_class: str,
        state: str,
        now: float,
        fast: float,
        slow: float,
        consumed: float,
    ) -> None:
        if name not in ALERT_REGISTRY:
            raise TelemetryError(
                f"alert {name!r} is not declared in "
                "repro.telemetry.registry.ALERT_REGISTRY "
                f"(known: {', '.join(ALERT_REGISTRY.names())})"
            )
        if state not in _STATES:
            raise TelemetryError(
                f"alert state must be one of {_STATES}, got {state!r}"
            )
        self.alerts.append(
            Alert(
                name=name,
                request_class=request_class,
                state=state,
                time=now,
                fast_burn=fast,
                slow_burn=slow,
                budget_consumed=consumed,
            )
        )
        if self.hub is not None:
            self.hub.inc_counter(
                "slo_alert_transitions_total",
                labels={
                    "request": request_class,
                    "alert": name,
                    "state": state,
                },
            )

    # -- queries -----------------------------------------------------------
    def _advance_windows(self, state: _ClassState) -> None:
        """Retire buckets the sim clock has moved past.

        Completions evict lazily inside :meth:`_WindowSum.add`; queries
        issued after the clock advanced beyond the last completion must
        evict against *now* so windowed burn rates decay toward zero
        instead of reporting stale fractions.
        """
        bucket = int(self.clock() / self.bucket_s)
        state.fast.advance(bucket)
        state.slow.advance(bucket)

    def classes(self) -> list[str]:
        return sorted(self._classes)

    def burn_rates(self, request_class: str) -> tuple[float, float]:
        """Current (fast, slow) burn rates for one class."""
        state = self._classes[request_class]
        self._advance_windows(state)
        return state.burn(state.fast), state.burn(state.slow)

    def budget_consumed(self, request_class: str) -> float:
        return self._classes[request_class].budget_consumed()

    def active_alerts(self) -> list[tuple[str, str]]:
        """Currently firing ``(request_class, alert_name)`` pairs, sorted."""
        out = []
        for cls in sorted(self._classes):
            state = self._classes[cls]
            if state.burn_active:
                out.append((cls, ALERT_BURN_RATE))
            if state.budget_active:
                out.append((cls, ALERT_BUDGET_EXHAUSTED))
        return out

    def budget_report(self) -> dict[str, dict[str, float]]:
        """Per-class budget accounting (JSON-able, deterministic order)."""
        report: dict[str, dict[str, float]] = {}
        for cls in sorted(self._classes):
            state = self._classes[cls]
            self._advance_windows(state)
            fast, slow = state.burn(state.fast), state.burn(state.slow)
            report[cls] = {
                "good": float(state.total_good),
                "bad": float(state.total_bad),
                "objective": state.spec.objective,
                "target_s": state.spec.target_s,
                "budget_consumed": round(state.budget_consumed(), 9),
                "fast_burn": round(fast, 9),
                "slow_burn": round(slow, 9),
            }
        return report

    def service_budget_report(self) -> dict[str, dict[str, float]]:
        """Per-``service/class`` budget-breach fractions (needs budgets)."""
        report: dict[str, dict[str, float]] = {}
        for (service, cls), (within, over, budget_s) in sorted(
            self._service_counts.items()
        ):
            total = within + over
            report[f"{service}/{cls}"] = {
                "budget_s": budget_s,
                "completions": float(total),
                "over_budget_fraction": (
                    round(over / total, 9) if total else 0.0
                ),
            }
        return report

    def alerts_jsonl(self) -> str:
        """Canonical serialization of the alert timeline so far."""
        return alerts_to_jsonl(self.alerts)
