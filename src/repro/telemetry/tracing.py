"""Distributed tracing: per-request span trees + critical-path attribution.

The windowed :class:`~repro.telemetry.metrics.MetricsHub` answers
*aggregate* questions (p99 over a window); this module answers the
request-level one the paper's SLA-decomposition math rests on: **where
did this request's latency actually accrue?**  It is the repro's
Jaeger substitute.

Span model
==========

Each sampled request carries a :class:`Trace`: a tree of :class:`Span`
nodes, one per call-tree hop, created as the request propagates through
``repro.net.rpc`` semantics (nested calls holding the caller thread,
event-driven daemon-pool calls), MQ consumer groups, and replica queues.
A span records absolute timestamps for every *segment* of its residency:

* ``queue``  -- waiting for a resource: replica availability, a thread
  slot, a CPU core, a daemon slot, or MQ queue residency;
* ``service`` -- executing the handler (plus the network round-trip);
* ``downstream`` -- blocked on a child span (the segment references it).

Segments tile the span's timeline exactly -- every simulated instant of
a request's life belongs to exactly one segment of exactly one span --
which is what makes the critical path *exact* rather than sampled.

Critical path
=============

:func:`critical_path` walks a finished trace from arrival to completion
and returns contiguous :class:`PathSegment`\\ s attributing every moment
of end-to-end latency to a ``(service, phase)`` pair: time inside a
``downstream`` segment is recursively attributed to the child; time
after a span's own activity (waiting for MQ / event-driven subtrees) is
attributed to the child that finished *last* (the one actually gating
completion).  The segment durations sum to the request's end-to-end
latency to float precision; :class:`Tracer` can verify this per request
(``validate=True``).

:class:`CriticalPathSummary` aggregates attributions per request class
(optionally per completion window), so experiments can print
"p99 of class A is 62 % queue wait at nginx, 23 % service time at
post-storage" -- the direct cross-check of §IV's per-service latency
targets used by ``fig09_10_model_accuracy``.

Exporters
=========

:func:`traces_to_jsonl` dumps span trees as deterministic JSON lines
(byte-identical for same-seed runs -- the determinism suite pins this);
:func:`traces_to_chrome` emits the Chrome/Perfetto ``trace_event``
format so traces load in ``chrome://tracing`` / `ui.perfetto.dev`.

Sampling
========

Tracing costs memory per sampled request, so :class:`Tracer` takes
``sample_every_n`` -- an integer (sample every n-th request of each
class) or a per-class mapping; classes absent from an explicit
``classes`` filter are never traced.  Sampling is a deterministic
per-class counter, never randomness: the same seed traces the same
requests regardless of job count.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.errors import TelemetryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.messages import Request
    from repro.telemetry.metrics import CounterHandle, MetricsHub

__all__ = [
    "CriticalPathSummary",
    "PathSegment",
    "Span",
    "Trace",
    "Tracer",
    "attribute_latency",
    "critical_path",
    "trace_from_dict",
    "traces_from_jsonl",
    "traces_to_chrome",
    "traces_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]

#: Span phases (the breakdown axis of the attribution).
PHASE_QUEUE = "queue"
PHASE_SERVICE = "service"
PHASE_DOWNSTREAM = "downstream"
PHASES = (PHASE_QUEUE, PHASE_SERVICE, PHASE_DOWNSTREAM)


class Span:
    """One service visit of one traced request.

    Created by the runtime as context propagates; segments are recorded
    in time order and tile ``[start, <end of own activity>]``.  ``end``
    (the completion of the whole subtree, including MQ / event-driven
    children) is set when the hop's ``done`` event fires.
    """

    __slots__ = (
        "trace",
        "span_id",
        "parent_id",
        "service",
        "mode",
        "replica",
        "start",
        "response_end",
        "end",
        "segments",
        "children",
    )

    def __init__(
        self,
        trace: "Trace",
        span_id: int,
        parent_id: int | None,
        service: str,
        mode: str,
        start: float,
    ) -> None:
        self.trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.service = service
        self.mode = mode
        self.replica: str | None = None
        self.start = start
        self.response_end: float | None = None
        self.end: float | None = None
        #: (phase, t0, t1, child span or None), in time order.
        self.segments: list[tuple[str, float, float, "Span | None"]] = []
        self.children: list["Span"] = []

    def new_child(self, service: str, mode: str, start: float) -> "Span":
        """Create (and register) a child span for a downstream call."""
        child = self.trace._new_span(service, mode, start, parent=self)
        self.children.append(child)
        return child

    def record(
        self,
        phase: str,
        t0: float,
        t1: float,
        child: "Span | None" = None,
    ) -> None:
        """Append one segment; zero-length segments are dropped."""
        if t1 > t0:
            self.segments.append((phase, t0, t1, child))

    def phase_totals(self) -> dict[str, float]:
        """Seconds spent per phase in this span's own segments."""
        totals = {PHASE_QUEUE: 0.0, PHASE_SERVICE: 0.0, PHASE_DOWNSTREAM: 0.0}
        for phase, t0, t1, _child in self.segments:
            totals[phase] += t1 - t0
        return totals

    def walk(self) -> Iterable["Span"]:
        """This span and all descendants, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        """JSON-ready form (children nested, child refs by span id)."""
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "service": self.service,
            "mode": self.mode,
            "replica": self.replica,
            "start": self.start,
            "response_end": self.response_end,
            "end": self.end,
            "segments": [
                [phase, t0, t1, child.span_id if child is not None else None]
                for phase, t0, t1, child in self.segments
            ],
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"<Span {self.span_id} {self.service} [{self.mode}] "
            f"start={self.start:.6f}>"
        )


class Trace:
    """The span tree of one sampled request."""

    __slots__ = ("request_id", "request_class", "arrival", "completion", "root", "_next_id")

    def __init__(self, request_id: int, request_class: str, arrival: float) -> None:
        self.request_id = request_id
        self.request_class = request_class
        self.arrival = arrival
        self.completion: float | None = None
        self.root: Span | None = None
        self._next_id = 0

    def _new_span(
        self, service: str, mode: str, start: float, parent: Span | None = None
    ) -> Span:
        self._next_id += 1
        return Span(
            self,
            self._next_id,
            parent.span_id if parent is not None else None,
            service,
            mode,
            start,
        )

    def begin_root(self, service: str, mode: str) -> Span:
        if self.root is not None:
            raise TelemetryError(f"trace {self.request_id} already has a root span")
        self.root = self._new_span(service, mode, self.arrival)
        return self.root

    @property
    def latency(self) -> float:
        if self.completion is None:
            raise TelemetryError(f"trace {self.request_id} has not completed")
        return self.completion - self.arrival

    def spans(self) -> list[Span]:
        return list(self.root.walk()) if self.root is not None else []

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "request_class": self.request_class,
            "arrival": self.arrival,
            "completion": self.completion,
            "latency": self.latency if self.completion is not None else None,
            "root": self.root.to_dict() if self.root is not None else None,
        }


# ----------------------------------------------------------------------
# Critical-path analysis
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PathSegment:
    """One contiguous slice of a request's critical path."""

    service: str
    phase: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def _attribute(span: Span, t_lo: float, t_hi: float, out: list[PathSegment]) -> None:
    """Attribute ``[t_lo, t_hi]`` of the timeline to ``span``'s subtree.

    Invariant: the appended segments exactly tile ``[t_lo, t_hi]`` --
    every recursion either covers its clipped interval with own segments
    or delegates it whole, so durations telescope to ``t_hi - t_lo``.
    """
    cursor = t_lo
    for phase, s0, s1, child in span.segments:
        a = max(cursor, s0)
        b = min(t_hi, s1)
        if b <= a:
            continue
        if child is not None:
            _attribute(child, a, b, out)
        else:
            out.append(PathSegment(span.service, phase, a, b))
        cursor = b
        if cursor >= t_hi:
            return
    if cursor >= t_hi:
        return
    # Past the span's own activity: the remaining time waits on
    # asynchronous subtrees (MQ publishes, event-driven legs).  The child
    # finishing last is the one gating completion, so it owns the tail.
    waiting = [c for c in span.children if c.end is not None and c.end > cursor]
    if not waiting:
        # Defensive: no child explains the tail (e.g. a snapshot of a
        # live trace) -- keep the attribution exhaustive by charging the
        # span itself as downstream wait.
        out.append(PathSegment(span.service, PHASE_DOWNSTREAM, cursor, t_hi))
        return
    last = max(waiting, key=lambda c: (c.end, c.span_id))
    a = max(cursor, last.start)
    if a > cursor:
        out.append(PathSegment(span.service, PHASE_DOWNSTREAM, cursor, a))
    b = min(t_hi, last.end)  # type: ignore[arg-type]
    if b > a:
        _attribute(last, a, b, out)
    if b < t_hi:
        out.append(PathSegment(span.service, PHASE_DOWNSTREAM, b, t_hi))


def critical_path(trace: Trace) -> list[PathSegment]:
    """The chain of (service, phase) slices gating a request end to end.

    The returned segments are contiguous, cover ``[arrival, completion]``
    exactly, and therefore sum to the end-to-end latency (to float
    precision -- the determinism suite asserts 1e-6).
    """
    if trace.root is None or trace.completion is None:
        raise TelemetryError(
            f"trace {trace.request_id} is incomplete; critical path needs a "
            "finished span tree"
        )
    out: list[PathSegment] = []
    _attribute(trace.root, trace.arrival, trace.completion, out)
    return out


def attribute_latency(trace: Trace) -> dict[tuple[str, str], float]:
    """Aggregate a trace's critical path into (service, phase) -> seconds."""
    agg: dict[tuple[str, str], float] = {}
    for seg in critical_path(trace):
        key = (seg.service, seg.phase)
        agg[key] = agg.get(key, 0.0) + seg.duration
    return agg


@dataclass
class _ClassAggregate:
    """Attribution totals for one request class (one window bucket)."""

    requests: int = 0
    total_latency: float = 0.0
    by_location: dict[tuple[str, str], float] = field(default_factory=dict)

    def add(self, latency: float, attribution: Mapping[tuple[str, str], float]) -> None:
        self.requests += 1
        self.total_latency += latency
        for key, seconds in attribution.items():
            self.by_location[key] = self.by_location.get(key, 0.0) + seconds

    def fractions(self) -> list[tuple[str, str, float]]:
        """(service, phase, fraction of total latency), largest first."""
        if self.total_latency <= 0:
            return []
        items = [
            (service, phase, seconds / self.total_latency)
            for (service, phase), seconds in self.by_location.items()
        ]
        items.sort(key=lambda item: (-item[2], item[0], item[1]))
        return items


class CriticalPathSummary:
    """Aggregated critical-path attributions, per class (and window).

    ``window_s=None`` pools everything per request class;  with a window
    size, traces are bucketed by *completion* window so experiments can
    line attributions up against their per-window percentile series.
    """

    def __init__(self, window_s: float | None = None) -> None:
        if window_s is not None and window_s <= 0:
            raise TelemetryError(f"window must be > 0, got {window_s}")
        self.window_s = window_s
        #: (request class, window index or None) -> aggregate
        self._aggregates: dict[tuple[str, int | None], _ClassAggregate] = {}

    def add(self, trace: Trace) -> dict[tuple[str, str], float]:
        """Fold one finished trace in; returns its attribution."""
        attribution = attribute_latency(trace)
        window = (
            int(trace.completion // self.window_s)
            if self.window_s is not None
            else None
        )
        key = (trace.request_class, window)
        agg = self._aggregates.get(key)
        if agg is None:
            agg = self._aggregates[key] = _ClassAggregate()
        agg.add(trace.latency, attribution)
        return attribution

    def classes(self) -> list[str]:
        return sorted({cls for cls, _w in self._aggregates})

    def windows(self, request_class: str) -> list[int]:
        return sorted(
            w
            for cls, w in self._aggregates
            if cls == request_class and w is not None
        )

    def aggregate(
        self, request_class: str, window: int | None = None
    ) -> _ClassAggregate | None:
        return self._aggregates.get((request_class, window))

    def pooled(self, request_class: str) -> _ClassAggregate:
        """All windows of one class folded together."""
        pooled = _ClassAggregate()
        for (cls, _w), agg in sorted(self._aggregates.items(), key=lambda kv: (
            kv[0][0], -1 if kv[0][1] is None else kv[0][1],
        )):
            if cls != request_class:
                continue
            pooled.requests += agg.requests
            pooled.total_latency += agg.total_latency
            for key, seconds in agg.by_location.items():
                pooled.by_location[key] = pooled.by_location.get(key, 0.0) + seconds
        return pooled

    def render(self, top: int = 4) -> str:
        """Per-class one-liners: where the latency mass sits."""
        lines = []
        for cls in self.classes():
            agg = self.pooled(cls)
            if not agg.requests:
                continue
            parts = [
                f"{fraction:.1%} {phase} at {service}"
                for service, phase, fraction in agg.fractions()[:top]
            ]
            mean = agg.total_latency / agg.requests
            lines.append(
                f"{cls}: {agg.requests} traced, mean {mean * 1e3:.1f} ms -- "
                + ", ".join(parts)
            )
        return "\n".join(lines) if lines else "(no traces collected)"


# ----------------------------------------------------------------------
# The tracer (sampling + collection)
# ----------------------------------------------------------------------
class Tracer:
    """Decides which requests to trace and collects finished traces.

    ``sample_every_n`` -- an int (every n-th request of each class) or a
    per-class mapping (classes absent from the mapping fall back to
    ``default_every_n``).  ``classes`` restricts tracing to the given
    request classes.  Sampling is a deterministic per-class counter: the
    first request of a class is always traced, then every n-th after it.

    ``validate=True`` recomputes each finished trace's critical path and
    raises :class:`~repro.errors.TelemetryError` if the attributed
    durations do not sum to the end-to-end latency within ``1e-6`` -- the
    executable form of the exactness contract.
    """

    def __init__(
        self,
        sample_every_n: int | Mapping[str, int] = 1,
        classes: Iterable[str] | None = None,
        default_every_n: int = 1,
        max_traces: int | None = None,
        hub: "MetricsHub | None" = None,
        validate: bool = False,
    ) -> None:
        if isinstance(sample_every_n, int):
            if sample_every_n < 1:
                raise TelemetryError(
                    f"sample_every_n must be >= 1, got {sample_every_n}"
                )
            self._every: dict[str, int] = {}
            self._default_every = sample_every_n
        else:
            self._every = dict(sample_every_n)
            for cls, n in self._every.items():
                if n < 1:
                    raise TelemetryError(
                        f"sample_every_n[{cls!r}] must be >= 1, got {n}"
                    )
            if default_every_n < 1:
                raise TelemetryError(
                    f"default_every_n must be >= 1, got {default_every_n}"
                )
            self._default_every = default_every_n
        self.classes = frozenset(classes) if classes is not None else None
        self.max_traces = max_traces
        self.hub = hub
        self.validate = bool(validate)
        self._counters: dict[str, int] = {}
        #: Per-class interned counter writers, so a sampled request does
        #: not rebuild the labels dict / redo the series lookup.
        self._sampled_handles: dict[str, "CounterHandle"] = {}
        self._next_trace_id = 0
        self.finished: list[Trace] = []
        self.dropped = 0

    def begin(self, request: "Request", service: str, mode: str) -> Span | None:
        """Sampling decision for one submitted request.

        Returns the root span to thread through the runtime, or ``None``
        when the request is not sampled (the runtime then skips all span
        bookkeeping).
        """
        cls = request.request_class
        if self.classes is not None and cls not in self.classes:
            return None
        seen = self._counters.get(cls, 0)
        self._counters[cls] = seen + 1
        if seen % self._every.get(cls, self._default_every):
            return None
        if self.max_traces is not None and len(self.finished) >= self.max_traces:
            self.dropped += 1
            return None
        # Tracer-local id, not ``request.request_id``: the tracer may
        # sample only a subset of classes, and dense ids keep dumps
        # stable when the sampling configuration changes.
        trace = Trace(self._next_trace_id, cls, request.arrival_time)
        self._next_trace_id += 1
        if self.hub is not None:
            handle = self._sampled_handles.get(cls)
            if handle is None:
                handle = self._sampled_handles[cls] = self.hub.counter_handle(
                    "traces_sampled_total", labels={"request": cls}
                )
            handle.inc()
        return trace.begin_root(service, mode)

    def finish(self, trace: Trace, completion: float) -> None:
        """Record a trace whose request tree has completed."""
        trace.completion = completion
        if self.validate:
            attributed = sum(seg.duration for seg in critical_path(trace))
            if abs(attributed - trace.latency) > 1e-6:
                raise TelemetryError(
                    f"critical path of request {trace.request_id} "
                    f"({trace.request_class}) sums to {attributed!r}, "
                    f"end-to-end latency is {trace.latency!r}"
                )
        self.finished.append(trace)

    def summary(self, window_s: float | None = None) -> CriticalPathSummary:
        """Critical-path attribution over all finished traces."""
        summary = CriticalPathSummary(window_s=window_s)
        for trace in self.finished:
            summary.add(trace)
        return summary


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def traces_to_jsonl(traces: Iterable[Trace]) -> str:
    """One deterministic JSON object per finished trace, newline-joined.

    Key order and float formatting are fixed (``sort_keys`` + repr
    floats), so same-seed runs dump byte-identical lines regardless of
    process count -- the property the determinism suite pins.
    """
    lines = [
        json.dumps(trace.to_dict(), sort_keys=True, separators=(",", ":"))
        for trace in traces
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def _span_from_dict(trace: Trace, payload: dict, by_id: dict[int, "Span"]) -> Span:
    span = Span(
        trace,
        payload["span_id"],
        payload["parent_id"],
        payload["service"],
        payload["mode"],
        payload["start"],
    )
    span.replica = payload["replica"]
    span.response_end = payload["response_end"]
    span.end = payload["end"]
    by_id[span.span_id] = span
    span.children = [
        _span_from_dict(trace, child, by_id) for child in payload["children"]
    ]
    # Child refs in segments are span ids until the whole tree exists;
    # trace_from_dict resolves them in a second pass.
    span.segments = [tuple(seg) for seg in payload["segments"]]
    return span


def trace_from_dict(payload: dict) -> Trace:
    """Rebuild one :class:`Trace` from its :meth:`Trace.to_dict` form."""
    trace = Trace(
        payload["request_id"], payload["request_class"], payload["arrival"]
    )
    trace.completion = payload["completion"]
    if payload["root"] is not None:
        by_id: dict[int, Span] = {}
        trace.root = _span_from_dict(trace, payload["root"], by_id)
        for span in trace.root.walk():
            span.segments = [
                (phase, t0, t1, by_id[child] if child is not None else None)
                for phase, t0, t1, child in span.segments
            ]
        trace._next_id = max(by_id)
    return trace


def traces_from_jsonl(text: str) -> list[Trace]:
    """Parse :func:`traces_to_jsonl` output back into live traces.

    The exact inverse of the exporter: ``traces_to_jsonl(
    traces_from_jsonl(text)) == text`` for any of its outputs, so dumps
    can round-trip through the results store and still feed the
    critical-path and Chrome-trace tooling.
    """
    return [
        trace_from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


def write_jsonl(traces: Iterable[Trace], path: str | Path) -> int:
    """Write :func:`traces_to_jsonl` output to ``path``; returns #traces."""
    text = traces_to_jsonl(traces)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(text, encoding="utf-8")
    return 0 if not text else text.count("\n")


def traces_to_chrome(traces: Iterable[Trace]) -> dict:
    """Chrome/Perfetto ``trace_event`` dump of the span trees.

    Each request becomes one *process* (pid = request id) whose rows
    (tids) are spans; segments are emitted as nested complete events so
    the queue/service/downstream breakdown is visible on the timeline.
    Times are microseconds, as the format requires.
    """
    events: list[dict] = []
    for trace in traces:
        if trace.root is None:
            continue
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": trace.request_id,
                "tid": 0,
                "args": {
                    "name": f"request {trace.request_id} [{trace.request_class}]"
                },
            }
        )
        for span in trace.root.walk():
            end = span.end if span.end is not None else span.start
            events.append(
                {
                    "ph": "X",
                    "name": f"{span.service} [{span.mode}]",
                    "cat": trace.request_class,
                    "pid": trace.request_id,
                    "tid": span.span_id,
                    "ts": span.start * 1e6,
                    "dur": (end - span.start) * 1e6,
                    "args": {
                        "replica": span.replica,
                        "phases_ms": {
                            phase: total * 1e3
                            for phase, total in sorted(span.phase_totals().items())
                        },
                    },
                }
            )
            for phase, t0, t1, child in span.segments:
                events.append(
                    {
                        "ph": "X",
                        "name": phase if child is None else f"{phase}:{child.service}",
                        "cat": trace.request_class,
                        "pid": trace.request_id,
                        "tid": span.span_id,
                        "ts": t0 * 1e6,
                        "dur": (t1 - t0) * 1e6,
                        "args": {},
                    }
                )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(traces: Iterable[Trace], path: str | Path) -> int:
    """Write the ``trace_event`` dump to ``path``; returns #events."""
    payload = traces_to_chrome(traces)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    return len(payload["traceEvents"])
