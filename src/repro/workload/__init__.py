"""Workload generation: load patterns, request mixes, Poisson arrivals."""

from repro.workload.generator import LoadGenerator
from repro.workload.mixes import RequestMix
from repro.workload.traces import (
    TraceEntry,
    TracePlayer,
    TraceRecorder,
    WorkloadTrace,
)
from repro.workload.patterns import (
    BurstLoad,
    ComposedLoad,
    ConstantLoad,
    DiurnalLoad,
    RampLoad,
)

__all__ = [
    "BurstLoad",
    "ComposedLoad",
    "ConstantLoad",
    "DiurnalLoad",
    "LoadGenerator",
    "RampLoad",
    "RequestMix",
    "TraceEntry",
    "TracePlayer",
    "TraceRecorder",
    "WorkloadTrace",
]
