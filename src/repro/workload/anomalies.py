"""Performance-anomaly injection.

Used in two places from the paper: the Fig. 2 case study throttles a
specific tier's CPU mid-run, and Firm's agents are trained "by injecting
performance anomalies during online deployment".  The injector runs as a
simulation process, periodically throttling a random service's CPU speed
for a bounded duration and restoring it afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.topology import Application
from repro.errors import ConfigurationError
from repro.sim.random import RandomStreams

__all__ = ["AnomalyInjector", "InjectedAnomaly"]


@dataclass(frozen=True)
class InjectedAnomaly:
    """One injected CPU throttle (for experiment logs)."""

    start_s: float
    end_s: float
    service: str
    speed_factor: float


class AnomalyInjector:
    """Randomly throttles services' CPUs, one anomaly at a time."""

    def __init__(
        self,
        app: Application,
        streams: RandomStreams,
        probability_per_interval: float = 0.25,
        interval_s: float = 60.0,
        duration_s: float = 60.0,
        speed_range: tuple[float, float] = (0.2, 0.6),
        services: list[str] | None = None,
    ) -> None:
        if not 0 <= probability_per_interval <= 1:
            raise ConfigurationError("probability must be in [0, 1]")
        if interval_s <= 0 or duration_s <= 0:
            raise ConfigurationError("interval and duration must be > 0")
        low, high = speed_range
        if not 0 < low <= high <= 1:
            raise ConfigurationError(f"bad speed range {speed_range}")
        self.app = app
        self._rng = streams.stream(f"anomalies:{app.spec.name}")
        self.probability = float(probability_per_interval)
        self.interval_s = float(interval_s)
        self.duration_s = float(duration_s)
        self.speed_range = (float(low), float(high))
        self.services = services if services is not None else list(app.services)
        unknown = set(self.services) - set(app.services)
        if unknown:
            raise ConfigurationError(f"unknown services: {sorted(unknown)}")
        self.injected: list[InjectedAnomaly] = []
        self._started = False

    def start(self) -> None:
        if self._started:
            raise ConfigurationError("injector already started")
        self._started = True
        self.app.env.process(self._loop())

    def _loop(self):
        env = self.app.env
        while True:
            yield env.timeout(self.interval_s)
            if self._rng.random() >= self.probability:
                continue
            service = str(self._rng.choice(self.services))
            factor = float(self._rng.uniform(*self.speed_range))
            start = env.now
            self.app.services[service].set_speed_factor(factor)
            yield env.timeout(self.duration_s)
            self.app.services[service].set_speed_factor(1.0)
            self.injected.append(
                InjectedAnomaly(start, env.now, service, factor)
            )
