"""Default request mixes per application (§VII-C).

The paper gives the interactive-class ratios; classes triggered by other
actions (timeline updates by posts, sentiment analysis by posts, detection
and processing jobs by uploads) get rates derived from their triggers:

* social network: post : comment : download-image : read-timeline from
  §VII-C with comments folded into ``upload-post``; ``update-timeline``
  and ``sentiment-analysis`` follow the post rate; ``object-detect``
  follows the image-upload rate.
* media service: upload-video : get-info : download-video : rate-video =
  1 : 100 : 25 : 25; each upload triggers one transcode and one thumbnail.
* video pipeline: four high:low priority splits (5:95, 25:75, 50:50,
  75:25) are explored; deployment-time skews use 40:60 and 60:40.
"""

from __future__ import annotations

from repro.workload.mixes import RequestMix

__all__ = [
    "social_network_mix",
    "vanilla_social_network_mix",
    "media_service_mix",
    "video_pipeline_mix",
    "skewed_mixes",
    "default_mix_for",
]


def social_network_mix() -> RequestMix:
    return RequestMix(
        {
            "upload-post": 8.0,
            "read-timeline": 25.0,
            "download-image": 15.0,
            "upload-image": 3.0,
            "update-timeline": 8.0,
            "sentiment-analysis": 8.0,
            "object-detect": 3.0,
        }
    )


def vanilla_social_network_mix() -> RequestMix:
    return RequestMix(
        {
            "upload-post": 8.0,
            "read-timeline": 25.0,
            "download-image": 15.0,
            "upload-image": 3.0,
            "update-timeline": 8.0,
        }
    )


def media_service_mix() -> RequestMix:
    return RequestMix(
        {
            "upload-video": 1.0,
            "get-info": 100.0,
            "download-video": 25.0,
            "rate-video": 25.0,
            "transcode-video": 1.0,
            "generate-thumbnail": 1.0,
        }
    )


def video_pipeline_mix(high_fraction: float = 0.25) -> RequestMix:
    """High/low priority split; §VII-C explores 5:95 up to 75:25."""
    if not 0 < high_fraction < 1:
        raise ValueError(f"high fraction must be in (0, 1), got {high_fraction}")
    return RequestMix(
        {"high-priority": high_fraction, "low-priority": 1.0 - high_fraction}
    )


def skewed_mixes(app_name: str) -> list[RequestMix]:
    """The §VII-E skewed-load mixes (not seen during exploration)."""
    if app_name in ("social-network", "vanilla-social-network"):
        base = (
            social_network_mix()
            if app_name == "social-network"
            else vanilla_social_network_mix()
        )
        return [
            base.scaled("upload-post", 2.0).scaled("update-timeline", 2.0),
            base.scaled("upload-post", 0.5).scaled("update-timeline", 0.5),
        ]
    if app_name == "media-service":
        base = media_service_mix()
        return [
            base.scaled("upload-video", 2.0).scaled("rate-video", 2.0),
            base.scaled("upload-video", 0.5).scaled("rate-video", 0.5),
        ]
    if app_name == "video-pipeline":
        return [video_pipeline_mix(0.40), video_pipeline_mix(0.60)]
    raise ValueError(f"unknown application {app_name!r}")


def default_mix_for(app_name: str) -> RequestMix:
    """The exploration-time mix for each §VI application."""
    if app_name == "social-network":
        return social_network_mix()
    if app_name == "vanilla-social-network":
        return vanilla_social_network_mix()
    if app_name == "media-service":
        return media_service_mix()
    if app_name == "video-pipeline":
        return video_pipeline_mix()
    raise ValueError(f"unknown application {app_name!r}")
