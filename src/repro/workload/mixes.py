"""Request-class mixes: the ratios of request types in a workload.

A :class:`RequestMix` assigns each request class a weight; the aggregate
RPS of a load pattern is split across classes proportionally.  The default
mixes follow §VII-C; the skewed variants (§VII-E) double or halve the
update-type requests, or shift the priority split for the video pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ConfigurationError

__all__ = ["RequestMix"]


@dataclass(frozen=True)
class RequestMix:
    """Normalised weights over request classes."""

    weights: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.weights:
            raise ConfigurationError("request mix needs at least one class")
        for name, weight in self.weights.items():
            if weight < 0:
                raise ConfigurationError(
                    f"negative weight for {name!r}: {weight}"
                )
        total = sum(self.weights.values())
        if total <= 0:
            raise ConfigurationError("request mix weights sum to zero")
        object.__setattr__(
            self,
            "weights",
            {name: weight / total for name, weight in self.weights.items()},
        )

    def fraction(self, class_name: str) -> float:
        """Normalised share of ``class_name`` (0 if absent)."""
        return self.weights.get(class_name, 0.0)

    def classes(self) -> list[str]:
        return list(self.weights)

    def scaled(self, class_name: str, factor: float) -> "RequestMix":
        """A new mix with one class's weight multiplied by ``factor``.

        ``factor=2`` doubles and ``factor=0.5`` halves the class -- the
        paper's skewed-load constructions.
        """
        if class_name not in self.weights:
            raise ConfigurationError(f"unknown class {class_name!r}")
        if factor < 0:
            raise ConfigurationError(f"factor must be >= 0, got {factor}")
        weights = dict(self.weights)
        weights[class_name] = weights[class_name] * factor
        return RequestMix(weights)

    def ratio_string(self) -> str:
        """Human-readable ``a:b:c`` ratio (for experiment reports)."""
        smallest = min(w for w in self.weights.values() if w > 0)
        parts = [f"{name}={weight / smallest:.3g}" for name, weight in self.weights.items()]
        return " : ".join(parts)
