"""Load patterns: time-varying request-per-second profiles (§VII-E).

The paper evaluates three load shapes:

* **constant** -- Poisson arrivals at a fixed RPS;
* **dynamic** -- diurnal patterns (RPS ramps up then down) and bursts
  (sharp 50-125 % increases);
* **skewed** -- same shapes but with a request-class mix that differs from
  the one used during exploration (handled by the mix, not the pattern).

A pattern is a callable ``rate(t) -> float`` giving the aggregate RPS at
simulation time ``t``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["ConstantLoad", "DiurnalLoad", "BurstLoad", "RampLoad", "ComposedLoad"]


@dataclass(frozen=True)
class ConstantLoad:
    """Fixed aggregate RPS."""

    rps: float

    def __post_init__(self) -> None:
        if self.rps <= 0:
            raise ConfigurationError(f"rps must be > 0, got {self.rps}")

    def __call__(self, t: float) -> float:
        return self.rps

    @property
    def peak(self) -> float:
        return self.rps


@dataclass(frozen=True)
class DiurnalLoad:
    """Sinusoidal day/night pattern between ``low`` and ``high`` RPS.

    The rate starts at ``low``, peaks at ``high`` halfway through
    ``period_s``, and returns to ``low`` -- the paper's "gradually
    increases then gradually decreases" shape.
    """

    low: float
    high: float
    period_s: float

    def __post_init__(self) -> None:
        if not 0 < self.low <= self.high:
            raise ConfigurationError(
                f"need 0 < low <= high, got low={self.low}, high={self.high}"
            )
        if self.period_s <= 0:
            raise ConfigurationError(f"period must be > 0, got {self.period_s}")

    def __call__(self, t: float) -> float:
        phase = (t % self.period_s) / self.period_s
        weight = (1.0 - math.cos(2.0 * math.pi * phase)) / 2.0
        return self.low + (self.high - self.low) * weight

    @property
    def peak(self) -> float:
        return self.high


@dataclass(frozen=True)
class BurstLoad:
    """Baseline RPS with a sharp burst during ``[start_s, start_s + duration_s)``.

    ``burst_factor`` of 0.5-1.25 reproduces the paper's 50 %-125 % bursts.
    """

    base: float
    burst_factor: float
    start_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ConfigurationError(f"base rps must be > 0, got {self.base}")
        if self.burst_factor < 0:
            raise ConfigurationError(
                f"burst factor must be >= 0, got {self.burst_factor}"
            )
        if self.duration_s <= 0:
            raise ConfigurationError(f"duration must be > 0, got {self.duration_s}")

    def __call__(self, t: float) -> float:
        if self.start_s <= t < self.start_s + self.duration_s:
            return self.base * (1.0 + self.burst_factor)
        return self.base

    @property
    def peak(self) -> float:
        return self.base * (1.0 + self.burst_factor)


@dataclass(frozen=True)
class RampLoad:
    """Linear ramp from ``start_rps`` to ``end_rps`` over ``duration_s``.

    Used by the exploration controller to sweep load levels.
    """

    start_rps: float
    end_rps: float
    duration_s: float

    def __post_init__(self) -> None:
        if self.start_rps <= 0 or self.end_rps <= 0:
            raise ConfigurationError("ramp rates must be > 0")
        if self.duration_s <= 0:
            raise ConfigurationError(f"duration must be > 0, got {self.duration_s}")

    def __call__(self, t: float) -> float:
        frac = min(1.0, max(0.0, t / self.duration_s))
        return self.start_rps + (self.end_rps - self.start_rps) * frac

    @property
    def peak(self) -> float:
        return max(self.start_rps, self.end_rps)


class ComposedLoad:
    """Piecewise pattern: a sequence of (duration, pattern) segments.

    Each segment's pattern sees a local clock starting at zero.  After the
    last segment the final pattern continues indefinitely.
    """

    def __init__(self, segments: list[tuple[float, object]]) -> None:
        if not segments:
            raise ConfigurationError("composed load needs at least one segment")
        for duration, _pattern in segments[:-1]:
            if duration <= 0:
                raise ConfigurationError("segment durations must be > 0")
        self.segments = list(segments)

    def __call__(self, t: float) -> float:
        offset = 0.0
        for duration, pattern in self.segments[:-1]:
            if t < offset + duration:
                return pattern(t - offset)
            offset += duration
        _last_duration, last_pattern = self.segments[-1]
        return last_pattern(t - offset)

    @property
    def peak(self) -> float:
        return max(pattern.peak for _d, pattern in self.segments)
