"""Workload traces: record, persist and replay request arrival streams.

The paper's exploration "replays the workload trace on the profiled
microservice".  A :class:`WorkloadTrace` is the recorded arrival stream --
(timestamp, request class) pairs -- that can be persisted to JSON-lines
and replayed against any application, optionally time-scaled or
intensity-scaled (the exploration controller replays traces "hotter" when
probing beyond one replica).

``TraceRecorder`` captures arrivals from a live run; ``TracePlayer``
re-injects them with exact timing.  Replay is deterministic: the same
trace produces the same arrival sequence regardless of the random streams
driving the rest of the simulation.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.apps.topology import Application
from repro.errors import ConfigurationError

__all__ = ["TraceEntry", "WorkloadTrace", "TraceRecorder", "TracePlayer"]


@dataclass(frozen=True)
class TraceEntry:
    """One recorded arrival."""

    time_s: float
    request_class: str

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ConfigurationError(f"negative trace timestamp: {self.time_s}")
        if not self.request_class:
            raise ConfigurationError("trace entry needs a request class")


@dataclass
class WorkloadTrace:
    """An ordered arrival stream."""

    entries: list[TraceEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        times = [e.time_s for e in self.entries]
        if times != sorted(times):
            raise ConfigurationError("trace entries must be time-ordered")

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def duration_s(self) -> float:
        return self.entries[-1].time_s if self.entries else 0.0

    def classes(self) -> dict[str, int]:
        """Arrival counts per request class."""
        counts: dict[str, int] = {}
        for entry in self.entries:
            counts[entry.request_class] = counts.get(entry.request_class, 0) + 1
        return counts

    def mean_rps(self) -> float:
        if not self.entries or self.duration_s <= 0:
            return 0.0
        return len(self.entries) / self.duration_s

    def scaled(self, time_factor: float) -> "WorkloadTrace":
        """Time-compress (<1) or stretch (>1) the trace.

        Compressing by 0.5 doubles the arrival rate with identical
        ordering -- how a recorded trace is replayed "hotter".
        """
        if time_factor <= 0:
            raise ConfigurationError(f"time factor must be > 0, got {time_factor}")
        return WorkloadTrace(
            [TraceEntry(e.time_s * time_factor, e.request_class) for e in self.entries]
        )

    def slice(self, t0: float, t1: float) -> "WorkloadTrace":
        """Entries in ``[t0, t1)``, re-based to start at zero."""
        if t1 <= t0:
            raise ConfigurationError(f"empty trace slice [{t0}, {t1})")
        return WorkloadTrace(
            [
                TraceEntry(e.time_s - t0, e.request_class)
                for e in self.entries
                if t0 <= e.time_s < t1
            ]
        )

    # -- persistence -------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write as JSON-lines (one arrival per line)."""
        with Path(path).open("w") as fh:
            for entry in self.entries:
                fh.write(
                    json.dumps({"t": entry.time_s, "class": entry.request_class})
                )
                fh.write("\n")

    @classmethod
    def load(cls, path: str | Path) -> "WorkloadTrace":
        entries = []
        with Path(path).open() as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                entries.append(TraceEntry(float(record["t"]), str(record["class"])))
        return cls(entries)


class TraceRecorder:
    """Captures an application's client arrivals into a trace.

    Install before starting load generation; every ``Application.submit``
    is recorded (the recorder wraps the submit method).
    """

    def __init__(self, app: Application) -> None:
        self.app = app
        self.entries: list[TraceEntry] = []
        self._original_submit = app.submit
        app.submit = self._recording_submit  # type: ignore[method-assign]

    def _recording_submit(self, class_name: str):
        self.entries.append(TraceEntry(self.app.env.now, class_name))
        return self._original_submit(class_name)

    def detach(self) -> WorkloadTrace:
        """Stop recording and return the trace."""
        self.app.submit = self._original_submit  # type: ignore[method-assign]
        return WorkloadTrace(list(self.entries))


class TracePlayer:
    """Replays a trace against an application with exact timing."""

    def __init__(
        self,
        app: Application,
        trace: WorkloadTrace,
        start_at_s: float | None = None,
    ) -> None:
        unknown = {
            e.request_class for e in trace.entries
        } - set(app.request_classes)
        if unknown:
            raise ConfigurationError(
                f"trace references classes not in app: {sorted(unknown)}"
            )
        self.app = app
        self.trace = trace
        self.start_at_s = start_at_s
        self.replayed = 0

    def start(self) -> None:
        self.app.env.process(self._replay())

    def _replay(self):
        env = self.app.env
        base = self.start_at_s if self.start_at_s is not None else env.now
        if base > env.now:
            yield env.timeout(base - env.now)
        for entry in self.trace.entries:
            due = base + entry.time_s
            if due > env.now:
                yield env.timeout(due - env.now)
            self.app.submit(entry.request_class)
            self.replayed += 1
