"""Planted module for the runtime-sanitizer tests.

``mutate_global`` deliberately drifts a module-level global so the
fork-based test can prove the ``REPRO_SANITIZE=1`` guard catches it in
a pool worker.  The static PAR002 finding this creates is suppressed
below -- it is the fixture's entire point -- which also demonstrates
the documented-suppression workflow on a live tree.
"""

STATE = {"runs": 0}


def mutate_global(seed: int) -> int:
    """A worker cell that breaks the jobs-invariance contract."""
    # ursalint: disable=PAR002 -- deliberately planted for the sanitizer test
    STATE["runs"] = STATE["runs"] + 1
    # ursalint: disable=PAR001 -- reads the same planted drift back
    return seed + STATE["runs"]


def well_behaved(seed: int) -> int:
    """A worker cell that keeps module state untouched."""
    return seed * 2
