"""API001 fixture: None defaults and default_factory; must be clean."""

from dataclasses import dataclass, field


def submit(request, tags=None, options=None):
    tags = [] if tags is None else tags
    options = {} if options is None else options
    tags.append(request)
    return tags, options


@dataclass
class Deployment:
    name: str = "web"
    replicas: list = field(default_factory=list)
