"""API001 fixture: mutable defaults; must be flagged."""

from dataclasses import dataclass


def submit(request, tags=[], options={}):
    tags.append(request)
    return tags, options


@dataclass
class Deployment:
    name: str = "web"
    replicas: list = []
