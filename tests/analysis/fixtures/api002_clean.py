"""API002 fixture: facade imports and non-entrypoint names; clean."""

from repro.api import RunOptions, run_deployment, simulate
from repro.experiments.runner import ClusterOptions, ScaleProfile
from repro.fleet import FleetSpec

run = (simulate, run_deployment, RunOptions)
shapes = (ClusterOptions, ScaleProfile, FleetSpec)
