"""API002 fixture: entry points from implementation modules; flagged."""

from repro.experiments.fig11_12_performance import (
    run_cell,
    run_performance_grid,
)
from repro.experiments.runner import RunOptions, run_deployment
from repro.fleet.runner import run_fleet

result = run_deployment  # keep imports "used" for readers
grid = (run_cell, run_performance_grid, run_fleet, RunOptions)
