"""Fixture: wall-clock timing probe as written under ``benchmarks/perf/``.

Under the perf-bench profile this file is clean (SIM001 allowlisted --
timing the kernel is the benchmark's purpose); under the strict profile
both reads below are SIM001 findings.  Keep exactly two wall-clock reads:
the pinning test counts them.
"""

import time


def measure(workload):
    start = time.perf_counter()
    events = workload()
    elapsed = time.perf_counter() - start
    return events / elapsed
