"""Clean fan-out: module-level callable, integer seeds."""

from repro.experiments.parallel import RunPlan, partition_seeds, run_many

from work import cell


def launch(master_seed):
    seeds = partition_seeds(master_seed, 4, "fixture")
    plans = [
        RunPlan(cell, {"seed": s, "jobs_hint": 0}, label=f"cell:{s}")
        for s in seeds
    ]
    return run_many(plans, jobs=2)
