"""Effectively-constant globals: assigned once, never mutated."""

DEFAULTS = {"runs": 3, "scale": 1.0}
GRID = [1, 2, 4, 8]


def lookup(key):
    return DEFAULTS[key]  # fine: nothing ever mutates DEFAULTS
