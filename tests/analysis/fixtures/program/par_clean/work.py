"""Worker cell with no shared-state access."""

from state import lookup


def cell(seed, jobs_hint):
    return lookup("scale") * seed + jobs_hint
