"""Classes whose instances smuggle a live RNG across the pool boundary."""

from numpy.random import default_rng

from repro.sim.random import RandomStreams


class SeededSampler:
    """Holds a live RNG attribute built in __init__."""

    def __init__(self, seed: int) -> None:
        self.rng = default_rng(seed)
        self.count = 0

    def draw(self) -> float:
        return float(self.rng.random())


class StreamCarrier:
    """Holds an RNG via an annotated constructor parameter."""

    def __init__(self, streams: RandomStreams) -> None:
        self.streams = streams


class PlainConfig:
    """No RNG state: instances of this class are safe plan kwargs."""

    def __init__(self, scale: float) -> None:
        self.scale = scale
